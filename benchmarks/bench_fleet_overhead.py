"""Serve-path overhead: the supervised socket fleet vs in-process sharding.

Moving shards out of process buys crash isolation (SIGKILL a worker,
answers are unchanged) at the price of pickled command frames over
loopback TCP.  This bench prices that trade on the serve path — batched
ingest interleaved with query answering, the exact op mix the
``repro-experiments serve`` daemon dispatches — and enforces the fleet
promise: the socket executor costs at most 15% wall-clock over the same
workload on in-process serial sharding.  Per-shard scatter overlaps both
the network round-trips and the workers' synopsis updates, which is why
batched commands keep the ratio small even though every frame is
pickled twice.

Timing noise on shared CI runners is real, so the assertion takes the
*best* overhead across several interleaved rounds: the claim is about
the code, not about one noisy measurement.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_fleet_overhead.py --smoke [--json out.json]
"""

import time

import numpy as np

from repro.core.normalization import Domain
from repro.sharding import ShardedStreamEngine
from repro.streams import JoinQuery

DOMAIN = 2_000
BATCH = 2_048
BUDGET = 200
NUM_SHARDS = 2
QUERY_EVERY = 4  # batches between query rounds on the serve path
OVERHEAD_CEILING = 0.15  # socket fleet may cost at most 15% extra
ROUNDS = 5
METHODS = ("cosine", "basic_sketch", "sample")


def _build_fleet(executor) -> ShardedStreamEngine:
    fleet = ShardedStreamEngine(num_shards=NUM_SHARDS, seed=0, executor=executor)
    domain = Domain.of_size(DOMAIN)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in METHODS:
        options = {"probability": 0.1} if method == "sample" else {}
        fleet.register_query(
            f"q_{method}", query, method=method, budget=BUDGET, **options
        )
    return fleet


def _serve_path_seconds(tuples: int, executor) -> tuple[float, int]:
    """(wall-clock seconds, queries answered) for one ingest+query run."""
    fleet = _build_fleet(executor)
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    try:
        batch_number = 0
        queries = 0
        start = time.perf_counter()
        # R1/R2 interleaved per batch, so both sides of the join have
        # state by the time the first query round fires.
        for lo in range(0, tuples, BATCH):
            for name in ("R1", "R2"):
                fleet.ingest_batch(name, rows[lo : lo + BATCH])
                batch_number += 1
                if batch_number % QUERY_EVERY == 0:
                    for method in METHODS:
                        fleet.answer(f"q_{method}")
                        queries += 1
        elapsed = time.perf_counter() - start
    finally:
        fleet.close()
    return elapsed, queries


def overhead_table(tuples: int = 32_768, rounds: int = ROUNDS) -> dict:
    """Socket-vs-serial serve-path timings, interleaved; best-round overhead."""
    from repro.fleet import SocketExecutor

    serial_times, socket_times, overheads = [], [], []
    queries = 0
    for _ in range(rounds):
        serial, queries = _serve_path_seconds(tuples, "serial")
        socket, _ = _serve_path_seconds(tuples, SocketExecutor())
        serial_times.append(serial)
        socket_times.append(socket)
        overheads.append(socket / serial - 1.0)
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "num_shards": NUM_SHARDS,
        "rounds": rounds,
        "queries_per_round": queries,
        "serial_seconds": serial_times,
        "socket_seconds": socket_times,
        "serial_tps_best": 2 * tuples / min(serial_times),
        "socket_tps_best": 2 * tuples / min(socket_times),
        "overhead_per_round": overheads,
        "overhead_best": min(overheads),
        "overhead_ceiling": OVERHEAD_CEILING,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    print(
        f"serve path over 2 x {tuples:,} tuples (batch {table['batch']},"
        f" {table['num_shards']} shards, {table['queries_per_round']}"
        f" queries/round), {table['rounds']} rounds:"
    )
    print(f"  in-process serial   {table['serial_tps_best']:>12,.0f} tuples/s (best)")
    print(f"  socket fleet        {table['socket_tps_best']:>12,.0f} tuples/s (best)")
    rounds = ", ".join(f"{o * 100:+.1f}%" for o in table["overhead_per_round"])
    print(f"  overhead per round  {rounds}")
    print(
        f"  best-round overhead {table['overhead_best'] * 100:+.2f}%"
        f"  (ceiling {table['overhead_ceiling'] * 100:.0f}%)"
    )


def test_socket_fleet_overhead_under_ceiling(benchmark, capsys):
    """The supervised socket fleet must cost < 15% over in-process sharding."""
    table = benchmark.pedantic(
        lambda: overhead_table(tuples=16_384, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["overhead_best"] < OVERHEAD_CEILING


def test_bench_workloads_answer_identically():
    """The two benched configurations compute the same estimates."""
    from repro.fleet import SocketExecutor

    rows = ((np.random.default_rng(0).zipf(1.3, size=2 * BATCH) - 1) % DOMAIN)[:, None]
    serial = _build_fleet("serial")
    socket = _build_fleet(SocketExecutor())
    try:
        for name in ("R1", "R2"):
            serial.ingest_batch(name, rows)
            socket.ingest_batch(name, rows)
        assert socket.answers() == serial.answers()
    finally:
        socket.close()
        serial.close()


def main(argv=None) -> int:
    """Standalone entry point: fleet overhead smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else 32_768)
    table = overhead_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if table["overhead_best"] >= OVERHEAD_CEILING:
        print(
            f"FAIL: socket-fleet serve-path overhead"
            f" {table['overhead_best'] * 100:.1f}% exceeds"
            f" {OVERHEAD_CEILING * 100:.0f}% in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
