"""Two-join (1), Real data III: TCP src,dst (Figure 19).

Regenerates the paper's fig19 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine far ahead; the paper reports 0.57%% vs 66.04%%/93.72%% at 1500 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig19(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig19",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig19; see the printed table"
    )
