"""Section 5.4: computation speed of updates and estimation.

The paper reports (1.4 GHz Pentium IV, C++): 0.32 us per coefficient per
cosine update (3.2 ms for 10,000 coefficients), ~1.0 ms to update 10,000
atomic sketches, 0.4 ms to estimate from 10,000 cosine coefficients and
1.6 ms from 10,000 atomic sketches.

Absolute numbers are machine- and implementation-bound (ours is vectorized
numpy, theirs scalar C++); the relation asserted here is the one the paper
draws from the estimation side: cosine estimation is faster than the
sketch's median-of-means estimation at equal synopsis size.  Update timings
are printed for the record — in a vectorized implementation the two update
paths cost about the same, unlike the paper's scalar loops where the
sketch's simpler per-counter work wins.
"""

import pytest

from repro.core.join import estimate_join_size as cosine_join
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.experiments.speed import measure_speed
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.basic import estimate_join_size as sketch_join
from repro.sketches.hashing import SignFamily

SIZE = 10_000
DOMAIN = 100_000


@pytest.fixture(scope="module")
def synopsis_pair(rng_seed=0):
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    domain = Domain.of_size(DOMAIN)
    warm = rng.integers(0, DOMAIN, size=(5_000, 1))
    a = CosineSynopsis(domain, order=SIZE)
    b = CosineSynopsis(domain, order=SIZE)
    a.insert_batch(warm)
    b.insert_batch(warm[::-1])
    return a, b


@pytest.fixture(scope="module")
def sketch_pair():
    import numpy as np

    rng = np.random.default_rng(0)
    s1, s2 = split_budget(SIZE)
    family = SignFamily(DOMAIN, s1 * s2, seed=0)
    warm = rng.integers(0, DOMAIN, size=5_000)
    a = AGMSSketch(family, s1, s2)
    b = AGMSSketch(family, s1, s2)
    a.update_batch(warm)
    b.update_batch(warm[::-1])
    return a, b


def test_cosine_update_per_tuple(benchmark, synopsis_pair):
    a, _ = synopsis_pair
    benchmark(a.insert, (12_345,))


def test_sketch_update_per_tuple(benchmark, sketch_pair):
    a, _ = sketch_pair
    benchmark(a.update, [12_345])


def test_cosine_estimate(benchmark, synopsis_pair):
    a, b = synopsis_pair
    benchmark(cosine_join, a, b)


def test_sketch_estimate(benchmark, sketch_pair):
    a, b = sketch_pair
    benchmark(sketch_join, a, b)


def test_section_54_relations(benchmark, capsys):
    report = benchmark.pedantic(
        measure_speed,
        kwargs=dict(
            synopsis_size=SIZE,
            domain_size=DOMAIN,
            update_repeats=150,
            estimate_repeats=15,
        ),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(report.summary())
        print(
            "paper (1.4 GHz P4, C++): cosine update 3.2 ms, sketch update "
            "1.0 ms, cosine estimate 0.4 ms, sketch estimate 1.6 ms"
        )
    # The paper's estimation-side relation must hold: median-of-means costs
    # more than a coefficient dot product at equal synopsis size.
    assert report.cosine_estimate < report.sketch_estimate
    # Sanity: both per-tuple updates stay in the paper's "no problem coping
    # with fast streams" regime (single-digit milliseconds at 10k counters).
    assert report.cosine_update_per_tuple < 0.01
    assert report.sketch_update_per_tuple < 0.01
