"""Single-join, negative correlation (Figure 4).

Paper shape: cosine wins, with sketch errors 3.0x/8.9x larger at 500
coefficients — i.e. at 0.5% of its 10^5-value domain.  Our sweep reaches
10% of the (scaled) domain, far beyond the paper's region, and out there
the skimmed sketch eventually catches the cosine method's irreducible
error on this rough inverted data.  The assertion therefore judges the
*paper-comparable* low-budget region (<= 3% of the domain), where the
paper's ordering reproduces robustly; the printed table shows the whole
curve including the beyond-paper crossover.
"""

import numpy as np

from _figure_bench import run_figure


def test_fig04(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig04",
        check=_check,
    )


def _check(result):
    # paper-comparable region: the smallest four budgets (0.5%-3% of n)
    head = result.series["cosine"].budgets[:4]

    def head_mean(method):
        return float(np.mean([result.mean_error(method, b) for b in head]))

    cosine = head_mean("cosine")
    assert cosine < head_mean("basic_sketch"), (
        "expected cosine under the basic sketch on negatively correlated "
        "data in the paper-comparable budget region"
    )
    assert cosine < head_mean("skimmed_sketch")
