"""Benchmark-suite configuration.

Each ``bench_figNN.py`` regenerates one figure of the paper: it runs the
figure's budget sweep (workload generation + synopsis construction + every
method's estimates), prints the error table the paper plots, and asserts
the paper's qualitative shape.  Wall-clock is recorded by pytest-benchmark.

Environment knobs:

- ``REPRO_TRIALS``       trials per point (default 5)
- ``REPRO_SEED``         experiment seed (default 0)
- ``REPRO_SIZE_FACTOR``  multiplies relation sizes (default 1.0)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
