"""Fastpath kernel speedup: the recurrence must beat the reference by >= 5x.

``repro.fastpath`` replaces per-entry trig evaluation of the cosine basis
table with a Chebyshev three-term recurrence (one ``np.cos`` call per
batch instead of ``order`` of them).  This benchmark measures both layers
of that claim:

* **kernel** — ``phi_block`` (active backend) vs ``phi_block_reference``
  (the 1.5.0 seed implementation, kept as the in-run baseline) building
  the same ``(order, B)`` basis table.  The CI gate enforces a >= 5x
  speedup floor on this ratio: it is self-normalizing, so a slow runner
  cannot fake a regression.
* **ingest** — end-to-end single-thread cosine ingest (tuples/s) with the
  active backend vs with the ``reference`` backend, recorded into the CI
  benchmark trajectory (``BENCH_trajectory.json``) so the floor has a
  history, not just a pass/fail bit.

Timing noise on shared CI runners is real, so both tables take the best
round of several interleaved rounds: the claim is about the code, not
about one noisy measurement.

Runnable standalone for the CI bench gate::

    python benchmarks/bench_fastpath.py --smoke --json out.json
"""

import time

import numpy as np

from repro.core.normalization import Domain
from repro.fastpath import backend_name, phi_block, phi_block_reference, set_backend
from repro.obs import Telemetry
from repro.streams import JoinQuery, StreamEngine

ORDER = 1_024
COLS = 4_096  # wide enough to amortize the per-row python loop (see recurrence.py)
SPEEDUP_FLOOR = 5.0  # recurrence vs reference basis construction, best round
INGEST_TUPLES = 32_768
INGEST_BUDGET = 200
INGEST_DOMAIN = 2_000
BATCH = 1_024
ROUNDS = 5


def _best_seconds(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def kernel_table(order: int = ORDER, cols: int = COLS, rounds: int = ROUNDS) -> dict:
    """Basis-table construction: active backend vs the 1.5.0 reference."""
    positions = np.linspace(0.0, 1.0, cols)
    out = np.empty((order, cols))
    # Warm both paths once so allocator/cache effects hit neither side.
    phi_block_reference(order, positions, out=out)
    phi_block(order, positions, out=out)
    reference = _best_seconds(lambda: phi_block_reference(order, positions, out=out), rounds)
    fast = _best_seconds(lambda: phi_block(order, positions, out=out), rounds)
    return {
        "order": order,
        "cols": cols,
        "rounds": rounds,
        "backend": backend_name(),
        "reference_seconds_best": reference,
        "fastpath_seconds_best": fast,
        "speedup": reference / fast,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def _ingest_seconds(tuples: int, batch: int = BATCH) -> float:
    """Wall-clock seconds for single-thread cosine ingest of ``tuples`` rows."""
    engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
    domain = Domain.of_size(INGEST_DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=INGEST_BUDGET)
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % INGEST_DOMAIN)[:, None]
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, tuples, batch):
            engine.ingest_batch(name, rows[lo : lo + batch])
    return time.perf_counter() - start


def ingest_table(tuples: int = INGEST_TUPLES, rounds: int = ROUNDS) -> dict:
    """End-to-end cosine ingest with the active backend vs ``reference``."""
    active = backend_name()
    fast_times, reference_times = [], []
    for _ in range(rounds):
        previous = set_backend("reference")
        try:
            reference_times.append(_ingest_seconds(tuples))
        finally:
            set_backend(previous)
        fast_times.append(_ingest_seconds(tuples))
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "budget": INGEST_BUDGET,
        "rounds": rounds,
        "backend": active,
        "reference_tps_best": 2 * tuples / min(reference_times),
        "fastpath_tps_best": 2 * tuples / min(fast_times),
        "ingest_ratio": min(reference_times) / min(fast_times),
    }


def fastpath_report(
    order: int = ORDER,
    cols: int = COLS,
    tuples: int = INGEST_TUPLES,
    rounds: int = ROUNDS,
) -> dict:
    return {
        "backend": backend_name(),
        "kernel": kernel_table(order=order, cols=cols, rounds=rounds),
        "ingest": ingest_table(tuples=tuples, rounds=rounds),
    }


def _print_report(report: dict) -> None:
    kernel, ingest = report["kernel"], report["ingest"]
    print(f"fastpath backend: {report['backend']}")
    print(
        f"  kernel (order={kernel['order']}, B={kernel['cols']},"
        f" best of {kernel['rounds']}):"
    )
    print(f"    reference  {kernel['reference_seconds_best'] * 1e3:>9.3f} ms")
    print(f"    fastpath   {kernel['fastpath_seconds_best'] * 1e3:>9.3f} ms")
    print(
        f"    speedup    {kernel['speedup']:>9.2f}x"
        f"  (floor {kernel['speedup_floor']:.0f}x)"
    )
    print(
        f"  cosine ingest (2 x {ingest['tuples_per_relation']:,} tuples,"
        f" budget {ingest['budget']}):"
    )
    print(f"    reference  {ingest['reference_tps_best']:>12,.0f} tuples/s (best)")
    print(f"    fastpath   {ingest['fastpath_tps_best']:>12,.0f} tuples/s (best)")
    print(f"    ratio      {ingest['ingest_ratio']:>9.2f}x")


def test_kernel_speedup_above_floor(benchmark, capsys):
    """The recurrence basis kernel must beat the reference by >= 5x."""
    table = benchmark.pedantic(lambda: kernel_table(rounds=3), iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            f"  kernel speedup {table['speedup']:.2f}x"
            f" (floor {table['speedup_floor']:.0f}x, backend {table['backend']})"
        )
    assert table["speedup"] >= table["speedup_floor"]


def test_fastpath_ingest_not_slower_than_reference(benchmark, capsys):
    """End-to-end cosine ingest must not regress vs the reference backend."""
    table = benchmark.pedantic(
        lambda: ingest_table(tuples=8_192, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(f"  ingest ratio {table['ingest_ratio']:.2f}x vs reference backend")
    assert table["ingest_ratio"] > 0.9  # best-round, generous noise margin


def main(argv=None) -> int:
    """Standalone entry point: fastpath speedup benchmark for the CI gate."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--order", type=int, default=None, help="basis order (m)")
    parser.add_argument("--cols", type=int, default=None, help="batch columns (B)")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else INGEST_TUPLES)
    report = fastpath_report(
        order=args.order or ORDER,
        cols=args.cols or COLS,
        tuples=tuples,
        rounds=args.rounds,
    )
    _print_report(report)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.json}")
    if report["kernel"]["speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: fastpath kernel speedup {report['kernel']['speedup']:.2f}x"
            f" is below the {SPEEDUP_FLOOR:.0f}x floor in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
