"""Section 4.3 ablation: the analytic best/worst cases, measured.

Section 4.3.1 — uniform data: the cosine method is exact with a single
coefficient while the sketches would need Omega(n) atomic sketches (their
worst case).  Section 4.3.2 — single-valued streams: the sketches are
exact with O(1) atomic sketches while the cosine method needs
``n - floor(e n / 2)`` coefficients (its worst case, Eq. 4.12).  This bench
measures both regimes on the same axes as the figures.
"""

import numpy as np
import pytest

from repro.core.error import worst_case_coefficients
from repro.core.join import estimate_join_size as cosine_join
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.basic import estimate_join_size as sketch_join
from repro.sketches.hashing import SignFamily
from repro.streams.exact import relative_error

N_DOMAIN = 2_000
PER_VALUE = 50.0


def _sketch_error(counts, budget, seed):
    s1, s2 = split_budget(budget)
    family = SignFamily(len(counts), s1 * s2, seed=seed)
    a = AGMSSketch.from_counts(family, counts, s1, s2)
    b = AGMSSketch.from_counts(family, counts, s1, s2)
    return relative_error(float(counts @ counts), sketch_join(a, b))


def _cosine_error(counts, budget):
    d = Domain.of_size(len(counts))
    a = CosineSynopsis.from_counts(d, counts, budget=budget)
    return relative_error(float(counts @ counts), cosine_join(a, a))


def test_best_case_uniform_data(benchmark, capsys):
    counts = np.full(N_DOMAIN, PER_VALUE)

    def sweep():
        cosine = _cosine_error(counts, budget=1)
        sketch = np.mean([_sketch_error(counts, 100, seed) for seed in range(10)])
        return cosine, sketch

    cosine_err, sketch_err = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\nuniform data (n={N_DOMAIN}): cosine error with ONE coefficient "
            f"= {cosine_err:.2e}; basic sketch error with 100 atomic sketches "
            f"= {sketch_err * 100:.2f}%"
        )
    assert cosine_err == pytest.approx(0.0, abs=1e-9)
    assert sketch_err > cosine_err


def test_worst_case_single_value_streams(benchmark, capsys):
    counts = np.zeros(N_DOMAIN)
    counts[777] = 10_000.0

    def sweep():
        sketch = max(_sketch_error(counts, 10, seed) for seed in range(10))
        cosine_small = _cosine_error(counts, budget=50)
        e = 0.4
        m = worst_case_coefficients(e, N_DOMAIN)
        cosine_eq412 = _cosine_error(counts, budget=m)
        return sketch, cosine_small, m, cosine_eq412

    sketch_err, cosine_small, m, cosine_eq412 = benchmark.pedantic(
        sweep, iterations=1, rounds=1
    )
    with capsys.disabled():
        print(
            f"\nsingle-value streams (n={N_DOMAIN}): basic sketch exact with 10 "
            f"atomic sketches (worst error {sketch_err:.2e}); cosine error "
            f"with 50 coefficients = {cosine_small * 100:.1f}%; Eq. 4.12 says "
            f"{m} coefficients guarantee 40% error, measured "
            f"{cosine_eq412 * 100:.1f}%"
        )
    assert sketch_err == pytest.approx(0.0, abs=1e-9)
    assert cosine_small > 0.5
    assert cosine_eq412 <= 0.4 + 1e-9
