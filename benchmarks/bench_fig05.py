"""Single-join, strong positive correlation with SMOOTH distributions (Figure 5).

Figures 1 and 5 share their data except for the frequency-to-value mapping
(random vs orderly).  The paper's claim: "smoothness plays in DCT's favour"
— the cosine error drops sharply (96.58% -> 56.24% at 500 coefficients in
the paper) while the sketches are unchanged, "since sketches do not
approximate distributions".  This bench runs both figures' cosine series
and the two sketch series of Figure 5 and asserts both halves of the claim.
"""


from _figure_bench import SEED, run_figure, tail_mean
from repro.experiments.figures import FIGURES
from repro.experiments.harness import run_experiment
from repro.experiments.methods import BasicSketchMethod, CosineMethod


def test_fig05(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig05",
        check=lambda result: _check(result, capsys),
    )


def _check(result, capsys):
    # Half 1: the cosine error on the smooth data (fig05) is far below the
    # cosine error on the otherwise identical rough data (fig01).
    rough = run_experiment(
        FIGURES["fig01"], seed=SEED, methods=[CosineMethod()]
    )
    smooth_err = tail_mean(result, "cosine")
    rough_err = tail_mean(rough, "cosine")
    with capsys.disabled():
        print(
            f"cosine tail error: rough (fig01) {rough_err * 100:.2f}% vs "
            f"smooth (fig05) {smooth_err * 100:.2f}%"
        )
    assert smooth_err < 0.5 * rough_err, (
        "smoothness should cut the cosine method's error sharply vs Figure 1"
    )

    # Half 2: the sketches are insensitive to the mapping — their fig05
    # errors stay in the same regime as on the rough data.
    rough_sketch = run_experiment(
        FIGURES["fig01"], seed=SEED, methods=[BasicSketchMethod()]
    )
    smooth_sketch_err = tail_mean(result, "basic_sketch")
    rough_sketch_err = tail_mean(rough_sketch, "basic_sketch")
    with capsys.disabled():
        print(
            f"basic sketch tail error: rough {rough_sketch_err * 100:.2f}% vs "
            f"smooth {smooth_sketch_err * 100:.2f}%"
        )
    assert smooth_sketch_err < 4 * rough_sketch_err + 0.05
    assert rough_sketch_err < 4 * smooth_sketch_err + 0.05
