"""Shared driver for the per-figure benchmarks."""

from __future__ import annotations

import os
from typing import Callable

from repro.experiments.figures import FIGURES
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.report import ascii_chart, format_comparison_summary, format_result

SEED = int(os.environ.get("REPRO_SEED", "0"))

#: Methods must beat/lose by this slack factor for a shape assertion to
#: count — guards the qualitative checks against trial noise.
SLACK = 1.0


def tail_mean(result: ExperimentResult, method: str, k: int = 3) -> float:
    """Mean error over the k largest budgets — the stable end of a curve."""
    budgets = result.series[method].budgets[-k:]
    return sum(result.series[method].mean(b) for b in budgets) / len(budgets)


def cosine_wins(result: ExperimentResult, k: int = 3) -> bool:
    """The paper's headline shape: cosine under both sketches."""
    cos = tail_mean(result, "cosine", k)
    return cos <= tail_mean(result, "skimmed_sketch", k) * SLACK and cos <= tail_mean(
        result, "basic_sketch", k
    ) * SLACK


def sketches_win(result: ExperimentResult, k: int = 3) -> bool:
    """The Figure 1 shape: at least one sketch under cosine."""
    cos = tail_mean(result, "cosine", k)
    return (
        tail_mean(result, "skimmed_sketch", k) <= cos * SLACK
        or tail_mean(result, "basic_sketch", k) <= cos * SLACK
    )


def run_figure(
    benchmark,
    capsys,
    figure_id: str,
    check: Callable[[ExperimentResult], None],
) -> ExperimentResult:
    """Run one figure's sweep under pytest-benchmark and verify its shape."""
    config = FIGURES[figure_id]

    result_holder: list[ExperimentResult] = []

    def sweep():
        result_holder.clear()
        result_holder.append(run_experiment(config, seed=SEED))
        return result_holder[0]

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    result = result_holder[0]
    with capsys.disabled():
        print()
        print(format_result(result))
        print(ascii_chart(result))
        print(format_comparison_summary(result))
    check(result)
    return result
