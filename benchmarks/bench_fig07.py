"""Single-join, clustered data, 10 clusters (Figure 7).

Regenerates the paper's fig07 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins; the paper reports 0.60%% vs 7.98%%/8.24%% at 500 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig07(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig07",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig07; see the printed table"
    )
