"""Two-join, Real data I: CPS Age+Education (Figure 14).

Regenerates the paper's fig14 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine under 15%% with 1500 coefficients while sketches are at 38%%/45%% (paper).
"""

from _figure_bench import cosine_wins, run_figure


def test_fig14(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig14",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig14; see the printed table"
    )
