"""Checkpoint overhead: periodic checkpointing must barely tax ingest.

The resilience layer (``repro.resilience``) promises that the durability
it adds is affordable on the hot path: batched ingest with a rotated
checkpoint every few thousand tuples must keep throughput within 15% of
the same ingest with no checkpointing at all.  The bench also reports
the absolute cost of one checkpoint — wall-clock per save and bytes per
MB of synopsis/tensor state — so regressions in the serialization path
show up even while the ratio stays under the ceiling.

Timing noise on shared CI runners is real, so the assertion takes the
*best* overhead across several interleaved rounds: the claim is about
the code, not about one noisy measurement.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_checkpoint_overhead.py --smoke [--json out.json]
"""

import time

import numpy as np

from repro.core.normalization import Domain
from repro.resilience import CheckpointStore
from repro.resilience.checkpoint import payload_nbytes, read_checkpoint
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 2_000
BATCH = 1_024
BUDGET = 200
CHECKPOINT_EVERY = 8  # batches between saves
OVERHEAD_CEILING = 0.15  # checkpointed ingest may cost at most 15% extra
ROUNDS = 5
METHODS = ("cosine", "basic_sketch", "sample")


def _build_engine() -> tuple[StreamEngine, JoinQuery]:
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in METHODS:
        options = {"probability": 0.1} if method == "sample" else {}
        engine.register_query(f"q_{method}", query, method=method, budget=BUDGET, **options)
    return engine, query


def _ingest_seconds(tuples: int, store: CheckpointStore | None) -> tuple[float, int]:
    """(wall-clock seconds, checkpoints written) for one ingest run."""
    engine, _ = _build_engine()
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    saves = 0
    batch_number = 0
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, tuples, BATCH):
            engine.ingest_batch(name, rows[lo : lo + BATCH])
            batch_number += 1
            if store is not None and batch_number % CHECKPOINT_EVERY == 0:
                store.save(engine)
                saves += 1
    return time.perf_counter() - start, saves


def _single_checkpoint_cost(tuples: int, directory) -> dict:
    """Absolute cost of one save/load cycle at end-of-stream state."""
    engine, _ = _build_engine()
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    for name in ("R1", "R2"):
        engine.ingest_batch(name, rows)
    path = directory / "cost-probe.ckpt"
    start = time.perf_counter()
    file_bytes = engine.save_checkpoint(path)
    save_seconds = time.perf_counter() - start
    start = time.perf_counter()
    payload = read_checkpoint(path)
    StreamEngine.load_checkpoint(path)
    load_seconds = time.perf_counter() - start
    state_bytes = payload_nbytes(payload)
    return {
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "file_bytes": file_bytes,
        "state_bytes": state_bytes,
        "save_seconds_per_mb": save_seconds / max(state_bytes / 2**20, 1e-9),
    }


def overhead_table(tuples: int = 32_768, rounds: int = ROUNDS, directory=None) -> dict:
    """Checkpointed-vs-plain ingest timings, interleaved; best-round overhead."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(directory or tmp)
        plain_times, checkpointed_times, overheads, saves = [], [], [], 0
        for index in range(rounds):
            plain, _ = _ingest_seconds(tuples, store=None)
            store = CheckpointStore(base / f"round-{index}", keep=2)
            checkpointed, round_saves = _ingest_seconds(tuples, store=store)
            plain_times.append(plain)
            checkpointed_times.append(checkpointed)
            overheads.append(checkpointed / plain - 1.0)
            saves = round_saves
        cost = _single_checkpoint_cost(tuples, base)
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "rounds": rounds,
        "checkpoint_every_batches": CHECKPOINT_EVERY,
        "checkpoints_per_round": saves,
        "plain_seconds": plain_times,
        "checkpointed_seconds": checkpointed_times,
        "plain_tps_best": 2 * tuples / min(plain_times),
        "checkpointed_tps_best": 2 * tuples / min(checkpointed_times),
        "overhead_per_round": overheads,
        "overhead_best": min(overheads),
        "overhead_ceiling": OVERHEAD_CEILING,
        "single_checkpoint": cost,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    cost = table["single_checkpoint"]
    print(
        f"batched ingest of 2 x {tuples:,} tuples (batch {table['batch']},"
        f" checkpoint every {table['checkpoint_every_batches']} batches,"
        f" {table['checkpoints_per_round']} saves/round), {table['rounds']} rounds:"
    )
    print(f"  no checkpoints      {table['plain_tps_best']:>12,.0f} tuples/s (best)")
    print(f"  with checkpoints    {table['checkpointed_tps_best']:>12,.0f} tuples/s (best)")
    rounds = ", ".join(f"{o * 100:+.1f}%" for o in table["overhead_per_round"])
    print(f"  overhead per round  {rounds}")
    print(
        f"  best-round overhead {table['overhead_best'] * 100:+.2f}%"
        f"  (ceiling {table['overhead_ceiling'] * 100:.0f}%)"
    )
    print(
        f"  one checkpoint      save {cost['save_seconds'] * 1e3:,.1f} ms,"
        f" load {cost['load_seconds'] * 1e3:,.1f} ms,"
        f" file {cost['file_bytes'] / 2**20:,.2f} MB"
        f" ({cost['save_seconds_per_mb'] * 1e3:,.1f} ms/MB of state)"
    )


def test_checkpoint_overhead_under_ceiling(benchmark, capsys):
    """Periodic checkpointing must cost < 15% over plain batched ingest."""
    table = benchmark.pedantic(
        lambda: overhead_table(tuples=16_384, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["overhead_best"] < OVERHEAD_CEILING


def test_checkpoint_round_trips_during_bench_workload(tmp_path):
    """The store written by the bench workload restores an identical engine."""
    store = CheckpointStore(tmp_path, keep=2)
    seconds, saves = _ingest_seconds(4 * BATCH, store=store)
    assert saves >= 1 and seconds > 0
    restored = StreamEngine.load_checkpoint(store.latest())
    engine, _ = _build_engine()
    rows = ((np.random.default_rng(0).zipf(1.3, size=4 * BATCH) - 1) % DOMAIN)[:, None]
    for name in ("R1", "R2"):
        for lo in range(0, rows.shape[0], BATCH):  # same batching, same float order
            engine.ingest_batch(name, rows[lo : lo + BATCH])
    assert restored.answers() == engine.answers()


def main(argv=None) -> int:
    """Standalone entry point: checkpoint overhead smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else 32_768)
    table = overhead_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if table["overhead_best"] >= OVERHEAD_CEILING:
        print(
            f"FAIL: checkpointed ingest overhead"
            f" {table['overhead_best'] * 100:.1f}% exceeds"
            f" {OVERHEAD_CEILING * 100:.0f}% in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
