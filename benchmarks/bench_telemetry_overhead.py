"""Telemetry overhead: instrumentation must be near-free on the ingest path.

The observability layer (``repro.obs``) promises near-zero cost when
disabled and bounded cost when enabled: the engine's batched ingest with
the default telemetry (metrics + tracing + stats facade) must stay
within 10% of the same ingest with ``Telemetry.disabled()`` — where the
relations carry ``stats = tracer = None`` and the hot path is the
uninstrumented one.

Timing noise on shared CI runners is real, so the assertion takes the
*best* overhead across several interleaved rounds: the claim is about
the code, not about one noisy measurement.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_telemetry_overhead.py --smoke [--json out.json]
"""

import time

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import Telemetry
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 2_000
BATCH = 1_024
BUDGET = 200
OVERHEAD_CEILING = 0.10  # enabled ingest may cost at most 10% over disabled
ROUNDS = 5


def _ingest_seconds(telemetry: Telemetry, tuples: int, batch: int = BATCH) -> float:
    """Wall-clock seconds to batch-ingest ``tuples`` rows per relation."""
    engine = StreamEngine(seed=0, telemetry=telemetry)
    domain = Domain.of_size(DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=BUDGET)
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, tuples, batch):
            engine.ingest_batch(name, rows[lo : lo + batch])
    return time.perf_counter() - start


def overhead_table(tuples: int = 32_768, rounds: int = ROUNDS) -> dict:
    """Enabled-vs-disabled ingest timings, interleaved; best-round overhead."""
    enabled_times, disabled_times, overheads = [], [], []
    for _ in range(rounds):
        disabled = _ingest_seconds(Telemetry.disabled(), tuples)
        enabled = _ingest_seconds(Telemetry(), tuples)
        disabled_times.append(disabled)
        enabled_times.append(enabled)
        overheads.append(enabled / disabled - 1.0)
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "rounds": rounds,
        "enabled_seconds": enabled_times,
        "disabled_seconds": disabled_times,
        "enabled_tps_best": 2 * tuples / min(enabled_times),
        "disabled_tps_best": 2 * tuples / min(disabled_times),
        "overhead_per_round": overheads,
        "overhead_best": min(overheads),
        "overhead_ceiling": OVERHEAD_CEILING,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    print(
        f"batched ingest of 2 x {tuples:,} tuples (batch {table['batch']}),"
        f" {table['rounds']} interleaved rounds:"
    )
    print(f"  telemetry disabled  {table['disabled_tps_best']:>12,.0f} tuples/s (best)")
    print(f"  telemetry enabled   {table['enabled_tps_best']:>12,.0f} tuples/s (best)")
    rounds = ", ".join(f"{o * 100:+.1f}%" for o in table["overhead_per_round"])
    print(f"  overhead per round  {rounds}")
    print(
        f"  best-round overhead {table['overhead_best'] * 100:+.2f}%"
        f"  (ceiling {table['overhead_ceiling'] * 100:.0f}%)"
    )


def test_enabled_telemetry_overhead_under_ceiling(benchmark, capsys):
    """Default telemetry must cost < 10% over Telemetry.disabled() ingest."""
    table = benchmark.pedantic(
        lambda: overhead_table(tuples=16_384, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["overhead_best"] < OVERHEAD_CEILING


def test_disabled_telemetry_records_nothing():
    """The disabled baseline must leave every counter untouched."""
    engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
    engine.create_relation("R1", ["A"], [Domain.of_size(64)])
    engine.create_relation("R2", ["A"], [Domain.of_size(64)])
    engine.register_query(
        "q", JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"]), method="cosine", budget=16
    )
    engine.ingest_batch("R1", np.zeros((100, 1), dtype=np.int64))
    engine.insert("R1", (1,))
    engine.answer("q")
    stats = engine.stats()
    assert stats.tuples_ingested == 0
    assert stats.estimate_calls == 0
    assert engine.telemetry.tracer is None
    with pytest.raises(ValueError, match="telemetry"):
        engine.track_accuracy()


def main(argv=None) -> int:
    """Standalone entry point: telemetry overhead smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else 32_768)
    table = overhead_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if table["overhead_best"] >= OVERHEAD_CEILING:
        print(
            f"FAIL: enabled-telemetry ingest overhead"
            f" {table['overhead_best'] * 100:.1f}% exceeds"
            f" {OVERHEAD_CEILING * 100:.0f}% in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
