"""Extension bench: the surveyed sampling / histogram / wavelet baselines.

Section 2 surveys three further synopsis families and dismisses each for a
*specific* reason — which this bench reproduces honestly:

* **sampling** (the 1988 statistical-estimator lineage): "the estimation
  accuracy for join queries is far from satisfactory unless the sample
  size is very large" — an accuracy claim, asserted below at equal space;
* **histograms**: fine for low-dimensional data but their space "increases
  dramatically" with dimensions and bucket maintenance is hard — our
  equi-width baseline is accordingly single-join-only, asserted below;
* **wavelets**: accuracy is not the problem on one-dimensional data (the
  table below shows top-coefficient Haar synopses are competitive there!);
  the problem is maintenance — Gilbert et al. [12] showed tracking the top
  coefficients online "could require space as large as the data stream
  itself".  Our streaming ``HaarSynopsis`` exhibits exactly that: it must
  keep the full length-n transform live and thresholds only at read time,
  while the cosine synopsis' live state IS its budget.  Asserted
  structurally below.
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.experiments.figures import FIGURES
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.methods import (
    CosineMethod,
    HistogramMethod,
    SamplingMethod,
    WaveletMethod,
)
from repro.experiments.report import format_result
from repro.wavelets.haar import HaarSynopsis

BUDGETS = (50, 100, 200, 400)


def test_sampling_histogram_wavelet_baselines(benchmark, capsys):
    base = FIGURES["fig02"]
    config = ExperimentConfig(
        name="baseline-extensions",
        title="Single-join weak-positive zipf data: cosine vs surveyed baselines",
        datagen=base.datagen,
        budgets=BUDGETS,
        trials=4,
        methods_factory=lambda: [
            CosineMethod(),
            SamplingMethod(),
            HistogramMethod(),
            WaveletMethod(),
        ],
        expectation=(
            "sampling clearly worse at equal space (section 2); histogram "
            "and wavelet competitive on 1-d batch accuracy — their section-2 "
            "disqualifiers are dimensionality and maintenance, asserted "
            "separately in this bench"
        ),
    )
    result = benchmark.pedantic(
        run_experiment, args=(config,), kwargs={"seed": 0}, iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(format_result(result))

    # The paper's sampling claim: far worse at equal space.
    for budget in BUDGETS[:3]:
        assert result.mean_error("sample", budget) > result.mean_error(
            "cosine", budget
        )


def test_histogram_cannot_serve_multijoin_chains(benchmark):
    # Section 2's histogram disqualifier, reflected in the implementation:
    # multi-dimensional histograms explode in space, so the baseline is
    # single-join only.
    rng = np.random.default_rng(0)
    n = 32
    relations = [
        rng.integers(0, 4, n).astype(float),
        rng.integers(0, 3, (n, n)).astype(float),
        rng.integers(0, 4, n).astype(float),
    ]
    domains = [[Domain.of_size(n)], [Domain.of_size(n)] * 2, [Domain.of_size(n)]]

    def attempt():
        with pytest.raises(ValueError, match="single joins"):
            HistogramMethod().prepare(relations, domains, 10, rng)

    benchmark.pedantic(attempt, iterations=1, rounds=1)


def test_wavelet_live_state_exceeds_budget(benchmark, capsys):
    # Section 2's wavelet disqualifier (Gilbert et al. [12]): maintaining
    # the top coefficients online needs the full transform live.  The Haar
    # synopsis' resident state is Theta(n) floats regardless of budget; the
    # cosine synopsis' resident state equals its budget.
    n, budget = 4_096, 32
    haar, cosine = benchmark.pedantic(
        lambda: (
            HaarSynopsis(Domain.of_size(n), budget=budget),
            CosineSynopsis(Domain.of_size(n), budget=budget),
        ),
        iterations=1,
        rounds=1,
    )
    haar_live = haar._coefficients.shape[0]
    cosine_live = cosine.num_coefficients
    with capsys.disabled():
        print(
            f"\nlive synopsis state at advertised budget {budget} on an "
            f"n={n} domain: cosine {cosine_live} floats, Haar {haar_live} floats"
        )
    assert cosine_live == budget
    assert haar_live >= n
