"""Single-join, Real data II: SIPP SSUSEQ (Figure 15).

Regenerates the paper's fig15 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: The paper's most lopsided win: 0.12%% vs 16.23%%/22.12%% at 100 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig15(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig15",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig15; see the printed table"
    )
