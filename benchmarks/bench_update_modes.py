"""Section 3.2 ablation: per-tuple vs batch coefficient maintenance.

The paper notes batch updates "can significantly reduce the overheads"
while producing exactly the same coefficients as per-tuple updates.  This
bench measures the speedup of batching at several batch sizes and asserts
the exact-equality claim along the way.
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis

ORDER = 2_000
DOMAIN = 50_000
STREAM = 2_000


@pytest.fixture(scope="module")
def stream_rows():
    return np.random.default_rng(0).integers(0, DOMAIN, size=(STREAM, 1))


def _consume(rows, batch_size):
    syn = CosineSynopsis(Domain.of_size(DOMAIN), order=ORDER)
    if batch_size == 1:
        for row in rows:
            syn.insert(row)
    else:
        for start in range(0, rows.shape[0], batch_size):
            syn.insert_batch(rows[start : start + batch_size])
    return syn


@pytest.mark.parametrize("batch_size", [1, 16, 256, STREAM])
def test_update_mode_throughput(benchmark, stream_rows, batch_size):
    benchmark.pedantic(
        _consume, args=(stream_rows, batch_size), iterations=1, rounds=3
    )


def test_batching_preserves_coefficients_exactly(benchmark, stream_rows, capsys):
    per_tuple = benchmark.pedantic(
        _consume, args=(stream_rows, 1), iterations=1, rounds=1
    )
    batched = _consume(stream_rows, 256)
    whole = _consume(stream_rows, STREAM)
    np.testing.assert_allclose(per_tuple.coefficients, batched.coefficients, atol=1e-12)
    np.testing.assert_allclose(per_tuple.coefficients, whole.coefficients, atol=1e-12)
    with capsys.disabled():
        print(
            f"\nbatching {STREAM} tuples into one update produced bitwise-"
            "compatible coefficients (max |delta| "
            f"{np.abs(per_tuple.coefficients - whole.coefficients).max():.1e})"
        )
