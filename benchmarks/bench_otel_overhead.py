"""OTLP export overhead: shipping telemetry must be near-free on ingest.

``repro.obs.otel`` promises that exporting spans and metrics costs the
ingest path almost nothing: the push loop drains the tracer and encodes
payloads on a wall-clock interval, off the per-batch critical path.
This bench holds it to that — batched ingest with a live
:class:`~repro.obs.otel.OtelPushLoop` (file exporter to ``os.devnull``,
pushed via ``maybe_push`` from the ingest loop exactly as the ``monitor``
CLI does) must stay within 10% of the same ingest with telemetry enabled
but no export.

Timing noise on shared CI runners is real, so the assertion takes the
*best* overhead across several interleaved rounds: the claim is about
the code, not about one noisy measurement.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_otel_overhead.py --smoke [--json out.json]
"""

import os
import time

import numpy as np

from repro.core.normalization import Domain
from repro.obs import Telemetry
from repro.obs.otel import OtelPushLoop, OtlpJsonFileExporter
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 2_000
BATCH = 1_024
BUDGET = 200
OVERHEAD_CEILING = 0.10  # exporting ingest may cost at most 10% over plain telemetry
ROUNDS = 5
PUSH_EVERY_S = 0.25


def _ingest_seconds(tuples: int, export: bool, batch: int = BATCH) -> float:
    """Wall-clock seconds to batch-ingest ``tuples`` rows per relation.

    With ``export=True``, an OTLP push loop drains spans and encodes the
    full registry to ``os.devnull`` on the monitor CLI's cadence.
    """
    engine = StreamEngine(seed=0, telemetry=Telemetry())
    domain = Domain.of_size(DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=BUDGET)
    otel = None
    if export:
        tracer = engine.telemetry.tracer
        otel = OtelPushLoop(
            OtlpJsonFileExporter(os.devnull),
            metrics=engine.telemetry.registry,
            spans=lambda: [({}, tracer.drain())],
            every_s=PUSH_EVERY_S,
        )
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, tuples, batch):
            engine.ingest_batch(name, rows[lo : lo + batch])
            if otel is not None:
                otel.maybe_push()
    if otel is not None:
        otel.push_now()
    return time.perf_counter() - start


def overhead_table(tuples: int = 32_768, rounds: int = ROUNDS) -> dict:
    """Export-vs-no-export ingest timings, interleaved; best-round overhead."""
    export_times, plain_times, overheads = [], [], []
    for _ in range(rounds):
        plain = _ingest_seconds(tuples, export=False)
        exporting = _ingest_seconds(tuples, export=True)
        plain_times.append(plain)
        export_times.append(exporting)
        overheads.append(exporting / plain - 1.0)
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "rounds": rounds,
        "export_seconds": export_times,
        "plain_seconds": plain_times,
        "export_tps_best": 2 * tuples / min(export_times),
        "plain_tps_best": 2 * tuples / min(plain_times),
        "overhead_per_round": overheads,
        "overhead_best": min(overheads),
        "overhead_ceiling": OVERHEAD_CEILING,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    print(
        f"batched ingest of 2 x {tuples:,} tuples (batch {table['batch']}),"
        f" {table['rounds']} interleaved rounds:"
    )
    print(f"  telemetry, no export {table['plain_tps_best']:>12,.0f} tuples/s (best)")
    print(f"  telemetry + OTLP     {table['export_tps_best']:>12,.0f} tuples/s (best)")
    rounds = ", ".join(f"{o * 100:+.1f}%" for o in table["overhead_per_round"])
    print(f"  overhead per round   {rounds}")
    print(
        f"  best-round overhead  {table['overhead_best'] * 100:+.2f}%"
        f"  (ceiling {table['overhead_ceiling'] * 100:.0f}%)"
    )


def test_otel_export_overhead_under_ceiling(benchmark, capsys):
    """A live OTLP push loop must cost < 10% over plain enabled telemetry."""
    table = benchmark.pedantic(
        lambda: overhead_table(tuples=16_384, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["overhead_best"] < OVERHEAD_CEILING


def test_export_delivers_every_drained_span():
    """The bench's export path must actually ship spans, not skip them."""
    engine = StreamEngine(seed=0, telemetry=Telemetry())
    engine.create_relation("R1", ["A"], [Domain.of_size(64)])
    tracer = engine.telemetry.tracer
    exporter = OtlpJsonFileExporter(os.devnull)
    otel = OtelPushLoop(
        exporter,
        metrics=engine.telemetry.registry,
        spans=lambda: [({}, tracer.drain())],
    )
    engine.ingest_batch("R1", np.zeros((100, 1), dtype=np.int64))
    pushed = otel.push_now()
    assert pushed["spans"] > 0
    assert pushed["payloads"] == 2  # one traces payload, one metrics payload
    assert exporter.drops == 0
    assert tracer.dropped == 0  # drained spans count as delivered


def main(argv=None) -> int:
    """Standalone entry point: OTLP export overhead smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else 32_768)
    table = overhead_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if table["overhead_best"] >= OVERHEAD_CEILING:
        print(
            f"FAIL: OTLP-exporting ingest overhead"
            f" {table['overhead_best'] * 100:.1f}% exceeds"
            f" {OVERHEAD_CEILING * 100:.0f}% in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
