"""Ablation: what Dobra's a-priori partition knowledge buys [9].

The paper excludes the domain-partitioned sketch from its comparison
because it "requires a priori knowledge of the data distributions (to find
a good partition)".  This bench quantifies both sides of that exclusion on
skewed Type I data:

* with a *pilot* of the true distributions, equi-mass partitioning
  isolates the heavy values and beats the basic sketch at equal space;
* with an uninformed (uniform) pilot, partitioning degenerates toward
  plain equi-width sub-sketches and the advantage shrinks —
  the knowledge, not the partitioning, is doing the work.
"""

import numpy as np

from repro.data.zipf import Correlation, TypeIConfig, make_type1_pair
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.basic import estimate_join_size as basic_join
from repro.sketches.hashing import SignFamily
from repro.sketches.partitioned import (
    PartitionedSketch,
    equi_mass_partition,
    estimate_join_size as partitioned_join,
)
from repro.streams.exact import relative_error

DOMAIN = 2_000
RELATION = 100_000
BUDGET = 640
PARTITIONS = 16
TRIALS = 10


def _one_trial(rng, seed):
    # Strongly positively correlated skewed data: the join is dominated by
    # the aligned heavy head, which an informed partition isolates into
    # narrow, nearly-single-valued sub-domains (where sketches are exact).
    config = TypeIConfig(
        domain_size=DOMAIN,
        relation_size=RELATION,
        z1=1.0,
        z2=1.0,
        correlation=Correlation.STRONG_POSITIVE,
    )
    c1, c2 = make_type1_pair(config, rng)
    actual = float(c1 @ c2)

    informed = equi_mass_partition((c1 + c2).astype(float), PARTITIONS)
    uninformed = equi_mass_partition(np.ones(DOMAIN), PARTITIONS)

    results = {}
    for name, boundaries in (("informed", informed), ("uninformed", uninformed)):
        a = PartitionedSketch.from_counts(c1.astype(float), boundaries, BUDGET, seed)
        b = PartitionedSketch.from_counts(c2.astype(float), boundaries, BUDGET, seed)
        results[name] = relative_error(actual, partitioned_join(a, b))

    s1, s2 = split_budget(BUDGET)
    family = SignFamily(DOMAIN, s1 * s2, seed=seed)
    ba = AGMSSketch.from_counts(family, c1.astype(float), s1, s2)
    bb = AGMSSketch.from_counts(family, c2.astype(float), s1, s2)
    results["basic"] = relative_error(actual, basic_join(ba, bb))
    return results


def test_partitioned_sketch_ablation(benchmark, capsys):
    def sweep():
        rng = np.random.default_rng(0)
        collected: dict[str, list[float]] = {"informed": [], "uninformed": [], "basic": []}
        for seed in range(TRIALS):
            for name, err in _one_trial(rng, seed).items():
                collected[name].append(err)
        return {name: float(np.median(errs)) for name, errs in collected.items()}

    medians = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\nstrongly-correlated skewed data, {BUDGET} atomic sketches, "
            f"{PARTITIONS} partitions — median relative error over {TRIALS} trials:"
        )
        for name in ("basic", "uninformed", "informed"):
            print(f"  {name:>11}: {medians[name] * 100:8.2f}%")
    # The a-priori knowledge is what buys accuracy.
    assert medians["informed"] < medians["uninformed"]
    assert medians["informed"] < medians["basic"]
