"""Two-join, clustered data, 50 clusters (Figure 10).

Regenerates the paper's fig10 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins; the paper reports 11.1x/14.3x larger sketch errors at 1000 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig10(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig10",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig10; see the printed table"
    )
