"""Single-join, weak positive correlation (Figure 2).

Regenerates the paper's fig02 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins; the paper reports sketch errors 2.7x-8.3x larger at 500 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig02(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig02",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig02; see the printed table"
    )
