"""Sharded ingest throughput: the fleet must scale past one core.

``repro.sharding.ShardedStreamEngine`` exists to buy ingest throughput
with shards: hash-partitioned batches are scattered to N workers, each
updating its own synopses, and answers come back through coefficient
merging.  This bench measures tuples/second at 1, 2 and 4 shards for the
thread and process executors against the single-engine baseline, and —
when real parallel hardware is present — asserts the point of the whole
subsystem: 4 process shards must ingest at least 1.5x faster than one.

The scaling assertion is opt-in (``--assert-scaling``) and self-gates on
``os.cpu_count() >= 4``: on a 1-core container the executor overhead is
all cost and no win, and asserting speedup there would only test the
scheduler.  CI runs it on 4-vCPU runners; the JSON artifact records the
measured ratios either way so regressions are visible in history.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_sharded_throughput.py --smoke --json out.json
"""

import os
import time

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.sharding import ShardedStreamEngine
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 2_000
BATCH = 2_048
BUDGET = 200
ROUNDS = 3
SHARD_COUNTS = (1, 2, 4)
EXECUTORS = ("thread", "process")
METHODS = ("cosine", "basic_sketch", "histogram")
SCALING_FLOOR = 1.5  # 4 process shards vs 1, on >= 4 cores
MIN_CORES_FOR_SCALING = 4


def _register(engine) -> None:
    domain = Domain.of_size(DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in METHODS:
        engine.register_query(f"q_{method}", query, method=method, budget=BUDGET)


def _workload(tuples: int) -> np.ndarray:
    return ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]


def _ingest_seconds(engine, rows: np.ndarray) -> float:
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, rows.shape[0], BATCH):
            engine.ingest_batch(name, rows[lo : lo + BATCH])
    return time.perf_counter() - start


def _baseline_tps(tuples: int, rounds: int) -> float:
    rows = _workload(tuples)
    best = float("inf")
    for _ in range(rounds):
        engine = StreamEngine(seed=0)
        _register(engine)
        best = min(best, _ingest_seconds(engine, rows))
    return 2 * tuples / best


def _fleet_tps(tuples: int, shards: int, executor: str, rounds: int) -> float:
    rows = _workload(tuples)
    best = float("inf")
    for _ in range(rounds):
        with ShardedStreamEngine(num_shards=shards, seed=0, executor=executor) as fleet:
            _register(fleet)
            fleet.ingest_batch("R1", rows[:BATCH])  # warm up worker pipes
            best = min(best, _ingest_seconds(fleet, rows))
    return 2 * tuples / best


def scaling_table(tuples: int = 65_536, rounds: int = ROUNDS) -> dict:
    """tuples/s per (executor, shard count), plus speedups vs 1 shard."""
    baseline = _baseline_tps(tuples, rounds)
    grid: dict[str, dict[str, float]] = {}
    for executor in EXECUTORS:
        row = {}
        for shards in SHARD_COUNTS:
            row[str(shards)] = _fleet_tps(tuples, shards, executor, rounds)
        grid[executor] = row
    process = grid["process"]
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "methods": list(METHODS),
        "single_engine_tps": baseline,
        "tps": grid,
        "speedup_4_shards_process": process["4"] / process["1"],
        "scaling_floor": SCALING_FLOOR,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    print(
        f"sharded ingest of 2 x {tuples:,} tuples (batch {table['batch']},"
        f" methods {', '.join(table['methods'])}, {table['rounds']} rounds,"
        f" {table['cpu_count']} cpus), best-round tuples/s:"
    )
    print(f"  single engine       {table['single_engine_tps']:>12,.0f}")
    for executor, row in table["tps"].items():
        cells = "  ".join(
            f"{shards}sh {tps:>11,.0f}" for shards, tps in row.items()
        )
        print(f"  {executor:<8}            {cells}")
    print(
        f"  process 4-shard speedup vs 1-shard:"
        f" {table['speedup_4_shards_process']:.2f}x"
        f"  (floor {table['scaling_floor']:.1f}x when cpus >= {MIN_CORES_FOR_SCALING})"
    )


def test_sharded_ingest_smoke(benchmark, capsys):
    """Fleet ingest at every shard count stays within sight of the baseline.

    On 1-core runners this is a correctness-of-plumbing smoke (the grid
    runs end to end and produces positive throughput); the scaling floor
    itself is asserted by the standalone CI entry point on bigger boxes.
    """
    table = benchmark.pedantic(
        lambda: scaling_table(tuples=8_192, rounds=1), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["single_engine_tps"] > 0
    for row in table["tps"].values():
        assert all(tps > 0 for tps in row.values())


def test_sharded_answers_match_during_bench_workload():
    """The bench workload itself answers identically sharded vs single."""
    rows = _workload(4 * BATCH)
    single = StreamEngine(seed=0)
    _register(single)
    with ShardedStreamEngine(num_shards=4, seed=0, executor="thread") as fleet:
        _register(fleet)
        for name in ("R1", "R2"):
            for lo in range(0, rows.shape[0], BATCH):
                single.ingest_batch(name, rows[lo : lo + BATCH])
                fleet.ingest_batch(name, rows[lo : lo + BATCH])
        for method in ("basic_sketch", "histogram"):
            assert fleet.answer(f"q_{method}") == single.answer(f"q_{method}")
        assert fleet.answer("q_cosine") == pytest.approx(
            single.answer("q_cosine"), rel=1e-9
        )


def main(argv=None) -> int:
    """Standalone entry point: sharded throughput benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument(
        "--assert-scaling",
        action="store_true",
        help=f"fail unless 4 process shards beat 1 by {SCALING_FLOOR}x"
        f" (ignored below {MIN_CORES_FOR_SCALING} cpus)",
    )
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (16_384 if args.smoke else 65_536)
    table = scaling_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if args.assert_scaling:
        cpus = os.cpu_count() or 1
        if cpus < MIN_CORES_FOR_SCALING:
            print(
                f"skipping scaling assertion: {cpus} cpu(s) <"
                f" {MIN_CORES_FOR_SCALING} (no parallel hardware to scale onto)"
            )
        elif table["speedup_4_shards_process"] < SCALING_FLOOR:
            print(
                f"FAIL: 4-shard process speedup"
                f" {table['speedup_4_shards_process']:.2f}x is below the"
                f" {SCALING_FLOOR:.1f}x floor on {cpus} cpus"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
