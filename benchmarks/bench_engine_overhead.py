"""Engine overhead: what the system layer costs on top of raw synopses.

The ContinuousQueryEngine routes every stream operation through exact
state maintenance plus one observer per registered query.  This bench
measures per-operation cost as queries accumulate (0, 1, 4 cosine queries)
and asserts the dispatch overhead scales roughly linearly in the number of
observers — no quadratic surprises — and that a bare relation (exact
counts only) stays cheap.
"""

import time

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.streams.engine import ContinuousQueryEngine
from repro.streams.queries import JoinQuery

N = 512
OPS = 400
BUDGET = 128


def _engine_with_queries(num_queries: int) -> ContinuousQueryEngine:
    eng = ContinuousQueryEngine(seed=1)
    eng.create_relation("S1", ["A"], [Domain.of_size(N)])
    eng.create_relation("S2", ["A"], [Domain.of_size(N)])
    query = JoinQuery.chain(["S1", "S2"], ["A"])
    for i in range(num_queries):
        eng.register_query(f"q{i}", query, method="cosine", budget=BUDGET)
    return eng


def _ops_per_second(num_queries: int) -> float:
    eng = _engine_with_queries(num_queries)
    values = np.random.default_rng(0).integers(0, N, OPS)
    start = time.perf_counter()
    for v in values:
        eng.insert("S1", (int(v),))
    return OPS / (time.perf_counter() - start)


@pytest.mark.parametrize("num_queries", [0, 1, 4])
def test_engine_insert_overhead(benchmark, num_queries):
    benchmark.pedantic(_ops_per_second, args=(num_queries,), iterations=1, rounds=3)


def test_overhead_scales_linearly(benchmark, capsys):
    def sweep():
        return {q: _ops_per_second(q) for q in (0, 1, 2, 4, 8)}

    throughput = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print("\nengine insert throughput vs registered cosine queries:")
        for q, tput in throughput.items():
            print(f"  {q} queries: {tput:>10,.0f} ops/s")
    # Per-op cost should grow at most ~linearly with observers: going from
    # 1 to 8 queries must not cost more than ~8x + generous constant slack.
    assert throughput[8] > throughput[1] / 16
    # A bare relation (exact state only) stays in a high-throughput regime.
    assert throughput[0] > 5_000
