"""Bounds overhead: degree maintenance must be near-free on the ingest path.

``register_query(..., bounds=True)`` attaches one
:class:`~repro.bounds.degree.DegreeObserver` per (relation, join-slot)
pair.  Each observer's batch update is a single ``np.bincount`` plus a
vector add over the attribute's unified domain — O(batch + domain) work
that must stay within 10% of the same ingest without bounds, or the
"always maintain the sound bound" recommendation in ``docs/BOUNDS.md``
stops being honest.

Timing noise on shared CI runners is real, so the assertion takes the
*best* overhead across several interleaved rounds: the claim is about
the code, not about one noisy measurement.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_bounds_overhead.py --smoke [--json out.json]
"""

import time

import numpy as np

from repro.core.normalization import Domain
from repro.obs import Telemetry
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 2_000
BATCH = 1_024
BUDGET = 200
OVERHEAD_CEILING = 0.10  # bounded ingest may cost at most 10% over unbounded
ROUNDS = 5


def _ingest_seconds(bounds: bool, tuples: int, batch: int = BATCH) -> float:
    """Wall-clock seconds to batch-ingest ``tuples`` rows per relation.

    Telemetry is disabled in both arms so the measured delta is the
    degree maintenance alone, not metrics bookkeeping around it.
    """
    engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
    domain = Domain.of_size(DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=BUDGET, bounds=bounds)
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % DOMAIN)[:, None]
    start = time.perf_counter()
    for name in ("R1", "R2"):
        for lo in range(0, tuples, batch):
            engine.ingest_batch(name, rows[lo : lo + batch])
    return time.perf_counter() - start


def overhead_table(tuples: int = 32_768, rounds: int = ROUNDS) -> dict:
    """Bounded-vs-plain ingest timings, interleaved; best-round overhead."""
    bounded_times, plain_times, overheads = [], [], []
    for _ in range(rounds):
        plain = _ingest_seconds(False, tuples)
        bounded = _ingest_seconds(True, tuples)
        plain_times.append(plain)
        bounded_times.append(bounded)
        overheads.append(bounded / plain - 1.0)
    return {
        "tuples_per_relation": tuples,
        "batch": BATCH,
        "rounds": rounds,
        "bounded_seconds": bounded_times,
        "plain_seconds": plain_times,
        "bounded_tps_best": 2 * tuples / min(bounded_times),
        "plain_tps_best": 2 * tuples / min(plain_times),
        "overhead_per_round": overheads,
        "overhead_best": min(overheads),
        "overhead_ceiling": OVERHEAD_CEILING,
    }


def _print_table(table: dict) -> None:
    tuples = table["tuples_per_relation"]
    print(
        f"batched ingest of 2 x {tuples:,} tuples (batch {table['batch']}),"
        f" {table['rounds']} interleaved rounds:"
    )
    print(f"  bounds=False        {table['plain_tps_best']:>12,.0f} tuples/s (best)")
    print(f"  bounds=True         {table['bounded_tps_best']:>12,.0f} tuples/s (best)")
    rounds = ", ".join(f"{o * 100:+.1f}%" for o in table["overhead_per_round"])
    print(f"  overhead per round  {rounds}")
    print(
        f"  best-round overhead {table['overhead_best'] * 100:+.2f}%"
        f"  (ceiling {table['overhead_ceiling'] * 100:.0f}%)"
    )


def test_bounds_ingest_overhead_under_ceiling(benchmark, capsys):
    """Degree maintenance must cost < 10% over the same ingest without it."""
    table = benchmark.pedantic(
        lambda: overhead_table(tuples=16_384, rounds=3), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        _print_table(table)
    assert table["overhead_best"] < OVERHEAD_CEILING


def test_bound_read_does_not_touch_the_ingest_path():
    """upper_bound() is a pure read: repeated reads leave state unchanged."""
    engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
    domain = Domain.of_size(64)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="basic_sketch", budget=16, bounds=True)
    rows = np.arange(200)[:, None] % 64
    engine.ingest_batch("R1", rows)
    engine.ingest_batch("R2", rows)
    first = engine.estimate("q", mode="upper_bound")
    for _ in range(10):
        assert engine.estimate("q", mode="upper_bound") == first


def main(argv=None) -> int:
    """Standalone entry point: bounds overhead smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, CI-sized workload")
    parser.add_argument("--tuples", type=int, default=None, help="tuples per relation")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (8_192 if args.smoke else 32_768)
    table = overhead_table(tuples=tuples, rounds=args.rounds)
    _print_table(table)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(table, handle, indent=1)
        print(f"wrote {args.json}")
    if table["overhead_best"] >= OVERHEAD_CEILING:
        print(
            f"FAIL: bounds=True ingest overhead"
            f" {table['overhead_best'] * 100:.1f}% exceeds"
            f" {OVERHEAD_CEILING * 100:.0f}% in every round"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
