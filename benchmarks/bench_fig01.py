"""Single-join, strong positive correlation, rough distributions (Figure 1).

The one Type I setting where the paper concedes the sketches win: strong
positive correlation "is a generalization of the self-join case for which
the sketch was shown to be most suitable".  The shape to reproduce is the
inverse of every other figure: at least one sketch below the cosine curve.
"""

from _figure_bench import run_figure, sketches_win


def test_fig01(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig01",
        check=lambda result: _check(result),
    )


def _check(result):
    assert sketches_win(result), (
        "expected at least one sketch to beat the cosine method on the "
        "strongly positively correlated rough data of Figure 1"
    )
