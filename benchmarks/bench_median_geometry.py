"""Ablation: the sketch's median-of-means geometry at fixed total space.

Alon et al.'s estimator averages ``s1`` atomic sketches per group and takes
the median of ``s2`` group means; the paper fixes total space ``s1 * s2``
and never revisits the split.  This bench sweeps ``s2`` at a fixed budget
on heavy-tailed weak-positive data and documents a negative result that
*supports* the paper's indifference: every geometry lands within a small
factor of every other on both typical (median) and tail (p90) error —
when the estimator's variance is dominated by the distributions' second
moments, no averaging/median split rescues it.  The assertion pins that
down: geometry is a second-order effect (all medians within 2x), and the
p90 tail dominates the median for every split (the estimator is
right-skewed however it is sliced).
"""

import numpy as np

from repro.data.zipf import Correlation, TypeIConfig, make_type1_pair
from repro.sketches.basic import AGMSSketch, estimate_join_size
from repro.sketches.hashing import SignFamily

DOMAIN = 2_000
RELATION = 100_000
BUDGET = 315  # divisible by every geometry below
GEOMETRIES = (1, 3, 5, 9, 15)
TRIALS = 30


def _errors_for_geometry(num_medians: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    config = TypeIConfig(
        domain_size=DOMAIN,
        relation_size=RELATION,
        z1=0.8,
        z2=1.0,
        correlation=Correlation.WEAK_POSITIVE,
    )
    s1 = BUDGET // num_medians
    errors = []
    for seed in range(TRIALS):
        c1, c2 = make_type1_pair(config, rng)
        actual = float(c1 @ c2)
        family = SignFamily(DOMAIN, s1 * num_medians, seed=seed)
        a = AGMSSketch.from_counts(family, c1.astype(float), s1, num_medians)
        b = AGMSSketch.from_counts(family, c2.astype(float), s1, num_medians)
        errors.append(abs(estimate_join_size(a, b) - actual) / actual)
    return np.asarray(errors)


def test_median_of_means_geometry(benchmark, capsys):
    def sweep():
        return {s2: _errors_for_geometry(s2) for s2 in GEOMETRIES}

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    medians = {s2: float(np.median(v)) for s2, v in table.items()}
    tails = {s2: float(np.quantile(v, 0.9)) for s2, v in table.items()}
    with capsys.disabled():
        print(f"\nbasic sketch at {BUDGET} atomic sketches, {TRIALS} trials:")
        print(f"{'s2 groups':>10}  {'s1 means':>9}  {'median err':>11}  {'p90 err':>9}")
        for s2 in GEOMETRIES:
            print(
                f"{s2:>10}  {BUDGET // s2:>9}  {medians[s2] * 100:>10.1f}%  "
                f"{tails[s2] * 100:>8.1f}%"
            )
    # Geometry is a second-order effect: all medians within 2x of the best.
    assert max(medians.values()) < 2.0 * min(medians.values())
    # The error distribution is right-skewed for every split.
    for s2 in GEOMETRIES:
        assert tails[s2] > medians[s2]
