"""Single-join (2), Real data III: TCP destination hosts (Figure 18).

Regenerates the paper's fig18 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Same story as Figure 17 on the destination attribute.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig18(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig18",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig18; see the printed table"
    )
