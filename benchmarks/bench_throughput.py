"""Update throughput vs synopsis size — the "cope with rapid flow" claim.

Section 1 requires stream processing to be "time and space efficient";
section 5.4 argues both synopsis families update fast enough "to cope with
the fast on-line one-pass data streams".  This bench measures sustained
per-tuple update throughput (tuples/second) of the cosine synopsis and the
AGMS sketch as the synopsis grows from 100 to 10,000 counters, both in
per-tuple and batch mode, and asserts the linear-in-size scaling the O(m)
update analysis predicts (no superlinear cliffs).

It also measures the *engine-level* ingest path: ``StreamEngine.insert``
(one Python round-trip per tuple through every observer) against
``StreamEngine.ingest_batch`` (one vectorized scatter-add plus one
``on_ops`` notification per observer per batch), asserting the batched
path is at least 5x faster at batch size 1024 for the cosine method.

Runnable standalone for CI smoke checks::

    python benchmarks/bench_throughput.py --smoke [--json out.json]
"""

import time

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.hashing import SignFamily
from repro.streams import JoinQuery, StreamEngine

DOMAIN = 50_000
SIZES = (100, 1_000, 10_000)
TUPLES = 300

ENGINE_DOMAIN = 2_000
ENGINE_BATCH = 1024
ENGINE_SPEEDUP_FLOOR = 5.0


def _stream_values(rng) -> np.ndarray:
    # realistic skewed stream: a Zipfian hot set inside a large domain
    return (rng.zipf(1.3, size=TUPLES) - 1) % DOMAIN


def _cosine_tput(size: int, batch: int) -> float:
    syn = CosineSynopsis(Domain.of_size(DOMAIN), order=size)
    rows = _stream_values(np.random.default_rng(0))[:, None]
    start = time.perf_counter()
    if batch == 1:
        for row in rows:
            syn.insert(row)
    else:
        for lo in range(0, TUPLES, batch):
            syn.insert_batch(rows[lo : lo + batch])
    return TUPLES / (time.perf_counter() - start)


def _sketch_tput(size: int, batch: int) -> float:
    s1, s2 = split_budget(size)
    sk = AGMSSketch(SignFamily(DOMAIN, s1 * s2, seed=0), s1, s2)
    values = _stream_values(np.random.default_rng(0))
    start = time.perf_counter()
    if batch == 1:
        for v in values:
            sk.update(int(v))
    else:
        for lo in range(0, TUPLES, batch):
            sk.update_batch(values[lo : lo + batch])
    return TUPLES / (time.perf_counter() - start)


def _engine_tput(method: str, batch: int, tuples: int, budget: int = 200) -> float:
    """Sustained engine ingest throughput (tuples/second) for one method."""
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(ENGINE_DOMAIN)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    options = {"probability": 0.1} if method == "sample" else {}
    engine.register_query("q", query, method=method, budget=budget, **options)
    rows = ((np.random.default_rng(0).zipf(1.3, size=tuples) - 1) % ENGINE_DOMAIN)[:, None]
    start = time.perf_counter()
    if batch == 1:
        for value in rows[:, 0]:
            engine.insert("R1", (int(value),))
    else:
        for lo in range(0, tuples, batch):
            engine.ingest_batch("R1", rows[lo : lo + batch])
    return tuples / (time.perf_counter() - start)


def engine_speedup_table(methods=("cosine",), tuples: int = 8192) -> dict:
    """Per-method engine throughput: per-tuple vs batch-1024, with speedup."""
    table = {}
    for method in methods:
        per_tuple = _engine_tput(method, 1, tuples)
        batched = _engine_tput(method, ENGINE_BATCH, tuples)
        table[method] = {
            "per_tuple_tps": per_tuple,
            "batched_tps": batched,
            "speedup": batched / per_tuple,
        }
    return table


@pytest.mark.parametrize("size", SIZES)
def test_cosine_update_throughput(benchmark, size):
    benchmark.pedantic(_cosine_tput, args=(size, 1), iterations=1, rounds=3)


@pytest.mark.parametrize("size", SIZES)
def test_sketch_update_throughput(benchmark, size):
    benchmark.pedantic(_sketch_tput, args=(size, 1), iterations=1, rounds=3)


def test_throughput_scaling_report(benchmark, capsys):
    def sweep():
        table = {}
        for size in SIZES:
            table[size] = {
                "cosine/tuple": _cosine_tput(size, 1),
                "cosine/batch": _cosine_tput(size, 64),
                "sketch/tuple": _sketch_tput(size, 1),
                "sketch/batch": _sketch_tput(size, 64),
            }
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print("\nsustained update throughput (tuples/second):")
        cols = list(next(iter(table.values())))
        print(f"{'size':>7}  " + "  ".join(f"{c:>13}" for c in cols))
        for size, row in table.items():
            print(f"{size:>7}  " + "  ".join(f"{row[c]:>13,.0f}" for c in cols))
    # Batching must help (the section 3.2 claim) wherever per-call
    # overhead or duplicate aggregation can pay — i.e. at every size on a
    # skewed stream.
    for size in SIZES:
        assert table[size]["cosine/batch"] > table[size]["cosine/tuple"] * 0.9
    # O(m) scaling: growing the synopsis 100x must not cost much more than
    # ~100x throughput (allow 4x slack for fixed per-call overheads).
    ratio = table[SIZES[0]]["cosine/tuple"] / table[SIZES[-1]]["cosine/tuple"]
    assert ratio < (SIZES[-1] / SIZES[0]) * 4


def test_engine_batched_ingest_speedup(benchmark, capsys):
    """ingest_batch(1024) must beat per-tuple engine ingest by >= 5x (cosine)."""
    table = benchmark.pedantic(
        lambda: engine_speedup_table(("cosine", "basic_sketch")),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print("\nengine ingest throughput (tuples/second):")
        for method, row in table.items():
            print(
                f"  {method:<14} per-tuple {row['per_tuple_tps']:>12,.0f}"
                f"  batch-{ENGINE_BATCH} {row['batched_tps']:>12,.0f}"
                f"  speedup {row['speedup']:>6.1f}x"
            )
    assert table["cosine"]["speedup"] >= ENGINE_SPEEDUP_FLOOR


def main(argv=None) -> int:
    """Standalone entry point: engine ingest smoke benchmark for CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small, CI-sized workload"
    )
    parser.add_argument("--tuples", type=int, default=None, help="tuples per run")
    parser.add_argument(
        "--methods", default="cosine,basic_sketch", help="comma-separated methods"
    )
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    tuples = args.tuples or (2048 if args.smoke else 8192)
    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    table = engine_speedup_table(methods, tuples=tuples)
    print(f"engine ingest throughput over {tuples:,} tuples (tuples/second):")
    for method, row in table.items():
        print(
            f"  {method:<14} per-tuple {row['per_tuple_tps']:>12,.0f}"
            f"  batch-{ENGINE_BATCH} {row['batched_tps']:>12,.0f}"
            f"  speedup {row['speedup']:>6.1f}x"
        )
    if args.json:
        payload = {"tuples": tuples, "batch": ENGINE_BATCH, "results": table}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=1)
        print(f"wrote {args.json}")
    floor = ENGINE_SPEEDUP_FLOOR
    if table.get("cosine", {}).get("speedup", floor) < floor:
        print(f"FAIL: cosine batched ingest speedup below {floor}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
