"""Update throughput vs synopsis size — the "cope with rapid flow" claim.

Section 1 requires stream processing to be "time and space efficient";
section 5.4 argues both synopsis families update fast enough "to cope with
the fast on-line one-pass data streams".  This bench measures sustained
per-tuple update throughput (tuples/second) of the cosine synopsis and the
AGMS sketch as the synopsis grows from 100 to 10,000 counters, both in
per-tuple and batch mode, and asserts the linear-in-size scaling the O(m)
update analysis predicts (no superlinear cliffs).
"""

import time

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.hashing import SignFamily

DOMAIN = 50_000
SIZES = (100, 1_000, 10_000)
TUPLES = 300


def _stream_values(rng) -> np.ndarray:
    # realistic skewed stream: a Zipfian hot set inside a large domain
    return (rng.zipf(1.3, size=TUPLES) - 1) % DOMAIN


def _cosine_tput(size: int, batch: int) -> float:
    syn = CosineSynopsis(Domain.of_size(DOMAIN), order=size)
    rows = _stream_values(np.random.default_rng(0))[:, None]
    start = time.perf_counter()
    if batch == 1:
        for row in rows:
            syn.insert(row)
    else:
        for lo in range(0, TUPLES, batch):
            syn.insert_batch(rows[lo : lo + batch])
    return TUPLES / (time.perf_counter() - start)


def _sketch_tput(size: int, batch: int) -> float:
    s1, s2 = split_budget(size)
    sk = AGMSSketch(SignFamily(DOMAIN, s1 * s2, seed=0), s1, s2)
    values = _stream_values(np.random.default_rng(0))
    start = time.perf_counter()
    if batch == 1:
        for v in values:
            sk.update(int(v))
    else:
        for lo in range(0, TUPLES, batch):
            sk.update_batch(values[lo : lo + batch])
    return TUPLES / (time.perf_counter() - start)


@pytest.mark.parametrize("size", SIZES)
def test_cosine_update_throughput(benchmark, size):
    benchmark.pedantic(_cosine_tput, args=(size, 1), iterations=1, rounds=3)


@pytest.mark.parametrize("size", SIZES)
def test_sketch_update_throughput(benchmark, size):
    benchmark.pedantic(_sketch_tput, args=(size, 1), iterations=1, rounds=3)


def test_throughput_scaling_report(benchmark, capsys):
    def sweep():
        table = {}
        for size in SIZES:
            table[size] = {
                "cosine/tuple": _cosine_tput(size, 1),
                "cosine/batch": _cosine_tput(size, 64),
                "sketch/tuple": _sketch_tput(size, 1),
                "sketch/batch": _sketch_tput(size, 64),
            }
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print("\nsustained update throughput (tuples/second):")
        cols = list(next(iter(table.values())))
        print(f"{'size':>7}  " + "  ".join(f"{c:>13}" for c in cols))
        for size, row in table.items():
            print(f"{size:>7}  " + "  ".join(f"{row[c]:>13,.0f}" for c in cols))
    # Batching must help (the section 3.2 claim) wherever per-call
    # overhead or duplicate aggregation can pay — i.e. at every size on a
    # skewed stream.
    for size in SIZES:
        assert table[size]["cosine/batch"] > table[size]["cosine/tuple"] * 0.9
    # O(m) scaling: growing the synopsis 100x must not cost much more than
    # ~100x throughput (allow 4x slack for fixed per-call overheads).
    ratio = table[SIZES[0]]["cosine/tuple"] / table[SIZES[-1]]["cosine/tuple"]
    assert ratio < (SIZES[-1] / SIZES[0]) * 4
