"""Single-join, Real data I: CPS Age (Figure 13).

The paper's easiest real setting: a tiny [1,99] Age domain and a huge join
(~0.26 billion tuples).  "All methods give good estimation" — 4.71%, 8.08%
and 16.05% for cosine, skimmed, basic at just 20 coefficients — with the
cosine method lowest throughout.
"""

from _figure_bench import cosine_wins, run_figure, tail_mean


def test_fig13(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig13",
        check=_check,
    )


def _check(result):
    assert cosine_wins(result)
    # "All methods good": even the basic sketch stays in a usable regime on
    # this domain (paper: 16% at 20 atomic sketches).
    assert tail_mean(result, "cosine") < 0.05
    assert tail_mean(result, "basic_sketch") < 0.8
