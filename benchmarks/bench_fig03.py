"""Single-join, independent attributes (Figure 3).

Regenerates the paper's fig03 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins big; the paper reports 24.4x/49.8x larger sketch
errors at 500 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig03(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig03",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig03; see the printed table"
    )
