"""Single-join, independent attributes with skewer zipf 1.5 data (Figure 6).

Versus Figure 3 (zipf 1.0) the paper reports that "all methods suffer from
performance degradation" as skew rises, with the ordering unchanged: the
sketches' errors remain several-fold larger than the cosine method's
(7.5x and 39.5x at 500 coefficients in the paper).
"""

from _figure_bench import SEED, cosine_wins, run_figure, tail_mean
from repro.experiments.figures import FIGURES
from repro.experiments.harness import run_experiment
from repro.experiments.methods import BasicSketchMethod


def test_fig06(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig06",
        check=lambda result: _check(result, capsys),
    )


def _check(result, capsys):
    assert cosine_wins(result), "cosine should still win on the skewer data"
    # Degradation claim: the basic sketch on zipf 1.5 is clearly worse than
    # the basic sketch on the zipf 1.0 data of Figure 3.
    fig03 = run_experiment(
        FIGURES["fig03"], seed=SEED, methods=[BasicSketchMethod()]
    )
    skew_err = tail_mean(result, "basic_sketch")
    base_err = tail_mean(fig03, "basic_sketch")
    with capsys.disabled():
        print(
            f"basic sketch tail error: zipf 1.0 (fig03) {base_err * 100:.2f}% "
            f"vs zipf 1.5 (fig06) {skew_err * 100:.2f}%"
        )
    assert skew_err > base_err
