"""Three-join, clustered data, 10 clusters (Figure 11).

Regenerates the paper's fig11 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine converges first; sketch errors 'too large to be useful'
at small budgets (paper).
"""

from _figure_bench import cosine_wins, run_figure


def test_fig11(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig11",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig11; see the printed table"
    )
