"""Sensitivity sweeps: the axes between the paper's fixed figure points.

Four sweeps (see :mod:`repro.experiments.sweeps`):

* skew — interpolates Figure 3 -> Figure 6 and asserts what the paper
  states in prose: skew degrades every method but "does not seem to play
  particularly in favour of any method";
* correlation — interpolates Figure 1 -> Figure 2 and locates the
  crossover where the cosine method overtakes the sketches as positive
  correlation weakens;
* domain size — fixed m/n coefficient fraction, checking reproduction
  scales transfer toward the paper's n = 10^5;
* bound tightness — the Eq. 4.8 worst-case guarantee vs measured error
  (orders of magnitude apart: the argument for measuring, not bounding).
"""

from repro.experiments.sweeps import (
    bound_tightness_sweep,
    correlation_sweep,
    domain_size_sweep,
    skew_sweep,
)


def _print_points(capsys, label, points):
    with capsys.disabled():
        print(f"\n{label}:")
        methods = list(points[0].errors)
        print(f"{'param':>9}  " + "  ".join(f"{m:>15}" for m in methods))
        for p in points:
            print(
                f"{p.parameter:>9.3g}  "
                + "  ".join(f"{p.errors[m] * 100:>14.2f}%" for m in methods)
            )


def test_skew_sweep(benchmark, capsys):
    points = benchmark.pedantic(skew_sweep, iterations=1, rounds=1)
    _print_points(capsys, "error vs zipf skew of R2 (independent data)", points)
    # Everyone degrades from no-skew to heavy skew...
    for method in points[0].errors:
        assert points[-1].errors[method] > points[0].errors[method]
    # ...and the cosine method stays ahead at the skewed end (Figure 6).
    assert points[-1].errors["cosine"] <= points[-1].errors["basic_sketch"]


def test_correlation_sweep(benchmark, capsys):
    points = benchmark.pedantic(correlation_sweep, iterations=1, rounds=1)
    _print_points(
        capsys, "error vs displaced-head fraction (strong positive -> weak)", points
    )
    # At full alignment the sketches win (Figure 1)...
    start = points[0].errors
    assert min(start["basic_sketch"], start["skimmed_sketch"]) < start["cosine"]
    # ...and once a quarter of the head is displaced the cosine method wins
    # (the Figure 2 regime and beyond).
    end = points[-1].errors
    assert end["cosine"] < end["basic_sketch"]
    assert end["cosine"] < end["skimmed_sketch"]


def test_domain_size_sweep(benchmark, capsys):
    points = benchmark.pedantic(domain_size_sweep, iterations=1, rounds=1)
    _print_points(capsys, "error vs domain size at 5% coefficient fraction", points)
    # The cosine error at a fixed m/n fraction stays in one moderate regime
    # across a 10x domain growth — no systematic blow-up with n — which is
    # what lets reproduction-scale shapes transfer toward the paper's 10^5.
    cosine = [p.errors["cosine"] for p in points]
    assert max(cosine) < 0.3


def test_bound_tightness(benchmark, capsys):
    points = benchmark.pedantic(bound_tightness_sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print("\nEq. 4.8 worst-case bound vs measured cosine error:")
        print(f"{'space':>7}  {'measured':>12}  {'bound':>14}  {'slack':>10}")
        for p in points:
            slack = p.bound / max(p.measured, 1e-12)
            print(
                f"{p.budget:>7}  {p.measured * 100:>11.3f}%  "
                f"{p.bound * 100:>13.1f}%  {slack:>9.0f}x"
            )
    for p in points:
        # the guarantee must hold...
        assert p.measured <= p.bound + 1e-9
    # ...and be spectacularly loose on real-ish data (>= 10x at every
    # budget), which is why the paper measures instead of bounding.
    assert all(p.bound / max(p.measured, 1e-12) > 10 for p in points)
