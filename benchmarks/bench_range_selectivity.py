"""Range selectivity estimation: the section 2 mainstream, measured.

The paper positions join estimation as the hard case and notes most prior
stream work "concentrates on point and range query estimation".  This
bench covers that mainstream with the same synopses: random range COUNT
queries over a smooth-ish CPS-like Age-Education population and a rough
Zipfian distribution, cosine vs equi-width histogram vs Haar wavelet at
equal space.  Expected shape: all three are usable; the transform methods
(cosine, wavelet) win on the smooth data, the histogram is competitive on
rough data at coarse ranges; and the cosine synopsis answers from the
same state that serves joins — no dedicated structure needed.
"""

import numpy as np

from repro.core.normalization import Domain
from repro.core.range_query import estimate_range_count
from repro.core.synopsis import CosineSynopsis
from repro.data.reallike import cps_like
from repro.data.zipf import zipf_counts
from repro.histograms.equiwidth import EquiWidthHistogram
from repro.wavelets.haar import HaarSynopsis, inverse_haar_transform

BUDGET = 32
NUM_QUERIES = 200


def _histogram_range(hist: EquiWidthHistogram, lo: int, hi: int) -> float:
    """Uniform-within-bucket range count from an equi-width histogram."""
    total = 0.0
    for b in range(hist.num_buckets):
        b_lo, b_hi = int(hist.boundaries[b]), int(hist.boundaries[b + 1]) - 1
        overlap = min(hi, b_hi) - max(lo, b_lo) + 1
        if overlap > 0:
            total += hist.counts[b] * overlap / (b_hi - b_lo + 1)
    return total


def _wavelet_range(syn: HaarSynopsis, lo: int, hi: int) -> float:
    kept = np.zeros(syn._size)
    idx, vals = syn.top_coefficients()
    kept[idx] = vals
    reconstructed = inverse_haar_transform(kept, syn.domain.size)
    return float(reconstructed[lo : hi + 1].sum())


def _mean_error(counts: np.ndarray, rng: np.random.Generator) -> dict[str, float]:
    n = len(counts)
    domain = Domain.of_size(n)
    cosine = CosineSynopsis.from_counts(domain, counts, budget=BUDGET)
    hist = EquiWidthHistogram.from_counts(domain, counts, BUDGET)
    haar = HaarSynopsis.from_counts(domain, counts, BUDGET)

    errors = {"cosine": [], "histogram": [], "wavelet": []}
    for _ in range(NUM_QUERIES):
        lo = int(rng.integers(0, n - 1))
        hi = int(rng.integers(lo, n))
        hi = min(hi, n - 1)
        actual = float(counts[lo : hi + 1].sum())
        if actual <= 0:
            continue
        errors["cosine"].append(abs(estimate_range_count(cosine, lo, hi) - actual) / actual)
        errors["histogram"].append(abs(_histogram_range(hist, lo, hi) - actual) / actual)
        errors["wavelet"].append(abs(_wavelet_range(haar, lo, hi) - actual) / actual)
    return {m: float(np.mean(v)) for m, v in errors.items()}


def test_range_selectivity(benchmark, capsys):
    def sweep():
        rng = np.random.default_rng(0)
        smooth = cps_like(1, rng).counts.sum(axis=1).astype(float)
        rough = zipf_counts(512, 1.0, 100_000)[rng.permutation(512)].astype(float)
        return {
            "smooth (CPS Age)": _mean_error(smooth, rng),
            "rough (permuted zipf)": _mean_error(rough.astype(float), rng),
        }

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print(f"\nrandom range queries, {BUDGET} counters per synopsis, "
              f"mean relative error over {NUM_QUERIES} queries:")
        for dataset, row in table.items():
            rendered = "  ".join(f"{m}: {e * 100:6.2f}%" for m, e in row.items())
            print(f"  {dataset:<22} {rendered}")
    smooth = table["smooth (CPS Age)"]
    # On smooth data every method is in a usable regime and the cosine
    # synopsis is competitive with the dedicated range structures.
    assert smooth["cosine"] < 0.2
    assert smooth["cosine"] < 2.5 * min(smooth["histogram"], smooth["wavelet"]) + 0.02
