"""Single-join (1), Real data III: TCP source hosts (Figure 17).

Regenerates the paper's fig17 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins; the paper reports 10.79%% vs 57.6%%/60.1%% at 100 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig17(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig17",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig17; see the printed table"
    )
