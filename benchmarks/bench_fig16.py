"""Two-join, Real data II: SIPP WHFNWGT+THEARN (Figure 16).

Regenerates the paper's fig16 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins throughout; the paper reports 6.6%% vs 10.5%%/12.3%% at 1000 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig16(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig16",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig16; see the printed table"
    )
