"""Grid-choice ablation: midpoint (DCT-II) vs endpoint (section 3.1) grid.

The paper's section 3.1 normalizes values by ``(x - min)/(max - min)``
(our ``endpoint`` grid), but its exactness claims rest on the midpoint
grid ``(2j+1)/(2n)``, where the cosine basis is exactly orthogonal (see
DESIGN.md).  This bench quantifies the difference on the Figure 3
workload: the midpoint grid's Parseval-exactness should make it at least
as accurate at every budget, with the endpoint grid carrying a bias floor.
"""

from repro.experiments.figures import FIGURES
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.methods import CosineMethod
from repro.experiments.report import format_result

BUDGETS = (25, 50, 100, 200, 400)


def test_midpoint_vs_endpoint_grid(benchmark, capsys):
    base = FIGURES["fig03"]
    config = ExperimentConfig(
        name="grid-ablation",
        title="Single-join independent zipf data: midpoint vs endpoint grid",
        datagen=base.datagen,
        budgets=BUDGETS,
        trials=4,
        methods_factory=lambda: [
            CosineMethod(name="cosine_midpoint", grid="midpoint"),
            CosineMethod(name="cosine_endpoint", grid="endpoint"),
        ],
        expectation=(
            "the midpoint grid (exact Parseval) should be at least as "
            "accurate as the literal section 3.1 endpoint normalization"
        ),
    )
    result = benchmark.pedantic(
        run_experiment, args=(config,), kwargs={"seed": 0}, iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(format_result(result, reference="cosine_midpoint"))
    mid = [result.mean_error("cosine_midpoint", b) for b in BUDGETS]
    end = [result.mean_error("cosine_endpoint", b) for b in BUDGETS]
    wins = sum(m <= e * 1.05 + 1e-4 for m, e in zip(mid, end))
    assert wins >= len(BUDGETS) - 1, (mid, end)
