"""Section 3.2 ablation: triangular vs full-grid truncation at equal space.

The paper adopts Lee et al.'s triangular retention ``k1+...+kd <= m-1``
because the low-|k| corner of the spectrum carries most of the energy.
The choice only matters where a multi-dimensional tensor is truncated
aggressively, so this bench uses the workload that isolates it: two 2-d
relations joined on *both* attributes (``sum_ab c1(a,b) c2(a,b)``, the
cyclic case of section 4.2), with smooth clustered joints.  At equal
coefficient budgets, triangular truncation should be at least as accurate
at (nearly) every budget.
"""

import numpy as np

from repro.core.join import estimate_multijoin_size
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.streams.exact import relative_error

DOMAIN = 128
BUDGETS = (50, 100, 200, 400, 800)
TRIALS = 4


def _smooth_pair(rng):
    """Two positively correlated smooth 2-d count tensors."""
    x = np.arange(DOMAIN)
    base = np.zeros((DOMAIN, DOMAIN))
    for _ in range(6):
        cx, cy = rng.uniform(0, DOMAIN, size=2)
        sx, sy = rng.uniform(6, 20, size=2)
        bump = np.exp(
            -0.5 * (((x[:, None] - cx) / sx) ** 2 + ((x[None, :] - cy) / sy) ** 2)
        )
        base += rng.uniform(0.5, 2.0) * bump
    base /= base.sum()

    def sample():
        noisy = base * np.exp(rng.normal(0, 0.05, size=base.shape))
        noisy /= noisy.sum()
        return rng.multinomial(100_000, noisy.ravel()).reshape(base.shape).astype(float)

    return sample(), sample()


def _error(c1, c2, budget, truncation):
    doms = [Domain.of_size(DOMAIN)] * 2
    s1 = CosineSynopsis.from_counts(doms, c1, budget=budget, truncation=truncation)
    s2 = CosineSynopsis.from_counts(doms, c2, budget=budget, truncation=truncation)
    est = estimate_multijoin_size([s1, s2], [((0, 0), (1, 0)), ((0, 1), (1, 1))])
    return relative_error(float((c1 * c2).sum()), est)


def test_triangular_vs_full_truncation(benchmark, capsys):
    def sweep():
        rng = np.random.default_rng(0)
        tri = {b: [] for b in BUDGETS}
        full = {b: [] for b in BUDGETS}
        for _ in range(TRIALS):
            c1, c2 = _smooth_pair(rng)
            for b in BUDGETS:
                tri[b].append(_error(c1, c2, b, "triangular"))
                full[b].append(_error(c1, c2, b, "full"))
        return (
            [float(np.mean(tri[b])) for b in BUDGETS],
            [float(np.mean(full[b])) for b in BUDGETS],
        )

    tri_means, full_means = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print("\nboth-attribute 2-d join, mean relative error (%):")
        print(f"{'space':>6}  {'triangular':>10}  {'full grid':>10}")
        for b, t, f in zip(BUDGETS, tri_means, full_means):
            print(f"{b:>6}  {t * 100:>9.2f}%  {f * 100:>9.2f}%")
    wins = sum(t <= f * 1.05 + 1e-4 for t, f in zip(tri_means, full_means))
    assert wins >= len(BUDGETS) - 1, (tri_means, full_means)
