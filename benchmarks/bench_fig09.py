"""Two-join, clustered data, 10 clusters (Figure 9).

Regenerates the paper's fig09 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Cosine wins; the paper reports 5.4x/5.6x larger sketch errors at 1000 coefficients.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig09(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig09",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig09; see the printed table"
    )
