"""Two-join (2), Real data III: UDP src,dst (Figure 20).

Regenerates the paper's fig20 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Same story as Figure 19 on the UDP trace.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig20(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig20",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig20; see the printed table"
    )
