"""Single-join, clustered data, 50 clusters (Figure 8).

Regenerates the paper's fig08 series: average relative error per storage
space for the cosine method vs the skimmed and basic sketches.
Paper shape: Same story as Figure 7 with 50 clusters.
"""

from _figure_bench import cosine_wins, run_figure


def test_fig08(benchmark, capsys):
    run_figure(
        benchmark,
        capsys,
        "fig08",
        check=lambda result: _check(result),
    )


def _check(result):
    assert cosine_wins(result), (
        "expected the cosine method to beat both sketches at the large-"
        "budget end of fig08; see the printed table"
    )
