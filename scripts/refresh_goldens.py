"""Regenerate the golden report files under tests/analysis/goldens/.

Run from the repository root after changing a reporter:

    PYTHONPATH=src:. python scripts/refresh_goldens.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.cli import main

from tests.analysis.test_runner_and_cli import GOLDEN_APP, GOLDEN_PYPROJECT, GOLDENS


def refresh() -> None:
    GOLDENS.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "pyproject.toml").write_text(GOLDEN_PYPROJECT, encoding="utf-8")
        app = root / "src/pkg/app.py"
        app.parent.mkdir(parents=True)
        app.write_text(GOLDEN_APP, encoding="utf-8")
        for fmt, name in (("json", "report.json"), ("sarif", "report.sarif")):
            out = GOLDENS / name
            rc = main([str(root / "src"), "--format", fmt, "--output", str(out)])
            assert rc == 1, f"expected findings while rendering {name}, got rc={rc}"
            print(f"wrote {out}")


if __name__ == "__main__":
    refresh()
