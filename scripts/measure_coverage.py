"""Approximate line coverage of ``src/repro`` without pytest-cov.

Usage:
    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Runs the test suite under a ``sys.settrace`` hook that records executed
lines for files under ``src/repro`` only (frames elsewhere return no
local trace function, so the overhead concentrates where the answer is).
Executable lines are estimated from the AST: one line per statement
node, minus module/class/function docstrings.  The result tracks
pytest-cov's line coverage to within a few points — close enough to pin
a CI ``--cov-fail-under`` gate with a small safety buffer, from an
environment where coverage.py is not installed.
"""

from __future__ import annotations

import ast
import os
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO / "src" / "repro") + os.sep

_hits: dict[str, set[int]] = {}


def _local_trace_for(lines: set[int]):
    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    return local


def _global_trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None
    lines = _hits.get(filename)
    if lines is None:
        lines = _hits.setdefault(filename, set())
    lines.add(frame.f_lineno)
    return _local_trace_for(lines)


def executable_lines(path: Path) -> set[int]:
    """Statement lines per the AST, docstring expressions excluded."""
    tree = ast.parse(path.read_text())
    lines: set[int] = set()
    docstring_lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                for ln in range(body[0].lineno, (body[0].end_lineno or body[0].lineno) + 1):
                    docstring_lines.add(ln)
    return lines - docstring_lines


def main() -> int:
    import pytest

    sys.settrace(_global_trace)
    threading.settrace(_global_trace)
    argv = sys.argv[1:] or ["-q", "-p", "no:cacheprovider", str(REPO / "tests")]
    code = pytest.main(argv)
    sys.settrace(None)
    threading.settrace(None)
    if code != 0:
        print(f"pytest exited {code}; coverage below reflects a failed run")

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        execable = executable_lines(path)
        hit = _hits.get(str(path), set()) & execable
        total_exec += len(execable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(execable) if execable else 100.0
        rows.append((str(path.relative_to(REPO)), len(execable), len(hit), pct))
    for name, n_exec, n_hit, pct in rows:
        print(f"{name:<55} {n_hit:>5}/{n_exec:<5} {pct:6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL approximate line coverage: {total_hit}/{total_exec} = {overall:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
