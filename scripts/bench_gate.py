"""CI bench gate: append a benchmark result to the trajectory and enforce the floor.

The ``bench-smoke`` CI job runs ``benchmarks/bench_fastpath.py`` and hands
its JSON result to this script.  The script

1. loads the persisted trajectory file (``BENCH_trajectory.json``,
   restored across runs via ``actions/cache`` and re-uploaded as an
   artifact) or bootstraps an empty one,
2. appends one entry — commit, CI run id, kernel speedup, ingest
   throughput — so the benchmark history of the branch is a first-class
   artifact rather than a pass/fail bit, and
3. fails the build when the fastpath kernel speedup drops below the
   floor (>= 5x vs the 1.5.0 per-entry reference, measured in the same
   run so a slow runner cannot fake a regression).

The optional ``--telemetry-result`` / ``--otel-result`` /
``--fleet-result`` / ``--bounds-result`` inputs take the JSON written by
``bench_telemetry_overhead.py``, ``bench_otel_overhead.py``,
``bench_fleet_overhead.py``, and ``bench_bounds_overhead.py`` and fold
their best-round overheads into the same trajectory entry, so the
observability, serve-path, and bound-maintenance costs ride the same
history as the kernel speedup.  Those benches enforce their own
ceilings when they run; the gate records, it does not re-judge.

Usage (as in ``.github/workflows/ci.yml``)::

    python scripts/bench_gate.py \
        --result bench-artifacts/fastpath.json \
        --telemetry-result bench-artifacts/telemetry_overhead.json \
        --otel-result bench-artifacts/otel_overhead.json \
        --fleet-result bench-artifacts/fleet_overhead.json \
        --bounds-result bench-artifacts/bounds_overhead.json \
        --trajectory BENCH_trajectory.json
"""

import argparse
import json
import os
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

DEFAULT_FLOOR = 5.0
TAIL = 10  # trajectory entries echoed into the CI log


def _commit() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: Path) -> dict:
    """Load the persisted trajectory, bootstrapping an empty one if absent."""
    if path.is_file():
        with path.open() as handle:
            trajectory = json.load(handle)
        if trajectory.get("version") != 1 or not isinstance(
            trajectory.get("entries"), list
        ):
            raise SystemExit(f"unrecognized trajectory file: {path}")
        return trajectory
    return {"version": 1, "entries": []}


def make_entry(
    result: dict,
    telemetry_result: dict | None = None,
    otel_result: dict | None = None,
    fleet_result: dict | None = None,
    bounds_result: dict | None = None,
) -> dict:
    kernel, ingest = result["kernel"], result["ingest"]
    entry = {
        "commit": _commit(),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "backend": result["backend"],
        "kernel_speedup": round(kernel["speedup"], 3),
        "kernel_order": kernel["order"],
        "kernel_cols": kernel["cols"],
        "fastpath_tps": round(ingest["fastpath_tps_best"]),
        "reference_tps": round(ingest["reference_tps_best"]),
        "ingest_ratio": round(ingest["ingest_ratio"], 3),
    }
    if telemetry_result is not None:
        entry["telemetry_overhead"] = round(telemetry_result["overhead_best"], 4)
    if otel_result is not None:
        entry["otel_overhead"] = round(otel_result["overhead_best"], 4)
        entry["otel_export_tps"] = round(otel_result["export_tps_best"])
    if fleet_result is not None:
        entry["fleet_overhead"] = round(fleet_result["overhead_best"], 4)
        entry["fleet_tps"] = round(fleet_result["socket_tps_best"])
    if bounds_result is not None:
        entry["bounds_overhead"] = round(bounds_result["overhead_best"], 4)
        entry["bounds_tps"] = round(bounds_result["bounded_tps_best"])
    return entry


def _overhead_cell(entry: dict, key: str) -> str:
    value = entry.get(key)
    return f"{value * 100:+6.1f}%" if value is not None else f"{'-':>7}"


def _print_tail(entries: list) -> None:
    print(f"benchmark trajectory ({len(entries)} entries, last {TAIL}):")
    print(
        f"  {'commit':<13} {'speedup':>8} {'ingest tps':>12} {'ratio':>6}"
        f" {'telem':>7} {'otlp':>7} {'fleet':>7} {'bound':>7}  backend"
    )
    for entry in entries[-TAIL:]:
        print(
            f"  {entry['commit']:<13} {entry['kernel_speedup']:>7.2f}x"
            f" {entry['fastpath_tps']:>12,} {entry['ingest_ratio']:>5.2f}x"
            f" {_overhead_cell(entry, 'telemetry_overhead')}"
            f" {_overhead_cell(entry, 'otel_overhead')}"
            f" {_overhead_cell(entry, 'fleet_overhead')}"
            f" {_overhead_cell(entry, 'bounds_overhead')}"
            f"  {entry['backend']}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--result", required=True, help="bench_fastpath.py JSON output")
    parser.add_argument(
        "--telemetry-result", help="bench_telemetry_overhead.py JSON output (optional)"
    )
    parser.add_argument(
        "--otel-result", help="bench_otel_overhead.py JSON output (optional)"
    )
    parser.add_argument(
        "--fleet-result", help="bench_fleet_overhead.py JSON output (optional)"
    )
    parser.add_argument(
        "--bounds-result", help="bench_bounds_overhead.py JSON output (optional)"
    )
    parser.add_argument(
        "--trajectory", required=True, help="persisted BENCH_trajectory.json path"
    )
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    args = parser.parse_args(argv)

    with open(args.result) as handle:
        result = json.load(handle)
    telemetry_result = otel_result = fleet_result = bounds_result = None
    if args.telemetry_result:
        with open(args.telemetry_result) as handle:
            telemetry_result = json.load(handle)
    if args.otel_result:
        with open(args.otel_result) as handle:
            otel_result = json.load(handle)
    if args.fleet_result:
        with open(args.fleet_result) as handle:
            fleet_result = json.load(handle)
    if args.bounds_result:
        with open(args.bounds_result) as handle:
            bounds_result = json.load(handle)

    trajectory_path = Path(args.trajectory)
    trajectory = load_trajectory(trajectory_path)
    entry = make_entry(
        result, telemetry_result, otel_result, fleet_result, bounds_result
    )
    trajectory["entries"].append(entry)
    with trajectory_path.open("w") as handle:
        json.dump(trajectory, handle, indent=1)
        handle.write("\n")

    _print_tail(trajectory["entries"])

    previous = [e["kernel_speedup"] for e in trajectory["entries"][:-1]]
    if previous and entry["kernel_speedup"] < 0.8 * max(previous):
        print(
            f"WARNING: kernel speedup {entry['kernel_speedup']:.2f}x is >20% below"
            f" the trajectory best ({max(previous):.2f}x) — runner noise or a"
            " creeping regression; the floor below is the hard gate"
        )
    if entry["kernel_speedup"] < args.floor:
        print(
            f"FAIL: fastpath kernel speedup {entry['kernel_speedup']:.2f}x is below"
            f" the {args.floor:.0f}x floor vs the 1.5.0 reference"
        )
        return 1
    print(
        f"bench gate OK: {entry['kernel_speedup']:.2f}x >= {args.floor:.0f}x floor,"
        f" ingest at {entry['fastpath_tps']:,} tuples/s"
        f" ({entry['ingest_ratio']:.2f}x the reference backend)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
