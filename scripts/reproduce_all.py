"""Run every experiment of the paper and regenerate EXPERIMENTS.md.

Usage:
    python scripts/reproduce_all.py [--trials N] [--seed S] [--out PATH]

Runs the 20 figure sweeps (section 5), the section 5.4 speed table, and
the section 4.3 best/worst-case ablation, then writes EXPERIMENTS.md
recording the paper's reported numbers next to ours for every experiment.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.core.error import worst_case_coefficients
from repro.core.join import estimate_join_size as cosine_join
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.experiments.figures import FIGURES
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.paper_claims import claims_for, nearest_budget
from repro.experiments.speed import measure_speed
from repro.sketches.basic import AGMSSketch, split_budget
from repro.sketches.basic import estimate_join_size as sketch_join
from repro.sketches.hashing import SignFamily
from repro.streams.exact import relative_error

#: What the paper reports, quoted from the section 5 text, per figure.
PAPER_NOTES = {
    "fig01": "sketches win (strong positive correlation = generalized self-join)",
    "fig02": "cosine wins; skimmed/basic errors 2.7x / 8.3x larger at 500 coefficients",
    "fig03": "cosine wins; 24.4x / 49.8x larger sketch errors at 500 (9.98% vs 92.40% / 333.09%)",
    "fig04": "cosine wins; 3.0x / 8.9x larger sketch errors at 500 (0.5% of its domain; "
    "at our scale the skimmed sketch crosses over at the largest budgets, ~10% of the "
    "domain, beyond the paper's swept region)",
    "fig05": "cosine improves sharply vs Fig 1 (96.58% -> 56.24% at 500); sketches unchanged",
    "fig06": "all degrade vs Fig 3 (24.21% vs 158.76% / 837.85% at 500); 7.5x / 39.5x ratios",
    "fig07": "cosine 0.60% vs 7.98% / 8.24% at 500 (13.2x / 13.6x)",
    "fig08": "similar to Fig 7 with 50 clusters",
    "fig09": "cosine 26.27% vs 142.46% / 147.56% at 1000 (5.4x / 5.6x)",
    "fig10": "cosine 12.65% vs 139.89% / 180.37% at 1000 (11.1x / 14.3x)",
    "fig11": "cosine 86.26% at 1000 -> 9.03% at 20000; sketches 2.2x / 3.0x larger even at 20000",
    "fig12": "similar to Fig 11 with 50 clusters",
    "fig13": "all good: 4.71% / 8.08% / 16.05% at 20 coefficients",
    "fig14": "cosine <15% at 1500 while sketches at 38.1% / 44.81%",
    "fig15": "cosine 0.12% vs 16.23% / 22.12% at 100 (136x / 185x)",
    "fig16": "cosine 6.6% vs 10.5% / 12.3% at 1000",
    "fig17": "cosine 10.79% vs 57.6% / 60.1% at 100; 6.10% vs 15.3% / 22.6% at 900",
    "fig18": "similar to Fig 17 on destination hosts",
    "fig19": "cosine 0.57% vs 66.04% / 93.72% at 1500",
    "fig20": "similar to Fig 19 on the UDP trace",
}


def render_figure(result: ExperimentResult) -> list[str]:
    config = result.config
    lines = [
        f"### {config.name}: {config.title}",
        "",
        f"- paper: {PAPER_NOTES[config.name]}",
        f"- trials: {len(result.actual_sizes)}, mean actual join size "
        f"{np.mean(result.actual_sizes):.3e}",
        f"- bench target: `benchmarks/bench_{config.name}.py`",
        "",
        "| space | cosine err% | skimmed err% | basic err% | skimmed/cosine | basic/cosine |",
        "|---:|---:|---:|---:|---:|---:|",
    ]
    for budget in result.series["cosine"].budgets:
        cos = result.mean_error("cosine", budget)
        skim = result.mean_error("skimmed_sketch", budget)
        basic = result.mean_error("basic_sketch", budget)
        lines.append(
            f"| {budget} | {cos * 100:.2f} | {skim * 100:.2f} | {basic * 100:.2f} "
            f"| {result.error_ratio('skimmed_sketch', 'cosine', budget):.1f}x "
            f"| {result.error_ratio('basic_sketch', 'cosine', budget):.1f}x |"
        )
    # Judge on the mean over the three largest budgets (the stable end of
    # the curve), like the benchmark assertions do.
    tail = result.series["cosine"].budgets[-3:]
    tail_means = {
        m: float(np.mean([result.mean_error(m, b) for b in tail]))
        for m in result.series
    }
    winner = min(tail_means, key=tail_means.get)  # type: ignore[arg-type]
    lines += ["", f"**Winner over the three largest budgets: `{winner}`.**", ""]

    claims = claims_for(config.name)
    if claims:
        domain = _figure_domain_size(result)
        lines += [
            "Quoted paper values, matched to our budget at the same fraction "
            "of the domain.  (The fraction is the scale-free axis for the "
            "cosine method; sketch variance depends on absolute counter "
            "counts, so sketch columns at tiny matched budgets read worse "
            "than the paper's 500+-counter points — compare orderings, not "
            "magnitudes.)",
            "",
            "| method | paper space (of n) | paper err% | our space | our err% |",
            "|---|---:|---:|---:|---:|",
        ]
        budgets = result.series["cosine"].budgets
        for claim in claims:
            ours = nearest_budget(claim, budgets, domain)
            measured = result.mean_error(claim.method, ours)
            lines.append(
                f"| {claim.method} | {claim.space} ({claim.space_fraction:.2%}) "
                f"| {claim.relative_error * 100:.2f} | {ours} "
                f"| {measured * 100:.2f} |"
            )
        lines.append("")
    return lines


def _figure_domain_size(result: ExperimentResult) -> int:
    """Join-attribute domain size of a figure's generated data."""
    relations, domains = result.config.datagen(np.random.default_rng(0))
    return domains[0][-1].size


def best_worst_case_section() -> list[str]:
    n = 2_000
    d = Domain.of_size(n)

    uniform = np.full(n, 50.0)
    syn = CosineSynopsis.from_counts(d, uniform, order=1)
    dct_best = relative_error(float(uniform @ uniform), cosine_join(syn, syn))
    s1, s2 = split_budget(100)
    sk_errs = []
    for seed in range(10):
        fam = SignFamily(n, s1 * s2, seed=seed)
        a = AGMSSketch.from_counts(fam, uniform, s1, s2)
        sk_errs.append(
            relative_error(float(uniform @ uniform), sketch_join(a, a))
        )

    single = np.zeros(n)
    single[777] = 10_000.0
    fam = SignFamily(n, 10, seed=0)
    sk = AGMSSketch.from_counts(fam, single, 10, 1)
    sk_worst = relative_error(float(single @ single), sketch_join(sk, sk))
    m = worst_case_coefficients(0.4, n)
    syn_small = CosineSynopsis.from_counts(d, single, budget=50)
    dct_small = relative_error(
        float(single @ single), cosine_join(syn_small, syn_small)
    )
    syn_412 = CosineSynopsis.from_counts(d, single, order=m)
    dct_412 = relative_error(float(single @ single), cosine_join(syn_412, syn_412))

    return [
        "## Section 4.3 best/worst cases (analysis, measured)",
        "",
        "| claim (paper) | measured |",
        "|---|---|",
        "| §4.3.1 uniform data: DCT exact with 1 coefficient | "
        f"relative error {dct_best:.1e} with 1 coefficient |",
        "| §4.3.1 uniform data: sketch needs Ω(n) space | "
        f"mean error {np.mean(sk_errs) * 100:.2f}% with 100 atomic sketches on n=2000 |",
        "| §4.3.2 single-value streams: sketch exact with O(1) space | "
        f"relative error {sk_worst:.1e} with 10 atomic sketches |",
        "| §4.3.2 single-value streams: DCT needs n−⌊en/2⌋ coefficients (Eq. 4.12) | "
        f"error {dct_small * 100:.1f}% with 50 coefficients; Eq. 4.12 budget m={m} "
        f"gives {dct_412 * 100:.1f}% ≤ the 40% target |",
        "",
        "Bench target: `benchmarks/bench_best_worst_case.py`.",
        "",
    ]


def speed_section() -> list[str]:
    report = measure_speed(update_repeats=200, estimate_repeats=20)
    return [
        "## Section 5.4 computation speed",
        "",
        "Paper (1.4 GHz Pentium IV, scalar C++) vs this machine (vectorized",
        "numpy), both at 10,000 coefficients / atomic sketches:",
        "",
        "| operation | paper | measured |",
        "|---|---:|---:|",
        f"| cosine update, per tuple | 3.2 ms | {report.cosine_update_per_tuple * 1e3:.3f} ms |",
        "| cosine update, per coefficient | 0.32 µs | "
        f"{report.cosine_update_per_coefficient * 1e6:.4f} µs |",
        f"| sketch update, per tuple | 1.0 ms | {report.sketch_update_per_tuple * 1e3:.3f} ms |",
        f"| cosine estimate | 0.4 ms | {report.cosine_estimate * 1e3:.3f} ms |",
        f"| sketch estimate | 1.6 ms | {report.sketch_estimate * 1e3:.3f} ms |",
        "",
        "The paper's estimation-side relation (cosine estimation faster than",
        "the sketch's median-of-means) reproduces: "
        f"{report.cosine_estimate * 1e3:.3f} ms vs {report.sketch_estimate * 1e3:.3f} ms.",
        "On the update side the paper's scalar C++ loops favour the sketch's",
        "simpler per-counter work (1.0 vs 3.2 ms); under vectorized numpy the",
        "two update paths cost about the same, so that gap does not reproduce",
        "(documented in DESIGN.md and `benchmarks/bench_speed.py`).",
        "",
        "Bench target: `benchmarks/bench_speed.py`.",
        "",
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=Path("EXPERIMENTS.md"))
    parser.add_argument(
        "--figures",
        help="comma-separated subset (e.g. fig03,fig15); default: all twenty",
    )
    args = parser.parse_args()
    selected = sorted(FIGURES) if not args.figures else args.figures.split(",")
    for figure_id in selected:
        if figure_id not in FIGURES:
            parser.error(f"unknown figure {figure_id!r}")

    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerate with `python scripts/reproduce_all.py` (or run the",
        "per-figure benches: `pytest benchmarks/ --benchmark-only`).",
        "",
        "Scales differ from the paper's testbed (see DESIGN.md): the paper",
        "uses 10^7-tuple relations over 10^5-value domains with 200 query",
        "repetitions; this run uses the reproduction-scale defaults in",
        "`repro/experiments/figures.py`.  The comparisons below are therefore",
        "about *shape* — who wins, by roughly what factor, where curves",
        "saturate — not absolute error values.",
        "",
        f"Seed {args.seed}.",
        "",
        "## Section 5 figures",
        "",
    ]
    t0 = time.time()
    for figure_id in selected:
        config = FIGURES[figure_id]
        print(f"running {figure_id} ...", flush=True)
        result = run_experiment(config, seed=args.seed, trials=args.trials)
        lines.extend(render_figure(result))
    lines.extend(best_worst_case_section())
    lines.extend(speed_section())
    lines.append(f"_Total reproduction wall-clock: {time.time() - t0:.0f} s._")
    lines.append("")

    args.out.write_text("\n".join(lines))
    print(f"wrote {args.out} in {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main()
