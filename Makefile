# Convenience targets for the reproduction workflow.
# PYTHONPATH=src lets test/bench/lint run without an editable install.

PY_ENV = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install dev lint analyze typecheck test bench figures experiments api-docs all clean

install:
	pip install -e . --no-build-isolation

dev:
	pip install -e '.[dev]' --no-build-isolation

lint:
	ruff check .

analyze:
	$(PY_ENV) python -m repro.analysis src/repro

typecheck:
	@python -c "import mypy" 2>/dev/null \
		&& $(PY_ENV) python -m mypy \
		|| echo "mypy not installed (pip install -e '.[dev]'); skipping typecheck"

test:
	$(PY_ENV) python -m pytest tests/

bench:
	$(PY_ENV) python -m pytest benchmarks/ --benchmark-only

figures:
	repro-experiments run all

experiments:
	python scripts/reproduce_all.py

api-docs:
	python scripts/generate_api_docs.py

all: test bench experiments api-docs

clean:
	rm -rf build/ dist/ src/repro.egg-info/ .pytest_cache/
	find . -name __pycache__ -type d -exec rm -rf {} +
