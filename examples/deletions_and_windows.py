"""Deletions and sliding windows: the synopsis' dynamic side.

The paper's Eq. 3.4/3.5 update scheme handles insertions AND deletions in
O(coefficients) per tuple, which is what makes sliding-window continuous
queries possible: expire old tuples by deleting them.  This example keeps
a 5,000-tuple sliding window over a drifting stream, continuously joins it
against a static reference stream, and also answers range queries from the
same synopsis.

Run:  python examples/deletions_and_windows.py
"""

from collections import deque

import numpy as np

from repro import (
    CosineSynopsis,
    Domain,
    estimate_join_size,
    estimate_range_count,
    relative_error,
)


def drifting_value(rng, progress, n):
    """A stream whose hot spot drifts across the domain over time."""
    center = (0.2 + 0.6 * progress) * n
    return int(np.clip(rng.normal(center, n * 0.05), 0, n - 1))


def main() -> None:
    rng = np.random.default_rng(1)
    n = 2_000
    domain = Domain.of_size(n)
    window_size = 5_000
    total = 25_000

    # Static reference stream (e.g. a catalogue of watched items).
    reference_counts = np.bincount(
        rng.integers(0, n, size=20_000), minlength=n
    ).astype(float)
    reference = CosineSynopsis.from_counts(domain, reference_counts, budget=128)

    window_synopsis = CosineSynopsis(domain, budget=128)
    window: deque[int] = deque()
    window_counts = np.zeros(n)  # exact shadow, for ground truth only

    print(
        f"{'progress':>9}  {'window est.':>12}  {'exact':>12}  {'error':>7}  "
        f"{'hot-range count':>15}"
    )
    for i in range(total):
        value = drifting_value(rng, i / total, n)
        window.append(value)
        window_synopsis.insert((value,))  # Eq. 3.4
        window_counts[value] += 1
        if len(window) > window_size:
            expired = window.popleft()
            window_synopsis.delete((expired,))  # Eq. 3.5
            window_counts[expired] -= 1

        if (i + 1) % 5_000 == 0:
            estimate = estimate_join_size(window_synopsis, reference)
            actual = float(window_counts @ reference_counts)
            # Range estimation from the same synopsis: how many window
            # tuples sit in the current hot decile of the domain?
            hot_lo = max(int(np.argmax(window_counts) - n * 0.05), 0)
            hot_hi = min(hot_lo + int(n * 0.1), n - 1)
            in_range = estimate_range_count(window_synopsis, hot_lo, hot_hi)
            print(
                f"{(i + 1) / total:>9.0%}  {estimate:>12,.0f}  {actual:>12,.0f}  "
                f"{relative_error(actual, estimate):>7.2%}  {in_range:>15,.0f}"
            )

    print(
        f"\nwindow synopsis: {window_synopsis.num_coefficients} coefficients, "
        f"{window_synopsis.count:,} live tuples (window size {window_size:,})"
    )


if __name__ == "__main__":
    main()
