"""From files to continuous answers: the adoption path in one script.

Loads two "survey waves" from CSV microdata, registers a SQL-shaped
continuous join query plus a range query, streams a day of new records in
(with some corrections, i.e. deletions), and shows the running estimates —
plus the budget advisor and the sketch's dispersion signal, the two
self-diagnostics the library offers.

Run:  python examples/csv_to_continuous_queries.py
"""

import io

import numpy as np

from repro import ContinuousQueryEngine, Domain, JoinQuery, relative_error
from repro.core.join import choose_budget
from repro.core.synopsis import CosineSynopsis
from repro.data.loaders import relation_from_csv
from repro.sketches.basic import AGMSSketch, estimate_join_size_with_spread
from repro.sketches.hashing import SignFamily


def make_csv(rng: np.random.Generator, rows: int) -> io.StringIO:
    """Synthesize a survey-wave CSV (age, income bracket)."""
    ages = np.clip(rng.normal(45, 16, rows), 1, 99).astype(int)
    incomes = np.clip((ages * 0.4 + rng.normal(10, 6, rows)), 1, 60).astype(int)
    lines = ["age,income"] + [f"{a},{i}" for a, i in zip(ages, incomes)]
    return io.StringIO("\n".join(lines) + "\n")


def main() -> None:
    rng = np.random.default_rng(21)
    domains = [Domain.integer_range(1, 99), Domain.integer_range(1, 60)]

    # 1. Load two waves from "files".
    wave1 = relation_from_csv("wave1", make_csv(rng, 30_000), ["age", "income"], domains)
    wave2 = relation_from_csv("wave2", make_csv(rng, 25_000), ["age", "income"], domains)
    print(f"loaded wave1 ({wave1.count:,} rows), wave2 ({wave2.count:,} rows)")

    # 2. Register continuous queries, SQL-shaped.
    engine = ContinuousQueryEngine(seed=3)
    engine.add_relation(wave1)
    engine.add_relation(wave2)
    query = JoinQuery.from_sql(
        "SELECT COUNT(*) FROM wave1, wave2 WHERE wave1.age = wave2.age"
    )
    engine.register_query("same-age", query, method="cosine", budget=60)
    engine.register_range_query("working-age", "wave1", "age", low=18, high=65, budget=60)

    # 3. Stream a day of new wave1 records, with a few corrections.
    day = np.clip(rng.normal(45, 16, 2_000), 1, 99).astype(int)
    incomes = np.clip((day * 0.4 + rng.normal(10, 6, day.size)), 1, 60).astype(int)
    for age, income in zip(day, incomes):
        engine.insert("wave1", (int(age), int(income)))
    for age, income in list(zip(day, incomes))[:50]:  # corrections
        engine.delete("wave1", (int(age), int(income)))

    actual = engine.exact_answer("same-age")
    estimate = engine.answer("same-age")
    print(f"\nsame-age join:   est {estimate:>14,.0f}  act {actual:>14,.0f}  "
          f"err {relative_error(actual, estimate):.2%}")
    ra, re = engine.exact_answer("working-age"), engine.answer("working-age")
    print(f"working-age pop: est {re:>14,.0f}  act {ra:>14,.0f}  "
          f"err {relative_error(ra, re):.2%}")

    # 4. The budget advisor: how many coefficients does this data need?
    age1 = wave1.counts.sum(axis=1).astype(float)
    age2 = wave2.counts.sum(axis=1).astype(float)
    full_a = CosineSynopsis.from_counts(domains[0], age1, order=99)
    full_b = CosineSynopsis.from_counts(domains[0], age2, order=99)
    recommended = choose_budget(full_a, full_b, tolerance=0.01)
    print(f"\nbudget advisor: {recommended} coefficients reach 1% self-consistency "
          f"on this data (we provisioned 60)")

    # 5. The sketch alternative, with its built-in dispersion signal.
    family = SignFamily(99, 60, seed=9)
    sk1 = AGMSSketch.from_counts(family, age1, 20, 3)
    sk2 = AGMSSketch.from_counts(family, age2, 20, 3)
    sk_est, spread = estimate_join_size_with_spread(sk1, sk2)
    print(f"sketch at equal space: est {sk_est:,.0f} "
          f"(group-mean spread {spread:,.0f} -> "
          f"{'trustworthy' if spread < 0.2 * abs(sk_est) else 'noisy'})")


if __name__ == "__main__":
    main()
