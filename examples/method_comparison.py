"""Method comparison across the paper's correlation regimes (Figures 1-4).

Runs a miniature version of the paper's Type I study: Zipfian data under
strong-positive / weak-positive / independent / negative join-attribute
correlation, every method at equal space, and prints who wins where —
reproducing the section 5.2.2.1 conclusion that "sketch methods are
suitable for strong positively correlated data, while our approach is more
suitable for weak positively correlated, random, to negatively correlated
data".

Run:  python examples/method_comparison.py
"""

import numpy as np

from repro.core.normalization import Domain
from repro.data.zipf import Correlation, TypeIConfig, make_type1_pair
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.report import format_result

DOMAIN = 2_000
RELATION = 100_000
BUDGETS = (25, 50, 100, 200)


def datagen_for(correlation: Correlation):
    config = TypeIConfig(
        domain_size=DOMAIN,
        relation_size=RELATION,
        z1=0.5,
        z2=1.0,
        correlation=correlation,
    )

    def gen(rng: np.random.Generator):
        c1, c2 = make_type1_pair(config, rng)
        return [c1, c2], [[Domain.of_size(DOMAIN)], [Domain.of_size(DOMAIN)]]

    return gen


def main() -> None:
    for correlation in Correlation:
        config = ExperimentConfig(
            name=correlation.value,
            title=f"single join, zipf 0.5/1.0, {correlation.value} correlation",
            datagen=datagen_for(correlation),
            budgets=BUDGETS,
            trials=3,
        )
        result = run_experiment(config, seed=0)
        print(format_result(result))
        winner = result.winner(BUDGETS[-1])
        print(f"--> winner at {BUDGETS[-1]} counters: {winner}\n")


if __name__ == "__main__":
    main()
