"""Census analysis: the paper's Real data I scenario end-to-end.

Joins three months of CPS-like survey microdata on Age and Education —
the two-join chain query of the paper's Figure 14 — and compares every
implemented method (cosine, both sketches, sampling) at equal space,
plus the analytic Eq. 4.9 space guarantee for a target error.

Run:  python examples/census_join_analysis.py
"""

import numpy as np

from repro import ContinuousQueryEngine, JoinQuery, relative_error
from repro.core.error import coefficients_for_relative_error
from repro.data.reallike import cps_like


def main() -> None:
    rng = np.random.default_rng(5)
    months = {name: cps_like(m, rng, scale=0.5) for name, m in
              [("january", 1), ("february", 2), ("march", 3)]}

    engine = ContinuousQueryEngine(seed=2)
    # January contributes Age, February the (Age, Education) joint,
    # March the Education marginal — the section 5.1 chain shape.
    jan, feb, mar = months["january"], months["february"], months["march"]
    engine.create_relation("january", ["Age"], [jan.domains[0]])
    engine.create_relation("february", ["Age", "Education"], list(feb.domains))
    engine.create_relation("march", ["Education"], [mar.domains[1]])
    engine.relations["january"].load_counts(jan.counts.sum(axis=1))
    engine.relations["february"].load_counts(feb.counts)
    engine.relations["march"].load_counts(mar.counts.sum(axis=0))

    query = JoinQuery.parse(
        ["january", "february", "march"],
        ["january.Age = february.Age", "february.Education = march.Education"],
    )
    print(query)

    budget = 500
    for method in ("cosine", "skimmed_sketch", "basic_sketch", "sample"):
        engine.register_query(f"q_{method}", query, method=method, budget=budget)

    actual = engine.exact_answer("q_cosine")
    print(f"\nexact join size: {actual:,.0f}")
    print(f"{'method':>16}  {'estimate':>16}  {'relative error':>14}")
    for method in ("cosine", "skimmed_sketch", "basic_sketch", "sample"):
        estimate = engine.answer(f"q_{method}")
        print(
            f"{method:>16}  {estimate:>16,.0f}  "
            f"{relative_error(actual, estimate):>13.2%}"
        )

    # The Eq. 4.9 worst-case budget for a 10% error on the Age join —
    # usually far more than the data actually needs (that is the point of
    # the experiments: real distributions behave far better).
    n_age = jan.domains[0].size
    stream = engine.relations["january"].count
    m = coefficients_for_relative_error(0.1, actual, stream, n_age)
    print(
        f"\nEq. 4.9 worst-case budget for 10% error on the {n_age}-value Age "
        f"domain: {m} coefficients (the sweep above used {budget})"
    )


if __name__ == "__main__":
    main()
