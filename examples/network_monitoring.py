"""Network monitoring: a continuous join query over live packet streams.

The paper motivates joins over "multiple network traffic flows" (section
1).  This example registers a continuous COUNT query over two hours of
traffic-like streams — "how many (packet-hour-1, packet-hour-2) pairs talk
between the same source and destination hosts?" — and reports its running
estimate as packets arrive, against three methods at equal space.

Run:  python examples/network_monitoring.py
"""

import numpy as np

from repro import ContinuousQueryEngine, JoinQuery, relative_error
from repro.data.reallike import traffic_pairs
from repro.data.streams import rows_from_counts


def main() -> None:
    rng = np.random.default_rng(3)
    scale = 0.05  # ~120 hosts, tens of thousands of packets

    hour1 = traffic_pairs(1, rng, scale=scale, structure_seed=1)
    hour2 = traffic_pairs(2, rng, scale=scale, structure_seed=1)
    n_hosts = hour1.domains[0].size
    print(f"traffic-like trace: {n_hosts} hosts, "
          f"{hour1.size:,} + {hour2.size:,} packets")

    engine = ContinuousQueryEngine(seed=11)
    engine.create_relation("hour1", ["src", "dst"], list(hour1.domains))
    engine.create_relation("hour2", ["src", "dst"], list(hour2.domains))

    # Continuous query: issued once, answered forever after (section 1).
    query = JoinQuery.parse(
        ["hour1", "hour2"],
        ["hour1.src = hour2.src", "hour1.dst = hour2.dst"],
    )
    budget = 300
    engine.register_query("same-flow", query, method="cosine", budget=budget)
    engine.register_query(
        "same-flow-sketch", query, method="basic_sketch", budget=budget
    )

    rows1 = rows_from_counts(hour1.counts, rng)
    rows2 = rows_from_counts(hour2.counts, rng)

    checkpoints = np.linspace(0.25, 1.0, 4)
    limit1_prev = limit2_prev = 0
    for fraction in checkpoints:
        limit1 = int(len(rows1) * fraction)
        limit2 = int(len(rows2) * fraction)
        for src, dst in rows1[limit1_prev:limit1]:
            engine.insert("hour1", (int(src), int(dst)))
        for src, dst in rows2[limit2_prev:limit2]:
            engine.insert("hour2", (int(src), int(dst)))
        limit1_prev, limit2_prev = limit1, limit2

        actual = engine.exact_answer("same-flow")
        cosine = engine.answer("same-flow")
        sketch = engine.answer("same-flow-sketch")
        print(
            f"after {fraction:4.0%} of the streams: actual {actual:>12,.0f}  "
            f"cosine {cosine:>12,.0f} ({relative_error(actual, cosine):6.2%})  "
            f"sketch {sketch:>12,.0f} ({relative_error(actual, sketch):6.2%})"
        )

    report = engine.space_report()
    print(f"space used per relation (cosine): {report['same-flow']}")


if __name__ == "__main__":
    main()
