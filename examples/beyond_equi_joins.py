"""Beyond equi-joins: the section 6 extensions from one pair of synopses.

The paper closes by noting the cosine method "can also be applied to
non-equal-joins, range, and point queries".  This example maintains a
single pair of cosine synopses over two correlated streams and answers,
from the SAME synopses:

* the plain equi-join size,
* an inequality join (A < B),
* a band join (|A - B| <= w),
* a join with range selections on both inputs,
* point and range counts,
* and a time-decayed join where old tuples fade out.

Run:  python examples/beyond_equi_joins.py
"""

import numpy as np

from repro import (
    CosineSynopsis,
    DecayedCosineSynopsis,
    Domain,
    estimate_band_join_size,
    estimate_decayed_join_size,
    estimate_inequality_join_size,
    estimate_join_size,
    estimate_range_count,
    estimate_selected_join_size,
)


def main() -> None:
    rng = np.random.default_rng(9)
    n = 500
    domain = Domain.of_size(n)

    # Two smooth-ish correlated streams (sensor readings from two sites).
    base = np.clip(rng.normal(200, 60, size=30_000), 0, n - 1).astype(int)
    site_a_values = base
    site_b_values = np.clip(base + rng.integers(-30, 60, base.size), 0, n - 1)

    a = CosineSynopsis(domain, budget=96)
    b = CosineSynopsis(domain, budget=96)
    a.insert_batch(site_a_values[:, None])
    b.insert_batch(site_b_values[:, None])

    counts_a = np.bincount(site_a_values, minlength=n).astype(float)
    counts_b = np.bincount(site_b_values, minlength=n).astype(float)

    def report(label, estimate, actual):
        err = abs(estimate - actual) / actual if actual else 0.0
        print(f"{label:<42} est {estimate:>14,.0f}   act {actual:>14,.0f}   err {err:6.2%}")

    report(
        "equi-join  |A = B|",
        estimate_join_size(a, b),
        float(counts_a @ counts_b),
    )
    report(
        "inequality join  |A < B|",
        estimate_inequality_join_size(a, b, "<"),
        float(counts_a @ (counts_b.sum() - np.cumsum(counts_b))),
    )
    width = 10
    prefix = np.concatenate([[0.0], np.cumsum(counts_b)])
    hi = np.minimum(np.arange(n) + width + 1, n)
    lo = np.maximum(np.arange(n) - width, 0)
    report(
        f"band join  ||A - B| <= {width}|",
        estimate_band_join_size(a, b, width),
        float(counts_a @ (prefix[hi] - prefix[lo])),
    )
    sel = (150, 300)
    report(
        f"selected join  sigma_[{sel[0]},{sel[1]}] both sides",
        estimate_selected_join_size(a, b, sel, sel),
        float(counts_a[sel[0] : sel[1] + 1] @ counts_b[sel[0] : sel[1] + 1]),
    )
    report(
        "range count  |A in [100, 250]|",
        estimate_range_count(a, 100, 250),
        float(counts_a[100:251].sum()),
    )

    # Time-decayed join: the same streams with timestamps; tuples older
    # than ~1/gamma stop mattering.
    gamma = 0.5
    da = DecayedCosineSynopsis(domain, gamma=gamma, budget=96)
    db = DecayedCosineSynopsis(domain, gamma=gamma, budget=96)
    times = np.sort(rng.uniform(0, 10.0, base.size))
    for value_a, value_b, t in zip(site_a_values, site_b_values, times):
        da.insert((int(value_a),), timestamp=float(t))
        db.insert((int(value_b),), timestamp=float(t))
    decay_a = np.exp(-gamma * (10.0 - times))
    decayed_counts_a = np.bincount(site_a_values, weights=decay_a, minlength=n)
    decayed_counts_b = np.bincount(site_b_values, weights=decay_a, minlength=n)
    report(
        f"decayed equi-join (gamma={gamma}) at t=10",
        estimate_decayed_join_size(da, db, timestamp=10.0),
        float(decayed_counts_a @ decayed_counts_b),
    )


if __name__ == "__main__":
    main()
