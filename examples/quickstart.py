"""Quickstart: estimate an equi-join size over two data streams.

Builds cosine synopses for two streams, feeds tuples one at a time
(including a deletion), and compares the running estimate to the exact
join size — the core loop of the paper in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CosineSynopsis, Domain, estimate_join_size, relative_error


def main() -> None:
    rng = np.random.default_rng(7)
    n = 1_000
    domain = Domain.of_size(n)

    # One synopsis per stream; 64 coefficients each (the space budget).
    orders = CosineSynopsis(domain, budget=64)
    shipments = CosineSynopsis(domain, budget=64)

    # Simulate two correlated streams: product ids cluster around two
    # popular ranges, and shipments lag orders a little.
    modes = rng.choice([n * 0.25, n * 0.7], size=20_000, p=[0.6, 0.4])
    product_popularity = np.clip(
        rng.normal(modes, n * 0.08), 0, n - 1
    ).astype(int)
    orders.insert_batch(product_popularity[:, None])
    lagged = np.clip(product_popularity + rng.integers(0, 3, product_popularity.size), 0, n - 1)
    shipments.insert_batch(lagged[:, None])

    # Streams are dynamic: a cancelled order is just a deletion (Eq. 3.5).
    orders.insert((42,))
    orders.delete((42,))

    estimate = estimate_join_size(orders, shipments)

    # Ground truth, for demonstration (a real deployment never has this).
    actual = float(
        np.bincount(product_popularity, minlength=n)
        @ np.bincount(lagged, minlength=n)
    )

    print(f"streams:            {orders.count:,} orders, {shipments.count:,} shipments")
    print(f"synopsis size:      {orders.num_coefficients} coefficients per stream")
    print(f"estimated join size: {estimate:,.0f}")
    print(f"actual join size:    {actual:,.0f}")
    print(f"relative error:      {relative_error(actual, estimate):.2%}")


if __name__ == "__main__":
    main()
