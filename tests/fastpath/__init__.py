"""Tests for the ``repro.fastpath`` kernel layer."""
