"""Zero-copy batch ingest: int64 index batches pass through uncopied.

``Domain.indices_of`` and ``StreamRelation.indices_of_rows`` promise that
a well-formed int64 batch over 0-based integer domains is bounds-checked
in place and returned *as the caller's array* — no astype, no stack.
These tests pin that promise with ``is`` / ``np.shares_memory`` so a
future refactor cannot silently reintroduce a per-batch copy.
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import Telemetry
from repro.streams import StreamEngine


def make_relation(domains):
    engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
    engine.create_relation("R", [f"a{i}" for i in range(len(domains))], domains)
    return engine.relations["R"]


class TestDomainIndicesOf:
    def test_int64_zero_based_is_returned_uncopied(self):
        domain = Domain.of_size(100)
        values = np.array([0, 5, 99], dtype=np.int64)
        result = domain.indices_of(values)
        assert result is values

    def test_out_of_range_still_raises(self):
        domain = Domain.of_size(10)
        with pytest.raises(ValueError, match="outside integer domain"):
            domain.indices_of(np.array([0, 10], dtype=np.int64))
        with pytest.raises(ValueError, match="outside integer domain"):
            domain.indices_of(np.array([-1], dtype=np.int64))

    def test_non_int64_dtype_is_converted_not_aliased(self):
        domain = Domain.of_size(100)
        values = np.array([1, 2], dtype=np.int32)
        result = domain.indices_of(values)
        assert result.dtype == np.int64
        assert not np.shares_memory(result, values)

    def test_offset_domain_still_shifts(self):
        domain = Domain.integer_range(10, 19)
        values = np.array([10, 19], dtype=np.int64)
        result = domain.indices_of(values)
        assert np.array_equal(result, [0, 9])
        assert not np.shares_memory(result, values)

    def test_empty_int64_batch_passes_through(self):
        domain = Domain.of_size(4)
        values = np.empty(0, dtype=np.int64)
        assert domain.indices_of(values) is values


class TestRelationIndicesOfRows:
    def test_int64_batch_is_returned_uncopied(self):
        relation = make_relation([Domain.of_size(32), Domain.of_size(64)])
        rows = np.array([[0, 0], [31, 63]], dtype=np.int64)
        result = relation.indices_of_rows(rows)
        assert result is rows
        assert result.dtype == np.int64

    def test_bounds_are_still_enforced_per_column(self):
        relation = make_relation([Domain.of_size(32), Domain.of_size(64)])
        with pytest.raises(ValueError, match="outside integer domain"):
            relation.indices_of_rows(np.array([[0, 64]], dtype=np.int64))

    def test_categorical_domain_disables_the_fast_path(self):
        relation = make_relation([Domain.categorical(["x", "y", "z"])])
        result = relation.indices_of_rows(np.array([["y"], ["x"]]))
        assert np.array_equal(result, [[1], [0]])

    def test_offset_domain_disables_the_fast_path(self):
        relation = make_relation([Domain.integer_range(5, 9)])
        rows = np.array([[5], [9]], dtype=np.int64)
        result = relation.indices_of_rows(rows)
        assert np.array_equal(result, [[0], [4]])
        assert not np.shares_memory(result, rows)

    def test_float_rows_are_converted_not_aliased(self):
        relation = make_relation([Domain.of_size(8)])
        rows = np.array([[0.0], [7.0]])
        result = relation.indices_of_rows(rows)
        assert result.dtype == np.int64
        assert not np.shares_memory(result, rows)

    def test_insert_rows_keeps_caller_array_intact(self):
        """Zero-copy must mean read-only: ingest never mutates the batch."""
        relation = make_relation([Domain.of_size(16)])
        rows = np.arange(16, dtype=np.int64)[:, None]
        before = rows.copy()
        relation.insert_rows(rows)
        assert np.array_equal(rows, before)
        assert relation.count == 16
