"""Backend selection: gated numba import, env override, gauge reporting.

The container running CI has no numba, so the live import already
exercises the fallback; the tests below also *force* the failure path
with a poisoned ``sys.modules`` entry so the fallback stays covered even
on machines where numba happens to be installed.
"""

import importlib
import importlib.util
import sys

import numpy as np
import pytest

from repro.core.basis import basis_matrix
from repro.fastpath import (
    BACKENDS,
    agms_update_1d,
    available_backends,
    backend_name,
    describe,
    phi_block,
    register_backend_gauge,
    set_backend,
)
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry


def _fresh_modules(monkeypatch, env: str | None):
    """Import fresh copies of ``_numba`` + ``backend`` with numba poisoned.

    ``sys.modules["numba"] = None`` makes ``import numba`` raise
    ImportError deterministically, whether or not numba is installed.
    The canonical modules (and the package attributes pointing at them)
    are restored afterwards, so the rest of the suite is unaffected.
    """
    import repro.fastpath as pkg

    original_numba = sys.modules["repro.fastpath._numba"]
    original_backend = sys.modules["repro.fastpath.backend"]
    monkeypatch.setitem(sys.modules, "numba", None)
    if env is None:
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_FASTPATH", env)
    monkeypatch.delitem(sys.modules, "repro.fastpath._numba")
    monkeypatch.delitem(sys.modules, "repro.fastpath.backend")
    try:
        fresh_numba = importlib.import_module("repro.fastpath._numba")
        fresh_backend = importlib.import_module("repro.fastpath.backend")
    finally:
        sys.modules["repro.fastpath._numba"] = original_numba
        sys.modules["repro.fastpath.backend"] = original_backend
        pkg._numba = original_numba
        pkg.backend = original_backend
    return fresh_numba, fresh_backend


class TestImportTimeSelection:
    def test_numba_import_failure_falls_back_to_numpy(self, monkeypatch):
        fresh_numba, fresh_backend = _fresh_modules(monkeypatch, env=None)
        assert fresh_numba.HAVE_NUMBA is False
        assert fresh_numba.phi_block_kernel is None
        assert fresh_numba.agms_update_kernel is None
        assert fresh_backend.backend_name() == "numpy"
        assert "numba" not in fresh_backend.available_backends()

    def test_fallback_answers_match_reference(self, monkeypatch):
        _, fresh_backend = _fresh_modules(monkeypatch, env=None)
        positions = np.random.default_rng(0).uniform(0.0, 1.0, size=128)
        np.testing.assert_allclose(
            fresh_backend.phi_block(96, positions),
            basis_matrix(np.arange(96), positions),
            rtol=0.0,
            atol=1e-9,
        )

    def test_fallback_gauge_reports_numpy(self, monkeypatch):
        _, fresh_backend = _fresh_modules(monkeypatch, env=None)
        registry = MetricsRegistry()
        fresh_backend.register_backend_gauge(registry)
        family = registry.get("repro_fastpath_backend")
        assert family.labels("numpy").value == 1.0
        assert family.labels("numba").value == 0.0
        assert family.labels("reference").value == 0.0

    def test_env_requesting_numba_without_numba_falls_back(self, monkeypatch):
        _, fresh_backend = _fresh_modules(monkeypatch, env="numba")
        assert fresh_backend.backend_name() == "numpy"

    @pytest.mark.parametrize("env", ["auto", ""])
    def test_env_auto_keeps_automatic_choice(self, monkeypatch, env):
        _, fresh_backend = _fresh_modules(monkeypatch, env=env)
        assert fresh_backend.backend_name() == "numpy"

    def test_env_reference_is_honoured(self, monkeypatch):
        _, fresh_backend = _fresh_modules(monkeypatch, env="reference")
        assert fresh_backend.backend_name() == "reference"

    def test_env_unknown_backend_raises(self, monkeypatch):
        with pytest.raises(ValueError, match="REPRO_FASTPATH"):
            _fresh_modules(monkeypatch, env="cython")


class TestSetBackend:
    def test_switch_to_reference_and_back(self):
        previous = set_backend("reference")
        assert previous == "numpy"
        assert backend_name() == "reference"
        positions = np.linspace(0.0, 1.0, 32)
        assert np.array_equal(
            phi_block(8, positions), basis_matrix(np.arange(8), positions)
        )
        assert set_backend(previous) == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cython")

    @pytest.mark.skipif(
        importlib.util.find_spec("numba") is not None, reason="numba is installed"
    )
    def test_explicit_numba_request_raises_without_numba(self):
        with pytest.raises(RuntimeError, match="numba"):
            set_backend("numba")

    def test_agms_update_declined_off_numba(self):
        coeffs = np.ones((5, 4), dtype=np.uint64)
        atoms = np.zeros(5)
        assert agms_update_1d(coeffs, np.array([1, 2]), 1.0, atoms) is False
        assert np.array_equal(atoms, np.zeros(5))


class TestGauge:
    def test_gauge_follows_backend_switches(self):
        registry = MetricsRegistry()
        register_backend_gauge(registry)
        family = registry.get("repro_fastpath_backend")
        assert family.labels(backend_name()).value == 1.0
        set_backend("reference")
        assert family.labels("reference").value == 1.0
        assert family.labels("numpy").value == 0.0

    def test_telemetry_registers_the_gauge(self):
        telemetry = Telemetry()
        family = telemetry.registry.get("repro_fastpath_backend")
        assert family is not None
        assert family.labels(backend_name()).value == 1.0

    def test_disabled_telemetry_skips_the_gauge(self):
        telemetry = Telemetry.disabled()
        assert telemetry.registry.get("repro_fastpath_backend") is None


class TestDescribe:
    def test_describe_shape(self):
        info = describe()
        assert info["backend"] in BACKENDS
        assert set(info["available"]).issubset(set(BACKENDS))
        assert "numpy" in info["available"] and "reference" in info["available"]
        assert isinstance(info["numba_importable"], bool)

    def test_available_matches_numba_presence(self):
        has_numba = importlib.util.find_spec("numba") is not None
        assert ("numba" in available_backends()) == has_numba
