"""Parity of the Chebyshev-recurrence basis kernel against the reference.

The recurrence path (``phi_block_numpy``) must agree with
``basis_matrix`` — the per-entry reference the whole paper reproduction
is validated against — to <= 1e-9 at every order the synopses can reach,
on both grids, for both strategies (direct block below
``RECURRENCE_MIN_COLS`` columns, recurrence above).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import basis_matrix, make_grid
from repro.fastpath import (
    RECURRENCE_MIN_COLS,
    phi_block,
    phi_block_numpy,
    phi_block_reference,
)

PARITY_ATOL = 1e-9


def reference_table(order: int, positions: np.ndarray) -> np.ndarray:
    return basis_matrix(np.arange(order), positions)


class TestParityWithBasisMatrix:
    @settings(max_examples=60, deadline=None)
    @given(
        order=st.integers(min_value=1, max_value=300),
        cols=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_positions(self, order, cols, seed):
        positions = np.random.default_rng(seed).uniform(0.0, 1.0, size=cols)
        got = phi_block_numpy(order, positions)
        want = reference_table(order, positions)
        assert got.shape == want.shape == (order, cols)
        np.testing.assert_allclose(got, want, rtol=0.0, atol=PARITY_ATOL)

    @pytest.mark.parametrize("grid", ["midpoint", "endpoint"])
    @pytest.mark.parametrize("order", [1, 2, 3, 64, 257])
    def test_domain_grids(self, grid, order):
        positions = make_grid(512, grid)
        got = phi_block_numpy(order, positions)
        np.testing.assert_allclose(
            got, reference_table(order, positions), rtol=0.0, atol=PARITY_ATOL
        )

    def test_both_strategies_agree(self):
        """The same order on either side of the column threshold matches."""
        rng = np.random.default_rng(7)
        order = 128
        narrow = rng.uniform(0.0, 1.0, size=RECURRENCE_MIN_COLS - 1)  # direct
        wide = rng.uniform(0.0, 1.0, size=RECURRENCE_MIN_COLS)  # recurrence
        for positions in (narrow, wide):
            np.testing.assert_allclose(
                phi_block_numpy(order, positions),
                reference_table(order, positions),
                rtol=0.0,
                atol=PARITY_ATOL,
            )

    def test_direct_strategy_is_bit_identical(self):
        """Below the threshold the fast path must not perturb any answer."""
        positions = np.random.default_rng(3).uniform(0.0, 1.0, size=16)
        got = phi_block_numpy(200, positions)
        want = reference_table(200, positions)
        assert np.array_equal(got, want)

    def test_drift_stays_bounded_at_high_order(self):
        """The recurrence drift must stay under 1e-9 at extreme orders."""
        positions = make_grid(256, "midpoint")
        got = phi_block_numpy(4096, positions)
        want = reference_table(4096, positions)
        assert np.max(np.abs(got - want)) <= PARITY_ATOL

    def test_reference_kernel_matches_basis_matrix_exactly(self):
        positions = make_grid(128, "midpoint")
        assert np.array_equal(
            phi_block_reference(300, positions), reference_table(300, positions)
        )


class TestInterface:
    def test_out_buffer_is_written_and_returned(self):
        positions = make_grid(96, "midpoint")
        out = np.empty((70, 96))
        result = phi_block_numpy(70, positions, out=out)
        assert result is out
        np.testing.assert_allclose(
            out, reference_table(70, positions), rtol=0.0, atol=PARITY_ATOL
        )

    def test_row_zero_is_constant_one(self):
        table = phi_block(5, np.array([0.1, 0.9]))
        assert np.array_equal(table[0], [1.0, 1.0])

    def test_order_validated(self):
        with pytest.raises(ValueError, match="order"):
            phi_block_numpy(0, np.array([0.5]))

    def test_positions_must_be_1d(self):
        with pytest.raises(ValueError, match="1-d"):
            phi_block_numpy(4, np.zeros((2, 2)))

    def test_out_shape_and_dtype_validated(self):
        positions = np.array([0.25, 0.75])
        with pytest.raises(ValueError, match="out must be"):
            phi_block_numpy(4, positions, out=np.empty((3, 2)))
        with pytest.raises(ValueError, match="out must be"):
            phi_block_numpy(4, positions, out=np.empty((4, 2), dtype=np.float32))

    def test_result_is_c_contiguous_float64(self):
        table = phi_block_numpy(80, make_grid(100))
        assert table.flags.c_contiguous and table.dtype == np.float64
