"""Fixtures for the fastpath suite: backend state must not leak."""

import pytest

from repro.fastpath import backend_name, set_backend


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test runs with — and restores — the process-default backend."""
    before = backend_name()
    yield
    set_backend(before)
