"""End-to-end answer parity: the fast path must not move any estimate.

Every one of the seven estimation methods is run twice over the same
seeded workload — once on the ``reference`` backend (the 1.5.0 per-entry
seed behavior) and once on the fast ``numpy`` recurrence backend — and
the join-size answers must agree.  Methods that never touch the basis
kernel must agree exactly; the cosine synopsis may differ only by the
bounded recurrence drift (<= 1e-9 per table entry).
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.fastpath import set_backend
from repro.obs import Telemetry
from repro.streams import JoinQuery, StreamEngine

METHODS = (
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
)
DOMAIN = 512
TUPLES = 1_500
BUDGET = 64


def _workload() -> np.ndarray:
    rng = np.random.default_rng(42)
    return ((rng.zipf(1.4, size=TUPLES) - 1) % DOMAIN)[:, None]


def _answers(backend: str) -> dict:
    previous = set_backend(backend)
    try:
        engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
        domain = Domain.of_size(DOMAIN)
        engine.create_relation("R1", ["A"], [domain])
        engine.create_relation("R2", ["A"], [domain])
        query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
        for method in METHODS:
            engine.register_query(f"q_{method}", query, method=method, budget=BUDGET)
        rows = _workload()
        engine.ingest_batch("R1", rows)
        engine.ingest_batch("R2", rows[::-1])
        return {method: engine.answer(f"q_{method}") for method in METHODS}
    finally:
        set_backend(previous)


@pytest.fixture(scope="module")
def answer_pair():
    return _answers("reference"), _answers("numpy")


class TestAllMethodsUnchanged:
    @pytest.mark.parametrize("method", METHODS)
    def test_answer_parity(self, answer_pair, method):
        reference, fast = answer_pair
        assert fast[method] == pytest.approx(reference[method], rel=1e-9, abs=1e-6)

    @pytest.mark.parametrize("method", [m for m in METHODS if m != "cosine"])
    def test_non_cosine_methods_are_bit_identical(self, answer_pair, method):
        """Only the cosine synopsis consumes the basis kernel at all."""
        reference, fast = answer_pair
        assert fast[method] == reference[method]

    def test_answers_are_sane(self, answer_pair):
        reference, _ = answer_pair
        exact = float(
            np.sum(
                np.bincount(_workload()[:, 0], minlength=DOMAIN).astype(float) ** 2
            )
        )
        # Estimators, not oracles: just pin them to the right scale so a
        # silently-broken backend cannot pass parity by both being zero.
        for method, answer in reference.items():
            assert answer == pytest.approx(exact, rel=2.0), method
