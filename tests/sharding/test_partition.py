"""Deterministic hash partitioning: stability, coverage, order preservation."""

import numpy as np
import pytest

from repro.sharding.partition import hash_values, shard_of_values, split_rows


class TestHashValues:
    def test_deterministic_across_calls(self):
        values = np.arange(1000)
        np.testing.assert_array_equal(hash_values(values), hash_values(values))

    def test_same_value_same_hash_regardless_of_position(self):
        h = hash_values(np.array([7, 3, 7, 7, 3]))
        assert h[0] == h[2] == h[3]
        assert h[1] == h[4]

    def test_object_columns_hash_by_string(self):
        values = np.array(["red", "green", "red"], dtype=object)
        h = hash_values(values)
        assert h[0] == h[2] and h[0] != h[1]

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="1-d"):
            hash_values(np.zeros((3, 2), dtype=np.int64))

    def test_spreads_consecutive_integers(self):
        # splitmix64 decorrelates consecutive keys: no shard should end up
        # with a wildly disproportionate share of 0..N-1.
        shards = shard_of_values(np.arange(4000), 4)
        counts = np.bincount(shards, minlength=4)
        assert counts.min() > 700


class TestShardOfValues:
    def test_single_shard_routes_everything_to_zero(self):
        assert shard_of_values(np.arange(50), 1).sum() == 0

    def test_indices_in_range(self):
        shards = shard_of_values(np.arange(500), 7)
        assert shards.min() >= 0 and shards.max() < 7

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_values(np.arange(5), 0)


class TestSplitRows:
    def test_partition_is_exhaustive_and_disjoint(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 100, size=(500, 3))
        parts = split_rows(rows, axis=1, num_shards=4)
        assert sum(p.shape[0] for p in parts) == 500
        merged = np.concatenate(parts)
        # same multiset of rows
        order = lambda a: a[np.lexsort(a.T[::-1])]  # noqa: E731
        np.testing.assert_array_equal(order(merged), order(rows))

    def test_same_key_lands_on_same_shard(self):
        rows = np.column_stack([np.arange(200), np.repeat(np.arange(20), 10)])
        parts = split_rows(rows, axis=1, num_shards=5)
        seen = {}
        for shard, part in enumerate(parts):
            for key in np.unique(part[:, 1]):
                assert seen.setdefault(int(key), shard) == shard

    def test_arrival_order_preserved_within_shard(self):
        # Column 0 encodes arrival order; each shard's slice must be sorted.
        rng = np.random.default_rng(1)
        rows = np.column_stack([np.arange(300), rng.integers(0, 50, 300)])
        for part in split_rows(rows, axis=1, num_shards=3):
            assert np.all(np.diff(part[:, 0]) > 0)

    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            split_rows(np.zeros((4, 2), dtype=np.int64), axis=2, num_shards=2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="row batch"):
            split_rows(np.zeros(4, dtype=np.int64), axis=0, num_shards=2)
