"""Tests for the sharded engine: partitioning, executors, parity, recovery."""
