"""Shard crash/recovery: per-shard checkpoints, restore, fault isolation.

The fleet-level analogue of ``tests/resilience/test_recovery.py``: kill
one shard at an arbitrary batch boundary, restore it from *its own*
checkpoint store (no other shard is touched), replay the remaining
batches — and every query answers exactly what an uncrashed fleet
answers.  Plus: full-fleet restore from the manifest, checkpoint writes
surviving injected filesystem faults, and observer quarantine degrading
only the affected shard's queries.
"""

import math

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.resilience.chaos import CrashingIngest, FailingFilesystem, SimulatedCrash
from repro.resilience.errors import DegradedQueryError
from repro.sharding import ShardedStreamEngine, ShardError
from repro.streams import JoinQuery

DOMAIN = 48
NUM_SHARDS = 3
QUERY = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])

ALL_METHODS = [
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
]
EXACT_METHODS = [m for m in ALL_METHODS if m != "cosine"]


def build_fleet(num_shards=NUM_SHARDS, seed=11, executor="serial"):
    fleet = ShardedStreamEngine(num_shards=num_shards, seed=seed, executor=executor)
    domain = Domain.of_size(DOMAIN)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    for method in ALL_METHODS:
        options = {"probability": 0.25} if method == "sample" else {}
        fleet.register_query(f"q_{method}", QUERY, method=method, budget=24, **options)
    fleet.register_range_query("q_range", "R1", "A", 10, 30, budget=24)
    return fleet


def make_batches(n_batches=8, batch_size=40, seed=5):
    rng = np.random.default_rng(seed)
    batches = []
    for i in range(n_batches):
        name = "R1" if i % 2 == 0 else "R2"
        rows = ((rng.zipf(1.4, size=batch_size) - 1) % DOMAIN)[:, None]
        batches.append((name, rows))
    return batches


def kill_shard(fleet, shard):
    """Simulate one shard process dying: its live engine state is lost."""
    worker = fleet._executor.workers[shard]
    worker.engine = worker._fresh_engine()


def assert_fleet_answers_equal(fleet, expected):
    for method in EXACT_METHODS:
        value = fleet.answer(f"q_{method}")
        want = expected[f"q_{method}"]
        assert value == want or (math.isnan(value) and math.isnan(want)), method
    for name in ("q_cosine", "q_range"):
        assert fleet.answer(name) == pytest.approx(expected[name], rel=1e-9)


class TestShardCrashRecoveryProperty:
    @pytest.mark.parametrize("crash_at", [1, 2, 4, 7, 8])
    @pytest.mark.parametrize("shard", [0, 2])
    def test_one_shard_crash_at_any_batch_boundary(self, tmp_path, crash_at, shard):
        batches = make_batches()

        control = build_fleet()
        for name, rows in batches:
            control.ingest_batch(name, rows)
        expected = control.answers()

        victim = build_fleet()
        ckpt_dir = tmp_path / f"fleet-{shard}-{crash_at}"
        for name, rows in batches[:crash_at]:
            victim.ingest_batch(name, rows)
            victim.save_checkpoints(ckpt_dir)

        kill_shard(victim, shard)
        restored_from = victim.restore_shard(shard, ckpt_dir)
        assert f"shard-{shard:02d}" in restored_from

        for name, rows in batches[crash_at:]:
            victim.ingest_batch(name, rows)
        assert_fleet_answers_equal(victim, expected)
        victim.close()
        control.close()

    def test_unrestored_crash_actually_loses_state(self, tmp_path):
        """The kill helper is a real fault: the dead shard cannot answer."""
        fleet = build_fleet()
        batches = make_batches()
        for name, rows in batches:
            fleet.ingest_batch(name, rows)
        kill_shard(fleet, 1)
        with pytest.raises(ShardError, match="shard 1"):
            fleet.total_count("R1")
        fleet.close()

    def test_full_fleet_restore_from_manifest(self, tmp_path):
        batches = make_batches(n_batches=6)
        control = build_fleet()
        fleet = build_fleet()
        for name, rows in batches[:4]:
            control.ingest_batch(name, rows)
            fleet.ingest_batch(name, rows)
        fleet.save_checkpoints(tmp_path)
        fleet.close()

        restored = ShardedStreamEngine.restore(tmp_path)
        assert restored.num_shards == NUM_SHARDS
        assert set(restored.query_names()) == set(control.query_names())
        for name, rows in batches[4:]:
            control.ingest_batch(name, rows)
            restored.ingest_batch(name, rows)
        assert_fleet_answers_equal(restored, control.answers())
        restored.close()
        control.close()

    @pytest.mark.parametrize("crash_at", [2, 5, 8])
    def test_whole_process_crash_restores_from_last_checkpoint(self, tmp_path, crash_at):
        """SimulatedCrash mid-stream: restore the fleet, replay, same answers."""

        class _FleetStore:
            def save(self, fleet):
                fleet.save_checkpoints(tmp_path)

        batches = make_batches()
        control = build_fleet()
        for name, rows in batches:
            control.ingest_batch(name, rows)

        fleet = build_fleet()
        driver = CrashingIngest(fleet, store=_FleetStore(), crash_at=crash_at)
        with pytest.raises(SimulatedCrash):
            driver.run(batches)
        applied = driver.batches_applied
        assert applied == crash_at - 1
        fleet.close()  # the dead process

        restored = ShardedStreamEngine.restore(tmp_path)
        for name, rows in batches[applied:]:
            restored.ingest_batch(name, rows)
        assert_fleet_answers_equal(restored, control.answers())
        restored.close()
        control.close()

    def test_checkpoint_write_survives_filesystem_faults(self, tmp_path):
        fleet = build_fleet()
        for name, rows in make_batches(n_batches=4):
            fleet.ingest_batch(name, rows)
        with FailingFilesystem(fail_replaces=2) as fs:
            fleet.save_checkpoints(tmp_path)
        assert fs.replace_calls > 2  # the retry path re-ran the rename
        restored = ShardedStreamEngine.restore(tmp_path)
        assert_fleet_answers_equal(restored, fleet.answers())
        restored.close()
        fleet.close()

    def test_restore_shard_validates_inputs(self, tmp_path):
        fleet = build_fleet()
        with pytest.raises(ValueError, match="out of range"):
            fleet.restore_shard(99, tmp_path)
        with pytest.raises(ShardError, match="no checkpoints"):
            fleet.restore_shard(0, tmp_path / "empty")
        fleet.close()


def degrade_shard_query(fleet, shard, query="q_cosine"):
    """Make one query's observer on one shard explode on the next batch."""
    engine = fleet._executor.workers[shard].engine
    _, observer = engine._queries[query].attachments[0]

    def exploding(relation, rows, kind):
        raise RuntimeError("synopsis exploded")

    observer.on_ops = exploding


class TestPerShardFaultIsolation:
    def feed_all_shards(self, fleet, seed=9):
        rng = np.random.default_rng(seed)
        fleet.ingest_batch("R1", rng.integers(0, DOMAIN, size=(120, 1)))
        fleet.ingest_batch("R2", rng.integers(0, DOMAIN, size=(120, 1)))

    def test_quarantine_degrades_only_that_shards_queries(self):
        fleet = build_fleet()
        fleet.enable_fault_isolation("raise")
        degrade_shard_query(fleet, shard=1)
        self.feed_all_shards(fleet)
        degraded = fleet.degraded_queries()
        assert list(degraded) == ["q_cosine"]
        assert list(degraded["q_cosine"]) == [1]
        # every other shard's engine is untouched
        for shard in (0, 2):
            assert fleet._executor.workers[shard].engine.degraded_queries() == {}
        fleet.close()

    def test_raise_policy_names_shard_and_query(self):
        fleet = build_fleet()
        fleet.enable_fault_isolation("raise")
        degrade_shard_query(fleet, shard=1)
        self.feed_all_shards(fleet)
        with pytest.raises(DegradedQueryError) as info:
            fleet.answer("q_cosine")
        assert info.value.query == "q_cosine"
        assert "shard 1" in info.value.reason
        fleet.close()

    def test_other_queries_keep_answering_exactly(self):
        control = build_fleet()
        fleet = build_fleet()
        fleet.enable_fault_isolation("nan")
        degrade_shard_query(fleet, shard=1)
        self.feed_all_shards(control)
        self.feed_all_shards(fleet)
        assert math.isnan(fleet.answer("q_cosine"))
        for method in EXACT_METHODS:
            assert fleet.answer(f"q_{method}") == control.answer(f"q_{method}")
        fleet.close()
        control.close()

    def test_exact_policy_falls_back_to_merged_ground_truth(self):
        fleet = build_fleet()
        fleet.enable_fault_isolation("exact")
        degrade_shard_query(fleet, shard=0)
        self.feed_all_shards(fleet)
        assert fleet.answer("q_cosine") == fleet.exact_answer("q_cosine")
        fleet.close()

    def test_policy_validated(self):
        fleet = build_fleet()
        with pytest.raises(ValueError, match="unknown degraded-answer policy"):
            fleet.enable_fault_isolation("retry")
        fleet.close()
