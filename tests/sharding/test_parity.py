"""The sharding correctness property: sharded answers == single-engine answers.

Hypothesis drives random insert/delete streams through a single
:class:`StreamEngine` and a :class:`ShardedStreamEngine` with 1–8 shards,
with every one of the seven estimation methods registered, and asserts
the answers agree: *bit-identical* for the integer-valued and
coordinator-resident methods (sketches, histogram, sample, partitioned
sketch, wavelet), float-tolerance for cosine (and the cosine range/band
kinds), whose merged coefficients are summed in a different order but
read by a continuous estimator.

Bernoulli samples reject deletions by design (the paper's section 2
argument), so delete-mix streams register every method *except*
``sample`` — matching what a single engine supports.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.sharding import ShardedStreamEngine
from repro.sharding.merge import COORDINATOR_METHODS, MERGEABLE_METHODS
from repro.streams import JoinQuery, StreamEngine
from repro.streams.tuples import OpKind

NA, NB = 16, 12
BUDGET = 12
QUERY = JoinQuery.parse(["R", "S"], ["R.B = S.B"])

ALL_METHODS = [
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
]
#: Methods whose sharded answer must equal the single-engine answer
#: bit-for-bit: sketch atoms and bucket counts are integer-valued floats
#: (order-independent sums), and the coordinator methods replay the exact
#: arrival order.
EXACT_METHODS = [
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
]
#: Cosine coefficients are irrational-basis float sums; merging reorders
#: the summation, so these match to tolerance only.
FLOAT_METHODS = ["cosine"]
#: Bernoulli samples cannot process deletions (paper section 2).
DELETE_SAFE_METHODS = [m for m in ALL_METHODS if m != "sample"]


def methods_for(with_deletes):
    return DELETE_SAFE_METHODS if with_deletes else ALL_METHODS


def build_single(seed=0, methods=ALL_METHODS):
    engine = StreamEngine(seed=seed)
    engine.create_relation("R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)])
    engine.create_relation("S", ["B"], [Domain.of_size(NB)])
    for method in methods:
        engine.register_query(f"q_{method}", QUERY, method=method, budget=BUDGET)
    engine.register_range_query("q_range", "R", "A", 2, 11, budget=BUDGET)
    engine.register_band_query("q_band", ("R", "B"), ("S", "B"), width=2, budget=BUDGET)
    return engine


def build_sharded(num_shards, seed=0, executor="serial", methods=ALL_METHODS):
    engine = ShardedStreamEngine(num_shards=num_shards, seed=seed, executor=executor)
    engine.create_relation(
        "R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)], partition_by="B"
    )
    engine.create_relation("S", ["B"], [Domain.of_size(NB)])
    for method in methods:
        engine.register_query(f"q_{method}", QUERY, method=method, budget=BUDGET)
    engine.register_range_query("q_range", "R", "A", 2, 11, budget=BUDGET)
    engine.register_band_query("q_band", ("R", "B"), ("S", "B"), width=2, budget=BUDGET)
    return engine


def make_stream(data_seed, n_batches, with_deletes):
    """A valid random op stream: inserts, plus deletes of live tuples only."""
    rng = np.random.default_rng(data_seed)
    live = {"R": [], "S": []}
    ops = []
    for i in range(n_batches):
        rel = "R" if i % 2 == 0 else "S"
        if with_deletes and len(live[rel]) >= 4 and rng.random() < 0.4:
            k = int(rng.integers(1, min(len(live[rel]), 15) + 1))
            picked = rng.choice(len(live[rel]), size=k, replace=False)
            rows = np.array([live[rel][j] for j in picked])
            keep = np.ones(len(live[rel]), dtype=bool)
            keep[picked] = False
            live[rel] = [r for r, k_ in zip(live[rel], keep) if k_]
            ops.append((rel, rows, OpKind.DELETE))
        else:
            size = int(rng.integers(8, 50))
            if rel == "R":
                rows = np.column_stack(
                    [rng.integers(0, NA, size), rng.integers(0, NB, size)]
                )
            else:
                rows = rng.integers(0, NB, size).reshape(-1, 1)
            live[rel].extend(tuple(r) for r in rows.tolist())
            ops.append((rel, rows, OpKind.INSERT))
    return ops


def feed(engine, ops):
    for rel, rows, kind in ops:
        engine.ingest_batch(rel, rows, kind)


def answer_or_error(engine, name):
    """An answer, or a marker for the error an empty synopsis raises."""
    try:
        return engine.answer(name)
    except Exception as exc:
        return ("raised", type(exc).__name__)


def same_value(a, b):
    if isinstance(a, tuple) or isinstance(b, tuple):
        return a == b
    return a == b or (math.isnan(a) and math.isnan(b))


def assert_same_answers(single, sharded, methods=ALL_METHODS):
    for method in EXACT_METHODS:
        if method not in methods:
            continue
        a = answer_or_error(single, f"q_{method}")
        b = answer_or_error(sharded, f"q_{method}")
        assert same_value(a, b), (method, a, b)
    for name in [f"q_{m}" for m in FLOAT_METHODS] + ["q_range", "q_band"]:
        a = answer_or_error(single, name)
        b = answer_or_error(sharded, name)
        if isinstance(a, tuple) or isinstance(b, tuple):
            assert a == b, (name, a, b)
        else:
            assert b == pytest.approx(a, rel=1e-9, abs=1e-6), (name, a, b)
    assert sharded.exact_answer("q_cosine") == single.exact_answer("q_cosine")


class TestShardedParityProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        num_shards=st.integers(1, 8),
        n_batches=st.integers(1, 8),
        with_deletes=st.booleans(),
    )
    def test_all_methods_match_single_engine(
        self, data_seed, num_shards, n_batches, with_deletes
    ):
        ops = make_stream(data_seed, n_batches, with_deletes)
        methods = methods_for(with_deletes)
        single = build_single(methods=methods)
        feed(single, ops)
        sharded = build_sharded(num_shards, methods=methods)
        feed(sharded, ops)
        assert_same_answers(single, sharded, methods)
        for rel in ("R", "S"):
            assert sharded.total_count(rel) == single.relations[rel].count
        sharded.close()

    @settings(max_examples=10, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        num_shards=st.integers(2, 6),
    )
    def test_batch_framing_is_irrelevant_under_sharding(self, data_seed, num_shards):
        """One big batch vs row-at-a-time batches: identical final state."""
        ops = make_stream(data_seed, n_batches=4, with_deletes=True)
        coarse = build_sharded(num_shards, methods=DELETE_SAFE_METHODS)
        feed(coarse, ops)
        fine = build_sharded(num_shards, methods=DELETE_SAFE_METHODS)
        for rel, rows, kind in ops:
            for row in rows:
                fine.ingest_batch(rel, row.reshape(1, -1), kind)
        # `sample` rejects deletes; `wavelet` batch-vs-sequential framing is
        # a single-engine float-order property (its batch kernel sums
        # transform coefficients in a different order than per-tuple
        # updates), not a sharding one, so neither belongs in this check.
        for method in EXACT_METHODS:
            if method in ("sample", "wavelet"):
                continue
            a = answer_or_error(coarse, f"q_{method}")
            b = answer_or_error(fine, f"q_{method}")
            assert same_value(a, b), (method, a, b)
        for name in [f"q_{m}" for m in FLOAT_METHODS] + ["q_range", "q_band"]:
            a = answer_or_error(coarse, name)
            b = answer_or_error(fine, name)
            if isinstance(a, tuple) or isinstance(b, tuple):
                assert a == b, (name, a, b)
            else:
                assert b == pytest.approx(a, rel=1e-9, abs=1e-6), (name, a, b)
        coarse.close()
        fine.close()

    @settings(max_examples=10, deadline=None)
    @given(data_seed=st.integers(0, 2**16), num_shards=st.integers(1, 8))
    def test_registration_after_history_replays_identically(
        self, data_seed, num_shards
    ):
        """Queries registered mid-stream replay shard-local history correctly."""
        ops = make_stream(data_seed, n_batches=5, with_deletes=False)
        head, tail = ops[:3], ops[3:]
        single = StreamEngine(seed=0)
        single.create_relation(
            "R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)]
        )
        single.create_relation("S", ["B"], [Domain.of_size(NB)])
        sharded = ShardedStreamEngine(num_shards=num_shards, seed=0)
        sharded.create_relation(
            "R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)], partition_by="B"
        )
        sharded.create_relation("S", ["B"], [Domain.of_size(NB)])
        feed(single, head)
        feed(sharded, head)
        registered = []
        for method in ALL_METHODS:
            # Degenerate pilots make some registrations fail (e.g. the
            # partitioned sketch's equi-mass boundaries on concentrated
            # data); parity means both engines reject identically.
            try:
                single.register_query(
                    f"q_{method}", QUERY, method=method, budget=BUDGET
                )
                single_ok = None
            except Exception as exc:
                single_ok = type(exc).__name__
            try:
                sharded.register_query(
                    f"q_{method}", QUERY, method=method, budget=BUDGET
                )
                sharded_ok = None
            except Exception as exc:
                sharded_ok = type(exc).__name__
            assert single_ok == sharded_ok, (method, single_ok, sharded_ok)
            if single_ok is None:
                registered.append(method)
        single.register_range_query("q_range", "R", "A", 2, 11, budget=BUDGET)
        sharded.register_range_query("q_range", "R", "A", 2, 11, budget=BUDGET)
        single.register_band_query(
            "q_band", ("R", "B"), ("S", "B"), width=2, budget=BUDGET
        )
        sharded.register_band_query(
            "q_band", ("R", "B"), ("S", "B"), width=2, budget=BUDGET
        )
        feed(single, tail)
        feed(sharded, tail)
        assert_same_answers(single, sharded, registered)
        sharded.close()


class TestExecutorParity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_answer_identically(self, executor):
        ops = make_stream(99, n_batches=6, with_deletes=True)
        single = build_single(methods=DELETE_SAFE_METHODS)
        feed(single, ops)
        with build_sharded(3, executor=executor, methods=DELETE_SAFE_METHODS) as sharded:
            feed(sharded, ops)
            assert_same_answers(single, sharded, DELETE_SAFE_METHODS)


class TestPartitionChoiceIrrelevance:
    def test_partition_attribute_does_not_change_answers(self):
        ops = make_stream(7, n_batches=6, with_deletes=True)
        by_b = build_sharded(4, methods=DELETE_SAFE_METHODS)
        feed(by_b, ops)
        by_a = ShardedStreamEngine(num_shards=4, seed=0)
        by_a.create_relation(
            "R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)], partition_by="A"
        )
        by_a.create_relation("S", ["B"], [Domain.of_size(NB)])
        for method in DELETE_SAFE_METHODS:
            by_a.register_query(f"q_{method}", QUERY, method=method, budget=BUDGET)
        by_a.register_range_query("q_range", "R", "A", 2, 11, budget=BUDGET)
        by_a.register_band_query("q_band", ("R", "B"), ("S", "B"), width=2, budget=BUDGET)
        feed(by_a, ops)
        for method in EXACT_METHODS:
            if method == "sample":
                continue
            assert by_a.answer(f"q_{method}") == by_b.answer(f"q_{method}")
        for name in [f"q_{m}" for m in FLOAT_METHODS] + ["q_range", "q_band"]:
            assert by_a.answer(name) == pytest.approx(by_b.answer(name), rel=1e-9)
        by_a.close()
        by_b.close()
