"""The three shard executors behave identically behind one interface."""

import pytest

from repro.sharding.executor import (
    ProcessExecutor,
    SerialExecutor,
    ShardError,
    ShardExecutor,
    ThreadExecutor,
    resolve_executor,
)

EXECUTORS = ["serial", "thread", "process"]


@pytest.fixture(params=EXECUTORS)
def executor(request):
    ex = resolve_executor(request.param)
    ex.start(3, seed=0, telemetry=False)
    yield ex
    ex.close()


class TestCommandProtocol:
    def test_broadcast_returns_shard_order(self, executor):
        assert executor.broadcast("ping") == [0, 1, 2]

    def test_call_targets_one_shard(self, executor):
        assert executor.call(1, "ping") == 1

    def test_scatter_skips_none_entries(self, executor):
        results = executor.scatter("ping", [((), {}), None, ((), {})])
        assert results == [0, None, 2]

    def test_worker_exception_becomes_shard_error(self, executor):
        with pytest.raises(ShardError, match="shard 2"):
            executor.call(2, "unregister_query", "nope")

    def test_scatter_surfaces_first_error_only(self, executor):
        with pytest.raises(ShardError):
            executor.scatter(
                "unregister_query", [(("a",), {}), (("b",), {}), (("c",), {})]
            )

    def test_unknown_method_is_shard_error(self, executor):
        with pytest.raises(ShardError):
            executor.call(0, "no_such_command")


class TestLifecycle:
    def test_close_is_idempotent(self):
        for name in EXECUTORS:
            ex = resolve_executor(name)
            ex.start(2, seed=0, telemetry=False)
            ex.close()
            ex.close()

    def test_context_manager_closes(self):
        with resolve_executor("thread") as ex:
            ex.start(2, seed=0, telemetry=False)
            assert ex.broadcast("ping") == [0, 1]

    def test_process_workers_are_real_processes(self):
        ex = ProcessExecutor()
        ex.start(2, seed=0, telemetry=False)
        try:
            pids = set(ex.broadcast("ping"))
            assert pids == {0, 1}
            assert all(p.is_alive() for p in ex._procs)
        finally:
            ex.close()
        assert not any(p.is_alive() for p in ex._procs) or not ex._procs


class TestResolve:
    def test_names_resolve(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_instance_passes_through(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ShardExecutor().start(1, 0)


class TestProcessExecutorRobustness:
    def test_dead_worker_raises_instead_of_blocking(self):
        import os
        import signal

        ex = ProcessExecutor()
        ex.start(2, seed=0, telemetry=False)
        try:
            os.kill(ex._procs[1].pid, signal.SIGKILL)
            with pytest.raises(ShardError, match="worker process"):
                ex.call(1, "ping")
            # the surviving shard is unaffected
            assert ex.call(0, "ping") == 0
        finally:
            ex.close()

    def test_call_timeout_bounds_an_unresponsive_worker(self):
        import signal

        ex = ProcessExecutor(call_timeout=0.3)
        ex.start(1, seed=0, telemetry=False)
        try:
            # wedge the worker: SIGSTOP leaves it alive but unable to reply
            import os

            os.kill(ex._procs[0].pid, signal.SIGSTOP)
            try:
                with pytest.raises(ShardError, match="call_timeout"):
                    ex.call(0, "ping")
            finally:
                os.kill(ex._procs[0].pid, signal.SIGCONT)
        finally:
            ex.close()

    def test_call_timeout_validation(self):
        with pytest.raises(ValueError, match="call_timeout"):
            ProcessExecutor(call_timeout=0)

    def test_close_does_not_hang_after_a_worker_crash(self):
        import os
        import signal
        import time

        ex = ProcessExecutor()
        ex.start(2, seed=0, telemetry=False)
        os.kill(ex._procs[0].pid, signal.SIGKILL)
        started = time.monotonic()
        ex.close()
        assert time.monotonic() - started < 10
        assert ex._procs == [] and ex._conns == []
