"""Distributed tracing across the shard boundary.

The acceptance shape: one coordinator trace per fleet operation, with
every shard's engine spans carrying the coordinator's trace id and
parenting under the coordinator span that fanned them out — including
across real process boundaries.
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs.otel import encode_span_groups, validate_traces_payload
from repro.sharding import ShardedStreamEngine
from repro.streams import JoinQuery

EXECUTORS = ["serial", "thread", "process"]


def make_fleet(executor, num_shards=3):
    fleet = ShardedStreamEngine(num_shards=num_shards, seed=0, executor=executor)
    domain = Domain.of_size(32)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    fleet.register_query("q", query, method="cosine", budget=16)
    return fleet


def spans_by_shard(groups):
    return {resource["shard"]: list(events) for resource, events in groups}


@pytest.mark.parametrize("executor", EXECUTORS)
class TestFleetTracePropagation:
    def test_shard_ingest_spans_join_coordinator_trace(self, executor):
        with make_fleet(executor) as fleet:
            rows = np.arange(64, dtype=np.int64)[:, None] % 32
            fleet.ingest_batch("R1", rows)
            by_shard = spans_by_shard(fleet.drain_spans())
        (coordinator_span,) = by_shard.pop("coordinator")
        assert coordinator_span.name == "ingest_batch"
        assert len(by_shard) >= 2  # 64 keys over 3 shards: several non-empty
        for shard, events in by_shard.items():
            batch_events = [e for e in events if e.name == "ingest_batch"]
            assert batch_events, f"shard {shard} recorded no ingest span"
            for event in events:
                assert event.trace_id == coordinator_span.trace_id
                assert event.parent_span_id == coordinator_span.span_id

    def test_estimate_spans_join_coordinator_trace(self, executor):
        with make_fleet(executor) as fleet:
            rows = np.arange(32, dtype=np.int64)[:, None] % 32
            fleet.ingest_batch("R1", rows)
            fleet.ingest_batch("R2", rows)
            fleet.drain_spans()  # discard the ingest traces
            fleet.answer("q")
            by_shard = spans_by_shard(fleet.drain_spans())
        (estimate_span,) = by_shard.pop("coordinator")
        assert estimate_span.name == "estimate"
        assert estimate_span.attrs == {"query": "q", "method": "cosine"}
        assert by_shard  # every answering shard traced under the fan-out
        for events in by_shard.values():
            (event,) = [e for e in events if e.name == "estimate"]
            assert event.trace_id == estimate_span.trace_id
            assert event.parent_span_id == estimate_span.span_id

    def test_each_operation_is_its_own_span_same_trace(self, executor):
        with make_fleet(executor) as fleet:
            rows = np.arange(32, dtype=np.int64)[:, None] % 32
            fleet.ingest_batch("R1", rows)
            fleet.ingest_batch("R2", rows)
            by_shard = spans_by_shard(fleet.drain_spans())
        first, second = by_shard["coordinator"]
        assert first.trace_id == second.trace_id  # one tracer, one fleet trace
        assert first.span_id != second.span_id
        for shard, events in by_shard.items():
            if shard == "coordinator":
                continue
            parents = {e.parent_span_id for e in events if e.name == "ingest_batch"}
            assert parents <= {first.span_id, second.span_id}

    def test_drained_groups_export_as_valid_otlp(self, executor):
        with make_fleet(executor) as fleet:
            rows = np.arange(64, dtype=np.int64)[:, None] % 32
            fleet.ingest_batch("R1", rows)
            groups = fleet.drain_spans()
        payload = encode_span_groups(groups)
        assert validate_traces_payload(payload) == []
        assert len(payload["resourceSpans"]) == len(groups)

    def test_drain_delivers_each_span_once(self, executor):
        with make_fleet(executor) as fleet:
            rows = np.arange(64, dtype=np.int64)[:, None] % 32
            fleet.ingest_batch("R1", rows)
            first = fleet.drain_spans()
            second = fleet.drain_spans()
        assert first and second == []


class TestUntracedFleet:
    def test_telemetry_off_drains_nothing(self):
        fleet = ShardedStreamEngine(num_shards=2, seed=0, telemetry=False)
        try:
            domain = Domain.of_size(8)
            fleet.create_relation("R1", ["A"], [domain])
            fleet.ingest_batch("R1", np.zeros((4, 1), dtype=np.int64))
            assert fleet.tracer is None
            assert fleet.drain_spans() == []
        finally:
            fleet.close()
