"""Per-shard observability: shard labels, merged fleet registries."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.sharding import ShardedStreamEngine
from repro.streams import JoinQuery, StreamEngine
from repro.streams.stats import EngineStats
from repro.streams.tuples import OpKind

QUERY = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])


def build_fleet(num_shards=2, executor="serial"):
    fleet = ShardedStreamEngine(num_shards=num_shards, seed=0, executor=executor)
    domain = Domain.of_size(32)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    fleet.register_query("q", QUERY, method="cosine", budget=16)
    return fleet


def feed(fleet, n=200, seed=1):
    rng = np.random.default_rng(seed)
    fleet.ingest_batch("R1", rng.integers(0, 32, size=(n, 1)))
    fleet.ingest_batch("R2", rng.integers(0, 32, size=(n, 1)))


class TestShardLabel:
    def test_engine_stats_grows_shard_label(self):
        stats = EngineStats(shard="3")
        stats.record_ops(5, kind=OpKind.INSERT, batched=True, relation="R")
        family = stats.registry.get("repro_relation_ops_total")
        assert family.labelnames == ("relation", "shard")
        assert family.labels("R", "3").value == 5

    def test_unsharded_engine_keeps_single_labels(self):
        engine = StreamEngine(seed=0)
        family = engine.telemetry.registry.get("repro_relation_ops_total")
        assert family.labelnames == ("relation",)

    def test_reading_surface_unchanged_with_shard(self):
        engine = StreamEngine(seed=0, shard="1")
        engine.create_relation("R", ["A"], [Domain.of_size(8)])
        engine.ingest_batch("R", np.zeros((7, 1), dtype=np.int64))
        assert engine.stats().relation_ops == {"R": 7}
        assert engine.stats().tuples_ingested == 7


class TestFleetMetrics:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_per_shard_series_survive_the_merge(self, executor):
        with build_fleet(executor=executor) as fleet:
            feed(fleet)
            snap = fleet.fleet_metrics().snapshot()
        rel = snap["repro_relation_ops_total"]
        assert rel["labels"] == ["relation", "shard"]
        shard_keys = {k for k in rel["values"] if not k.endswith("coordinator")}
        assert len(shard_keys) >= 2  # both shards reported
        # per-shard R1 series sum back to the full relation count
        r1_total = sum(
            v for k, v in rel["values"].items()
            if k.startswith("R1,") and not k.endswith("coordinator")
        )
        assert r1_total == 200

    def test_fleet_counters_sum_across_shards(self):
        with build_fleet() as fleet:
            feed(fleet)
            merged = fleet.fleet_metrics()
        assert merged.counter("repro_ingest_ops_total").value == 400

    def test_shard_stats_lists_every_shard(self):
        with build_fleet(num_shards=3) as fleet:
            feed(fleet)
            stats = fleet.shard_stats()
        assert len(stats) == 3
        assert sum(s["tuples_ingested"] for s in stats) == 400
