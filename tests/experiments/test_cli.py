"""Tests for the repro-experiments command line."""

import pytest

from repro.experiments.cli import build_parser, main


class TestList:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 21):
            assert f"fig{i:02d}" in out


class TestRun:
    def test_run_one_figure(self, capsys):
        code = main(["run", "fig13", "--trials", "1", "--budgets", "10,20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "winner" in out

    def test_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_chart_flag(self, capsys):
        main(["run", "fig13", "--trials", "1", "--budgets", "10,20", "--chart"])
        out = capsys.readouterr().out
        assert "relative error vs space" in out

    def test_budget_parsing(self, capsys):
        main(["run", "fig13", "--trials", "1", "--budgets", "15"])
        out = capsys.readouterr().out
        assert "15" in out


class TestSpeed:
    def test_speed_smoke(self, capsys):
        assert main(["speed", "--size", "200"]) == 0
        out = capsys.readouterr().out
        assert "cosine" in out and "sketch" in out


class TestJsonExport:
    def test_json_file_written(self, capsys, tmp_path):
        out = tmp_path / "series.json"
        main(["run", "fig13", "--trials", "1", "--budgets", "10,20",
              "--json", str(out)])
        import json

        payload = json.loads(out.read_text())
        assert payload[0]["name"] == "fig13"
        assert payload[0]["budgets"] == [10, 20]


class TestStats:
    METHODS = ("cosine", "basic_sketch", "sample", "histogram", "wavelet")

    def test_stats_smoke_reports_every_method(self, capsys):
        code = main(
            ["stats", "--tuples", "400", "--batch", "64", "--domain", "200",
             "--budget", "32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "observer update time by method:" in out
        for method in self.METHODS:  # the default --methods registration set
            assert method in out

    def test_stats_per_tuple_mode(self, capsys):
        code = main(
            ["stats", "--tuples", "50", "--batch", "1", "--domain", "50",
             "--budget", "16", "--methods", "cosine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-tuple ops" in out and "cosine" in out


class TestMonitor:
    ARGS = ["monitor", "--tuples", "600", "--batch", "128", "--domain", "100",
            "--budget", "32", "--refresh-every", "400", "--accuracy-every", "200",
            "--no-clear"]

    def test_monitor_end_to_end(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "telemetry dashboard" in out
        assert "tuples ingested" in out
        assert "estimate latency:" in out and "p95" in out
        assert "streaming relative error" in out
        assert "q_cosine" in out and "q_basic_sketch" in out
        assert "recent spans" in out

    def test_monitor_sinks(self, capsys, tmp_path):
        import json

        jsonl = tmp_path / "snap.jsonl"
        prom = tmp_path / "metrics.prom"
        code = main(self.ARGS + ["--jsonl", str(jsonl), "--prom", str(prom)])
        assert code == 0
        lines = jsonl.read_text().splitlines()
        assert lines, "expected at least one JSONL snapshot"
        snapshot = json.loads(lines[-1])
        assert snapshot["stats"]["tuples_ingested"] == 1200
        assert "q_cosine" in snapshot["accuracy"]["queries"]
        prom_text = prom.read_text()
        assert "# TYPE repro_ingest_ops_total counter" in prom_text
        assert "repro_accuracy_relative_error_bucket" in prom_text

    def test_monitor_trace_sampling_announced_on_dashboard(self, capsys):
        code = main(
            ["monitor", "--tuples", "60", "--batch", "1", "--domain", "50",
             "--budget", "16", "--refresh-every", "40", "--accuracy-every", "30",
             "--no-clear", "--trace-sample", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-in-4 sampling" in out and "sampled out" in out


class TestServeMetrics:
    ARGS = ["monitor", "--tuples", "300", "--batch", "128", "--domain", "100",
            "--budget", "32", "--refresh-every", "400", "--accuracy-every", "200",
            "--no-clear", "--serve-metrics", "0"]

    def test_monitor_announces_endpoint(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "serving metrics at http://127.0.0.1:" in out
        assert "/metrics" in out

    def test_sharded_monitor_announces_endpoint(self, capsys):
        assert main(self.ARGS + ["--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "serving metrics at http://127.0.0.1:" in out


class TestCheckpointingMonitor:
    ARGS = ["monitor", "--tuples", "600", "--batch", "128", "--domain", "100",
            "--budget", "32", "--refresh-every", "400", "--accuracy-every", "200",
            "--no-clear"]

    def test_monitor_writes_rotated_checkpoints(self, capsys, tmp_path):
        ckpts = tmp_path / "ckpts"
        code = main(self.ARGS + ["--checkpoint-dir", str(ckpts),
                                 "--checkpoint-every", "256",
                                 "--checkpoint-keep", "2"])
        assert code == 0
        assert "wrote checkpoint" in capsys.readouterr().out
        files = sorted(p.name for p in ckpts.iterdir())
        assert len(files) == 2  # rotation enforced --checkpoint-keep
        assert all(name.startswith("checkpoint-") for name in files)

    def test_resume_restores_latest_checkpoint(self, capsys, tmp_path):
        ckpts = tmp_path / "ckpts"
        main(self.ARGS + ["--checkpoint-dir", str(ckpts)])
        capsys.readouterr()
        assert main(["resume", "--checkpoint-dir", str(ckpts)]) == 0
        out = capsys.readouterr().out
        assert "restored checkpoint-" in out
        assert "relation R1" in out and "600 tuples" in out
        assert "query q_cosine" in out and "query q_basic_sketch" in out

    def test_resume_empty_store_fails_cleanly(self, capsys, tmp_path):
        assert main(["resume", "--checkpoint-dir", str(tmp_path / "empty")]) == 2
        assert "no checkpoints found" in capsys.readouterr().err


class TestErrorHandling:
    def test_corrupt_checkpoint_reports_one_line_error(self, capsys, tmp_path):
        ckpts = tmp_path / "ckpts"
        ckpts.mkdir()
        (ckpts / "checkpoint-00000001.ckpt").write_bytes(b"garbage\n\x00")
        assert main(["resume", "--checkpoint-dir", str(ckpts)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unwritable_json_path_reports_error(self, capsys, tmp_path):
        code = main(["run", "fig13", "--trials", "1", "--budgets", "10",
                     "--json", str(tmp_path / "no" / "such" / "dir" / "x.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_bound_sweep(self, capsys):
        assert main(["sweep", "bound", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "bound" in out and "%" in out

    def test_axis_validated_by_parser(self):
        with pytest.raises(SystemExit):
            main(["sweep", "altitude"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServe:
    def test_serve_max_seconds_exits_cleanly(self, capsys):
        code = main(
            ["serve", "--shards", "2", "--executor", "serial",
             "--max-seconds", "0.4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 2-shard fleet" in out
        assert "executor=serial" in out and "policy=raise" in out

    def test_serve_socket_executor_smoke(self, capsys):
        code = main(
            ["serve", "--shards", "2", "--max-seconds", "0.4",
             "--max-restarts", "1"]
        )
        assert code == 0
        assert "executor=socket" in capsys.readouterr().out


class TestDeadlettersCommand:
    @pytest.fixture
    def daemon(self):
        """A live serve daemon with one dead-lettered row."""
        import asyncio
        import threading

        from repro.core.normalization import Domain
        from repro.fleet import FleetServer
        from repro.sharding import ShardedStreamEngine

        fleet = ShardedStreamEngine(num_shards=2, seed=0)
        fleet.create_relation("R1", ["A"], [Domain.of_size(10)])
        fleet.enable_dead_lettering()
        fleet.ingest_batch("R1", [[1], [99]])  # 99 is out of domain

        server = FleetServer(fleet)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
        yield server.address
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
        fleet.close()

    def test_inspect_prints_buffer_accounting(self, capsys, daemon):
        host, port = daemon
        code = main(["deadletters", "--host", host, "--port", str(port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "dead letters: 1 held" in out
        assert "out_of_domain" in out and "[99]" in out

    def test_replay_reports_partial_outcome(self, capsys, daemon):
        host, port = daemon
        code = main(
            ["deadletters", "--host", host, "--port", str(port), "--replay"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the row is still out of domain: attempted but not re-ingested
        assert "replayed 1 dead letters: 0 re-ingested, 1 still dead" in out

    def test_disabled_buffer_reports_error_exit(self, capsys):
        import asyncio
        import threading

        from repro.fleet import FleetServer
        from repro.sharding import ShardedStreamEngine

        fleet = ShardedStreamEngine(num_shards=1, seed=0)  # no dead-lettering
        server = FleetServer(fleet)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
        try:
            host, port = server.address
            code = main(["deadletters", "--host", host, "--port", str(port)])
            assert code == 2
            assert "not enabled" in capsys.readouterr().err
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
            loop.close()
            fleet.close()
