"""Tests for the repro-experiments command line."""

import pytest

from repro.experiments.cli import build_parser, main


class TestList:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 21):
            assert f"fig{i:02d}" in out


class TestRun:
    def test_run_one_figure(self, capsys):
        code = main(["run", "fig13", "--trials", "1", "--budgets", "10,20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "winner" in out

    def test_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_chart_flag(self, capsys):
        main(["run", "fig13", "--trials", "1", "--budgets", "10,20", "--chart"])
        out = capsys.readouterr().out
        assert "relative error vs space" in out

    def test_budget_parsing(self, capsys):
        main(["run", "fig13", "--trials", "1", "--budgets", "15"])
        out = capsys.readouterr().out
        assert "15" in out


class TestSpeed:
    def test_speed_smoke(self, capsys):
        assert main(["speed", "--size", "200"]) == 0
        out = capsys.readouterr().out
        assert "cosine" in out and "sketch" in out


class TestJsonExport:
    def test_json_file_written(self, capsys, tmp_path):
        out = tmp_path / "series.json"
        main(["run", "fig13", "--trials", "1", "--budgets", "10,20",
              "--json", str(out)])
        import json

        payload = json.loads(out.read_text())
        assert payload[0]["name"] == "fig13"
        assert payload[0]["budgets"] == [10, 20]


class TestSweep:
    def test_bound_sweep(self, capsys):
        assert main(["sweep", "bound", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "bound" in out and "%" in out

    def test_axis_validated_by_parser(self):
        with pytest.raises(SystemExit):
            main(["sweep", "altitude"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
