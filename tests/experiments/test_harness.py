"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.experiments.harness import (
    ExperimentConfig,
    chain_slot_pairs,
    exact_chain_join_size,
    run_experiment,
)
from repro.experiments.methods import CosineMethod


def trivial_gen(rng):
    n = 30
    c1 = rng.integers(1, 10, n).astype(float)
    c2 = rng.integers(1, 10, n).astype(float)
    return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]


def config(**kw):
    defaults = dict(
        name="test",
        title="test experiment",
        datagen=trivial_gen,
        budgets=(5, 10, 30),
        trials=3,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class TestChainHelpers:
    def test_chain_slot_pairs(self):
        assert chain_slot_pairs([1, 2, 1]) == [((0, 0), (1, 0)), ((1, 1), (2, 0))]

    def test_exact_chain_join_size(self, rng):
        c1 = rng.integers(0, 5, 10).astype(float)
        c2 = rng.integers(0, 5, 10).astype(float)
        assert exact_chain_join_size([c1, c2]) == pytest.approx(float(c1 @ c2))


class TestRunExperiment:
    def test_series_structure(self, rng):
        result = run_experiment(config(), seed=1)
        assert set(result.series) == {"cosine", "skimmed_sketch", "basic_sketch"}
        for series in result.series.values():
            assert series.budgets == (5, 10, 30)
            for budget in series.budgets:
                assert len(series.errors[budget]) == 3

    def test_full_budget_cosine_error_is_zero(self):
        result = run_experiment(config(), seed=1, methods=[CosineMethod()])
        assert result.mean_error("cosine", 30) == pytest.approx(0.0, abs=1e-9)

    def test_winner_and_ratio(self):
        result = run_experiment(config(), seed=2)
        assert result.winner(30) == "cosine"
        assert result.error_ratio("basic_sketch", "cosine", 5) >= 0.0

    def test_overrides(self):
        result = run_experiment(config(), seed=1, trials=1, budgets=(7,))
        series = result.series["cosine"]
        assert series.budgets == (7,)
        assert len(series.errors[7]) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="trial"):
            run_experiment(config(), trials=0)
        with pytest.raises(ValueError, match="budget"):
            run_experiment(config(), budgets=())

    def test_degenerate_instances_skipped(self):
        calls = {"n": 0}

        def sometimes_empty(rng):
            calls["n"] += 1
            n = 10
            if calls["n"] % 2 == 1:
                # disjoint supports -> empty join, must be skipped
                c1 = np.zeros(n)
                c1[0] = 5
                c2 = np.zeros(n)
                c2[9] = 5
            else:
                c1 = np.full(n, 2.0)
                c2 = np.full(n, 2.0)
            return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]

        result = run_experiment(
            config(datagen=sometimes_empty), seed=1, trials=4, budgets=(5,)
        )
        assert len(result.actual_sizes) == 2

    def test_all_degenerate_raises(self):
        def always_empty(rng):
            n = 4
            c1 = np.array([1.0, 0, 0, 0])
            c2 = np.array([0, 0, 0, 1.0])
            return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]

        with pytest.raises(RuntimeError, match="empty join"):
            run_experiment(config(datagen=always_empty), seed=1)

    def test_reproducible_given_seed(self):
        a = run_experiment(config(), seed=9)
        b = run_experiment(config(), seed=9)
        for m in a.series:
            for budget in a.series[m].budgets:
                assert a.series[m].errors[budget] == b.series[m].errors[budget]

    def test_mean_and_std(self):
        result = run_experiment(config(), seed=4, trials=3, budgets=(5,))
        s = result.series["basic_sketch"]
        assert s.mean(5) == pytest.approx(np.mean(s.errors[5]))
        assert s.std(5) == pytest.approx(np.std(s.errors[5]))
        assert s.means() == [s.mean(5)]
