"""Tests for the section 5.4 speed measurement harness."""

import pytest

from repro.experiments.speed import SpeedReport, measure_speed


class TestMeasureSpeed:
    @pytest.fixture(scope="class")
    def report(self):
        # tiny sizes: this is a smoke test of the harness, not a benchmark
        return measure_speed(
            synopsis_size=200,
            domain_size=2_000,
            update_repeats=20,
            estimate_repeats=3,
        )

    def test_all_timings_positive(self, report):
        assert report.cosine_update_per_tuple > 0
        assert report.cosine_estimate > 0
        assert report.sketch_update_per_tuple > 0
        assert report.sketch_estimate > 0

    def test_per_unit_rates_consistent(self, report):
        assert report.cosine_update_per_coefficient == pytest.approx(
            report.cosine_update_per_tuple / 200
        )
        assert report.sketch_update_per_atom == pytest.approx(
            report.sketch_update_per_tuple / 200
        )

    def test_summary_renders(self, report):
        text = report.summary()
        assert "cosine" in text and "sketch" in text
        assert str(report.synopsis_size) in text

    def test_report_is_frozen(self, report):
        with pytest.raises(Exception):
            report.synopsis_size = 1  # type: ignore[misc]

    def test_report_type(self, report):
        assert isinstance(report, SpeedReport)
