"""Tests for the sensitivity sweep helpers (tiny parameters)."""

from repro.experiments.methods import CosineMethod
from repro.experiments.sweeps import (
    bound_tightness_sweep,
    correlation_sweep,
    domain_size_sweep,
    skew_sweep,
)

TINY = dict(domain_size=200, relation_size=5_000, budget=20, trials=1, seed=1)


class TestSweepStructure:
    def test_skew_sweep_points(self):
        points = skew_sweep(z2_values=(0.0, 1.0), methods=[CosineMethod()], **TINY)
        assert [p.parameter for p in points] == [0.0, 1.0]
        assert all("cosine" in p.errors for p in points)

    def test_correlation_sweep_points(self):
        points = correlation_sweep(
            fractions=(0.0, 0.2), methods=[CosineMethod()], **TINY
        )
        assert [p.parameter for p in points] == [0.0, 0.2]
        assert all(p.errors["cosine"] >= 0 for p in points)

    def test_domain_size_sweep_points(self):
        points = domain_size_sweep(
            domain_sizes=(100, 200),
            coefficient_fraction=0.1,
            relation_size=5_000,
            trials=1,
            seed=1,
            methods=[CosineMethod()],
        )
        assert [p.parameter for p in points] == [100.0, 200.0]

    def test_bound_sweep_guarantee_holds(self):
        points = bound_tightness_sweep(
            budgets=(10, 50), domain_size=200, relation_size=5_000, trials=2, seed=1
        )
        for p in points:
            assert p.measured <= p.bound + 1e-9
        assert points[0].bound >= points[1].bound  # bound shrinks with budget

    def test_zero_skew_point_is_near_exact(self):
        # z2 = 0 makes R2 uniform -> cosine nearly exact with any budget
        points = skew_sweep(z2_values=(0.0,), methods=[CosineMethod()], **TINY)
        assert points[0].errors["cosine"] < 0.05
