"""Tests for the text report rendering."""

import pytest

from repro.core.normalization import Domain
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.report import (
    ascii_chart,
    format_comparison_summary,
    format_result,
    result_to_dict,
)


@pytest.fixture(scope="module")
def result():
    def gen(rng):
        n = 20
        c1 = rng.integers(1, 10, n).astype(float)
        c2 = rng.integers(1, 10, n).astype(float)
        return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]

    config = ExperimentConfig(
        name="figXX",
        title="demo",
        datagen=gen,
        budgets=(5, 20),
        trials=2,
        expectation="cosine should reach zero error at full budget",
    )
    return run_experiment(config, seed=3)


class TestFormatResult:
    def test_contains_header_and_rows(self, result):
        text = format_result(result)
        assert "figXX: demo" in text
        assert "paper expectation" in text
        assert "cosine err%" in text
        # one row per budget
        assert text.count("\n") >= 5

    def test_ratio_columns_present(self, result):
        text = format_result(result)
        assert "basic_sketch/cosine" in text
        assert "skimmed_sketch/cosine" in text

    def test_reference_can_change(self, result):
        text = format_result(result, reference="basic_sketch")
        assert "cosine/basic_sketch" in text


class TestSummary:
    def test_one_liner(self, result):
        line = format_comparison_summary(result)
        assert line.startswith("figXX: winner at space 20 is ")
        assert "x cosine's" in line


class TestAsciiChart:
    def test_renders_every_method_mark(self, result):
        chart = ascii_chart(result)
        assert "1=cosine" in chart
        assert "2=skimmed_sketch" in chart
        assert "3=basic_sketch" in chart
        assert "1" in chart.splitlines()[3] or any(
            "1" in line for line in chart.splitlines()[1:-3]
        )

    def test_dimensions(self, result):
        chart = ascii_chart(result, width=40, height=8)
        body = [line for line in chart.splitlines() if "|" in line]
        assert len(body) == 8
        assert all(len(line.split("|")[1]) == 40 for line in body)

    def test_linear_scale(self, result):
        chart = ascii_chart(result, log_scale=False)
        assert "relative error vs space" in chart

    def test_needs_two_budgets(self, result):
        import copy

        single = copy.deepcopy(result)
        for series in single.series.values():
            series.budgets = series.budgets[:1]
        with pytest.raises(ValueError, match="two budgets"):
            ascii_chart(single)


class TestResultToDict:
    def test_json_roundtrip(self, result):
        import json

        payload = result_to_dict(result)
        text = json.dumps(payload)  # must be JSON-serializable
        restored = json.loads(text)
        assert restored["name"] == "figXX"
        assert restored["budgets"] == [5, 20]
        assert set(restored["series"]) == {
            "cosine", "skimmed_sketch", "basic_sketch"
        }
        for errors in restored["series"]["cosine"].values():
            assert len(errors) == 2  # trials

    def test_values_match_series(self, result):
        payload = result_to_dict(result)
        assert payload["series"]["cosine"]["20"] == [
            float(e) for e in result.series["cosine"].errors[20]
        ]
