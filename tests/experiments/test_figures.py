"""Tests for the figure configurations (structure; shapes are in benches)."""

import numpy as np
import pytest

from repro.experiments.figures import FIGURES, FigureScales, make_figures
from repro.experiments.harness import exact_chain_join_size


class TestCatalogue:
    def test_all_twenty_figures_present(self):
        assert sorted(FIGURES) == [f"fig{i:02d}" for i in range(1, 21)]

    def test_names_match_keys(self):
        for key, config in FIGURES.items():
            assert config.name == key

    def test_every_figure_has_expectation_and_title(self):
        for config in FIGURES.values():
            assert config.title
            assert config.expectation

    def test_budgets_are_increasing(self):
        for config in FIGURES.values():
            budgets = config.budgets
            assert all(b1 < b2 for b1, b2 in zip(budgets, budgets[1:]))


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
class TestDataGenerators:
    def test_generates_valid_chain(self, figure_id):
        config = FIGURES[figure_id]
        rng = np.random.default_rng(0)
        relations, domains = config.datagen(rng)
        assert len(relations) == len(domains) >= 2
        for tensor, doms in zip(relations, domains):
            tensor = np.asarray(tensor)
            assert tensor.ndim == len(doms)
            assert tensor.min() >= 0
            assert tensor.shape == tuple(d.size for d in doms)
        # chain domains line up
        for i in range(len(relations) - 1):
            assert domains[i][-1].size == domains[i + 1][0].size
        # the join must be non-empty for relative errors to exist
        assert exact_chain_join_size(relations) > 0


class TestFigureShapes:
    def test_single_join_figures_have_two_relations(self):
        for fid in ("fig01", "fig07", "fig13", "fig15", "fig17", "fig18"):
            relations, _ = FIGURES[fid].datagen(np.random.default_rng(1))
            assert len(relations) == 2

    def test_two_join_figures_have_three_relations(self):
        for fid in ("fig09", "fig14", "fig16", "fig19", "fig20"):
            relations, _ = FIGURES[fid].datagen(np.random.default_rng(1))
            assert [np.asarray(r).ndim for r in relations] == [1, 2, 1]

    def test_three_join_figures_have_four_relations(self):
        for fid in ("fig11", "fig12"):
            relations, _ = FIGURES[fid].datagen(np.random.default_rng(1))
            assert [np.asarray(r).ndim for r in relations] == [1, 2, 2, 1]


class TestFigureScales:
    def test_default_catalogue_matches_module_figures(self):
        rebuilt = make_figures(FigureScales())
        assert sorted(rebuilt) == sorted(FIGURES)
        for key in rebuilt:
            assert rebuilt[key].budgets == FIGURES[key].budgets

    def test_paper_scales_are_larger(self):
        paper = FigureScales.paper()
        default = FigureScales()
        assert paper.type1_domain > default.type1_domain
        assert paper.type1_size > default.type1_size
        assert paper.trials == 200

    def test_custom_scales_flow_into_datagens(self):
        tiny = FigureScales(
            trials=2,
            type1_domain=100,
            type1_size=1_000,
            type1_budgets=(5, 10),
            cluster_size=500,
            cluster_1j_domain=64,
            cluster_2j_domain=32,
            cluster_3j_domain=32,
            cps_scale=0.05,
            sipp_scale=0.02,
            traffic_scale=0.05,
            traffic_single_scale=0.05,
            udp_scale=0.02,
        )
        figures = make_figures(tiny)
        relations, domains = figures["fig01"].datagen(np.random.default_rng(0))
        assert domains[0][0].size == 100
        assert int(np.asarray(relations[0]).sum()) == 1_000
        assert figures["fig01"].trials == 2
        relations, domains = figures["fig09"].datagen(np.random.default_rng(0))
        assert domains[1][0].size == 32

    def test_paper_catalogue_builds(self):
        # only the configuration objects; running them is hours of compute
        figures = make_figures(FigureScales.paper(trials=1))
        assert figures["fig01"].budgets[-1] == 1000
        assert figures["fig01"].trials == 1
