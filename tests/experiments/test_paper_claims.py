"""Tests for the structured paper-claim table."""

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.paper_claims import (
    PAPER_CLAIMS,
    claims_for,
    nearest_budget,
    paper_winner,
)


class TestClaimTable:
    def test_claims_reference_real_figures(self):
        for claim in PAPER_CLAIMS:
            assert claim.figure in FIGURES

    def test_errors_are_fractions(self):
        for claim in PAPER_CLAIMS:
            assert 0 < claim.relative_error < 10  # 837% is the paper's max

    def test_methods_are_known(self):
        for claim in PAPER_CLAIMS:
            assert claim.method in ("cosine", "skimmed_sketch", "basic_sketch")

    def test_space_fractions_sane(self):
        for claim in PAPER_CLAIMS:
            assert 0 < claim.space_fraction <= 1

    def test_claims_for(self):
        fig03 = claims_for("fig03")
        assert len(fig03) == 3
        assert {c.method for c in fig03} == {
            "cosine", "skimmed_sketch", "basic_sketch"
        }
        assert claims_for("fig99") == []


class TestDerivedFacts:
    def test_cosine_wins_every_fully_quoted_point_except_none(self):
        # Everywhere the paper quotes all three methods, cosine is quoted
        # lowest — the textual claims all favour the cosine method.
        figures_spaces = {(c.figure, c.space) for c in PAPER_CLAIMS}
        for figure, space in figures_spaces:
            triple = [
                c for c in PAPER_CLAIMS if c.figure == figure and c.space == space
            ]
            if len(triple) == 3:
                assert paper_winner(figure, space) == "cosine"

    def test_paper_winner_unquoted_point(self):
        assert paper_winner("fig03", 123) is None

    def test_nearest_budget_matches_by_fraction(self):
        claim = claims_for("fig03")[0]  # 500 of 100000 = 0.5%
        budgets = FIGURES["fig03"].budgets
        # 0.5% of our 5000-value domain = 25 -> the smallest budget
        assert nearest_budget(claim, budgets, 5_000) == 25

    def test_quoted_ratios_match_the_prose(self):
        # The text says fig03's sketch errors are 24.4x / 49.8x cosine's
        # at 500 coefficients (9.98% vs 92.40% / 333.09%); the structured
        # table must reproduce those ratios by division.
        by_method = {c.method: c.relative_error for c in claims_for("fig03")}
        assert by_method["skimmed_sketch"] / by_method["cosine"] == pytest.approx(
            9.26, abs=0.1
        )
        assert by_method["basic_sketch"] / by_method["cosine"] == pytest.approx(
            33.4, abs=0.2
        )
