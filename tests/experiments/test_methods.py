"""Tests for the experiment method adapters."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.experiments.methods import (
    BasicSketchMethod,
    CosineMethod,
    HistogramMethod,
    SamplingMethod,
    SkimmedSketchMethod,
    WaveletMethod,
    default_methods,
    extended_methods,
)


def single_join_data(rng, n=100):
    c1 = rng.integers(0, 20, n).astype(float)
    c2 = rng.integers(0, 20, n).astype(float)
    return [c1, c2], [[Domain.of_size(n)], [Domain.of_size(n)]]


def chain_data(rng, n=40):
    t1 = rng.integers(0, 6, n).astype(float)
    t2 = rng.integers(0, 3, (n, n)).astype(float)
    t3 = rng.integers(0, 6, n).astype(float)
    doms = [[Domain.of_size(n)], [Domain.of_size(n)] * 2, [Domain.of_size(n)]]
    return [t1, t2, t3], doms


class TestChainValidation:
    @pytest.mark.parametrize(
        "method", [CosineMethod(), BasicSketchMethod(), SamplingMethod()]
    )
    def test_single_relation_rejected(self, method, rng):
        rels, doms = single_join_data(rng)
        with pytest.raises(ValueError, match="at least two"):
            method.prepare(rels[:1], doms[:1], 50, rng)

    def test_mismatched_domains_rejected(self, rng):
        rels, _ = single_join_data(rng)
        doms = [[Domain.of_size(100)], [Domain.of_size(99)]]
        with pytest.raises(ValueError, match="differ"):
            CosineMethod().prepare(rels, doms, 50, rng)

    def test_arity_mismatch_rejected(self, rng):
        rels, doms = single_join_data(rng)
        doms = [[Domain.of_size(100)] * 2, [Domain.of_size(100)]]
        with pytest.raises(ValueError, match="arity"):
            CosineMethod().prepare(rels, doms, 50, rng)


class TestCosineMethod:
    def test_estimates_at_multiple_budgets(self, rng):
        rels, doms = single_join_data(rng)
        prepared = CosineMethod().prepare(rels, doms, 100, rng)
        actual = float(rels[0] @ rels[1])
        full = prepared.estimate(100)
        assert full == pytest.approx(actual, rel=1e-9)
        small = prepared.estimate(5)
        assert small != full

    def test_budget_sweep_matches_fresh_builds(self, rng):
        rels, doms = chain_data(rng)
        prepared = CosineMethod().prepare(rels, doms, 200, rng)
        for budget in (10, 50, 200):
            fresh = CosineMethod().prepare(rels, doms, budget, rng)
            assert prepared.estimate(budget) == pytest.approx(
                fresh.estimate(budget), rel=1e-9
            )

    def test_endpoint_grid_variant(self, rng):
        rels, doms = single_join_data(rng)
        prepared = CosineMethod(grid="endpoint").prepare(rels, doms, 50, rng)
        assert np.isfinite(prepared.estimate(50))


class TestSketchMethods:
    def test_budget_sweep_is_prefix_consistent(self, rng):
        # slicing a prepared sketch must equal building at that budget with
        # the same family seeds
        rels, doms = single_join_data(rng)
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        prepared = BasicSketchMethod().prepare(rels, doms, 200, rng_a)
        fresh = BasicSketchMethod().prepare(rels, doms, 100, rng_b)
        assert prepared.estimate(100) == pytest.approx(fresh.estimate(100))

    def test_skimmed_on_chain(self, rng):
        rels, doms = chain_data(rng)
        prepared = SkimmedSketchMethod().prepare(rels, doms, 150, rng)
        assert np.isfinite(prepared.estimate(150))

    def test_basic_reasonable_on_single_join(self, rng):
        rels, doms = single_join_data(rng, n=50)
        actual = float(rels[0] @ rels[1])
        prepared = BasicSketchMethod().prepare(rels, doms, 400, rng)
        assert prepared.estimate(400) == pytest.approx(actual, rel=0.5)


class TestSamplingMethod:
    def test_full_budget_is_exact(self, rng):
        rels, doms = single_join_data(rng, n=30)
        total = int(rels[0].sum())
        prepared = SamplingMethod().prepare(rels, doms, total, rng)
        actual = float(rels[0] @ rels[1])
        assert prepared.estimate(max(total, int(rels[1].sum()))) == pytest.approx(
            actual, rel=1e-9
        )

    def test_estimates_cached_per_budget(self, rng):
        rels, doms = single_join_data(rng)
        prepared = SamplingMethod().prepare(rels, doms, 100, rng)
        assert prepared.estimate(50) == prepared.estimate(50)

    def test_chain_supported(self, rng):
        rels, doms = chain_data(rng)
        prepared = SamplingMethod().prepare(rels, doms, 500, rng)
        assert np.isfinite(prepared.estimate(500))


class TestHistogramMethod:
    def test_single_join_only(self, rng):
        rels, doms = chain_data(rng)
        with pytest.raises(ValueError, match="single joins"):
            HistogramMethod().prepare(rels, doms, 10, rng)

    def test_exact_at_full_buckets(self, rng):
        rels, doms = single_join_data(rng, n=30)
        prepared = HistogramMethod().prepare(rels, doms, 30, rng)
        assert prepared.estimate(30) == pytest.approx(float(rels[0] @ rels[1]))


class TestWaveletMethod:
    def test_single_join_only(self, rng):
        rels, doms = chain_data(rng)
        with pytest.raises(ValueError, match="single joins"):
            WaveletMethod().prepare(rels, doms, 10, rng)

    def test_exact_at_full_budget(self, rng):
        rels, doms = single_join_data(rng, n=64)
        prepared = WaveletMethod().prepare(rels, doms, 64, rng)
        assert prepared.estimate(64) == pytest.approx(
            float(rels[0] @ rels[1]), rel=1e-9
        )

    def test_budget_sweep(self, rng):
        rels, doms = single_join_data(rng, n=64)
        prepared = WaveletMethod().prepare(rels, doms, 64, rng)
        assert np.isfinite(prepared.estimate(8))


class TestMethodFactories:
    def test_default_cast(self):
        names = [m.name for m in default_methods()]
        assert names == ["cosine", "skimmed_sketch", "basic_sketch"]

    def test_extended_cast_adds_sampling(self):
        names = [m.name for m in extended_methods()]
        assert "sample" in names
