"""Tests for the equi-width histogram baseline."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.histograms.equiwidth import (
    EquiWidthHistogram,
    estimate_join_size,
    estimate_self_join_size,
)


class TestConstruction:
    def test_bucket_count_clamped_to_domain(self):
        h = EquiWidthHistogram(Domain.of_size(5), 20)
        assert h.num_buckets == 5

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram(Domain.of_size(5), 0)

    def test_widths_cover_domain(self):
        h = EquiWidthHistogram(Domain.of_size(103), 10)
        assert h.widths.sum() == 103
        assert h.widths.min() >= 1
        assert h.widths.max() - h.widths.min() <= 1

    def test_bucket_of_boundaries(self):
        h = EquiWidthHistogram(Domain.of_size(10), 3)
        buckets = [h.bucket_of(i) for i in range(10)]
        assert buckets == sorted(buckets)
        assert buckets[0] == 0 and buckets[-1] == h.num_buckets - 1

    def test_bucket_of_out_of_range(self):
        h = EquiWidthHistogram(Domain.of_size(10), 3)
        with pytest.raises(ValueError):
            h.bucket_of(10)


class TestMaintenance:
    def test_update_and_delete(self):
        h = EquiWidthHistogram(Domain.integer_range(10, 19), 5)
        h.update(10)
        h.update(19)
        h.update(10, weight=-1)
        assert h.count == 1
        assert h.counts.sum() == 1

    def test_update_batch_matches_loop(self, rng):
        d = Domain.of_size(50)
        values = rng.integers(0, 50, 200)
        a = EquiWidthHistogram(d, 7)
        a.update_batch(values)
        b = EquiWidthHistogram(d, 7)
        for v in values:
            b.update(int(v))
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_from_counts_matches_stream(self, rng):
        d = Domain.of_size(40)
        values = rng.integers(0, 40, 300)
        streamed = EquiWidthHistogram(d, 8)
        streamed.update_batch(values)
        batch = EquiWidthHistogram.from_counts(d, np.bincount(values, minlength=40), 8)
        np.testing.assert_array_equal(streamed.counts, batch.counts)
        assert streamed.count == batch.count

    def test_from_counts_shape_checked(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram.from_counts(Domain.of_size(5), np.ones(6), 2)


class TestEstimation:
    def test_exact_when_buckets_equal_domain(self, rng):
        d = Domain.of_size(30)
        c1 = rng.integers(0, 9, 30)
        c2 = rng.integers(0, 9, 30)
        h1 = EquiWidthHistogram.from_counts(d, c1, 30)
        h2 = EquiWidthHistogram.from_counts(d, c2, 30)
        assert estimate_join_size(h1, h2) == pytest.approx(float(c1 @ c2))

    def test_exact_on_uniform_within_bucket_data(self):
        d = Domain.of_size(20)
        c1 = np.repeat([4.0, 8.0], 10)
        c2 = np.repeat([2.0, 6.0], 10)
        h1 = EquiWidthHistogram.from_counts(d, c1, 2)
        h2 = EquiWidthHistogram.from_counts(d, c2, 2)
        assert estimate_join_size(h1, h2) == pytest.approx(float(c1 @ c2))

    def test_self_join_estimate(self):
        d = Domain.of_size(10)
        c = np.full(10, 3.0)
        h = EquiWidthHistogram.from_counts(d, c, 2)
        assert estimate_self_join_size(h) == pytest.approx(float(c @ c))

    def test_mismatched_histograms_rejected(self):
        h1 = EquiWidthHistogram(Domain.of_size(10), 2)
        h2 = EquiWidthHistogram(Domain.of_size(10), 5)
        with pytest.raises(ValueError, match="share"):
            estimate_join_size(h1, h2)

    def test_skew_within_bucket_causes_error(self):
        # The uniformity assumption fails on skewed buckets; the estimate
        # should underestimate a perfectly aligned spiky join.
        d = Domain.of_size(100)
        c = np.zeros(100)
        c[0] = 1000.0
        h1 = EquiWidthHistogram.from_counts(d, c, 10)
        h2 = EquiWidthHistogram.from_counts(d, c, 10)
        actual = float(c @ c)
        assert estimate_join_size(h1, h2) < actual * 0.2
