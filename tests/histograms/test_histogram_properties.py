"""Hypothesis property tests on the equi-width histogram baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.histograms.equiwidth import (
    EquiWidthHistogram,
    estimate_join_size,
    estimate_self_join_size,
)


@st.composite
def histogram_case(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    buckets = draw(st.integers(min_value=1, max_value=n))
    counts = np.array(
        draw(st.lists(st.integers(0, 15), min_size=n, max_size=n)), dtype=float
    )
    return n, buckets, counts


class TestBucketInvariants:
    @settings(max_examples=40, deadline=None)
    @given(case=histogram_case())
    def test_total_mass_preserved(self, case):
        n, buckets, counts = case
        hist = EquiWidthHistogram.from_counts(Domain.of_size(n), counts, buckets)
        assert hist.counts.sum() == pytest.approx(counts.sum())
        assert hist.count == int(counts.sum())

    @settings(max_examples=40, deadline=None)
    @given(case=histogram_case())
    def test_widths_partition_domain(self, case):
        n, buckets, _ = case
        hist = EquiWidthHistogram(Domain.of_size(n), buckets)
        assert hist.widths.sum() == n
        assert hist.widths.min() >= 1

    @settings(max_examples=40, deadline=None)
    @given(case=histogram_case(), seed=st.integers(0, 2**31 - 1))
    def test_linearity_of_counters(self, case, seed):
        n, buckets, counts = case
        other = np.random.default_rng(seed).integers(0, 15, n).astype(float)
        d = Domain.of_size(n)
        merged = EquiWidthHistogram.from_counts(d, counts + other, buckets)
        a = EquiWidthHistogram.from_counts(d, counts, buckets)
        b = EquiWidthHistogram.from_counts(d, other, buckets)
        np.testing.assert_allclose(merged.counts, a.counts + b.counts)


class TestEstimatorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(case=histogram_case(), seed=st.integers(0, 2**31 - 1))
    def test_join_symmetry(self, case, seed):
        n, buckets, counts = case
        other = np.random.default_rng(seed).integers(0, 15, n).astype(float)
        d = Domain.of_size(n)
        a = EquiWidthHistogram.from_counts(d, counts, buckets)
        b = EquiWidthHistogram.from_counts(d, other, buckets)
        assert estimate_join_size(a, b) == pytest.approx(estimate_join_size(b, a))

    @settings(max_examples=30, deadline=None)
    @given(case=histogram_case())
    def test_self_join_lower_bounds_truth(self, case):
        # Cauchy-Schwarz within each bucket: the uniform-within-bucket
        # estimate never exceeds the true second moment.
        n, buckets, counts = case
        hist = EquiWidthHistogram.from_counts(Domain.of_size(n), counts, buckets)
        assert estimate_self_join_size(hist) <= float(counts @ counts) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(case=histogram_case())
    def test_full_buckets_exact(self, case):
        n, _, counts = case
        hist = EquiWidthHistogram.from_counts(Domain.of_size(n), counts, n)
        assert estimate_self_join_size(hist) == pytest.approx(float(counts @ counts))
