"""Tests for the CosineSynopsis: construction, maintenance, combination."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis, synopses_for_budget
from repro.core.triangular import triangular_count


def random_counts(rng, *shape):
    return rng.integers(0, 25, size=shape).astype(float)


class TestConstruction:
    def test_requires_exactly_one_of_order_or_budget(self):
        d = Domain.of_size(10)
        with pytest.raises(ValueError, match="exactly one"):
            CosineSynopsis(d)
        with pytest.raises(ValueError, match="exactly one"):
            CosineSynopsis(d, order=3, budget=10)

    def test_budget_resolves_to_maximal_order(self):
        syn = CosineSynopsis([Domain.of_size(100)] * 2, budget=15)
        assert syn.order == 5
        assert syn.num_coefficients == triangular_count(5, 2)

    def test_order_clamped_to_domain_size(self):
        syn = CosineSynopsis(Domain.of_size(6), order=50)
        assert syn.order == 6

    def test_full_truncation_count(self):
        syn = CosineSynopsis([Domain.of_size(30)] * 2, order=4, truncation="full")
        assert syn.num_coefficients == 16

    def test_unknown_truncation_rejected(self):
        with pytest.raises(ValueError, match="unknown truncation"):
            CosineSynopsis(Domain.of_size(5), order=2, truncation="spherical")

    def test_empty_synopsis_has_no_coefficients(self):
        syn = CosineSynopsis(Domain.of_size(5), order=2)
        with pytest.raises(ValueError, match="empty"):
            _ = syn.coefficients

    def test_single_domain_shorthand(self):
        syn = CosineSynopsis(Domain.of_size(9), order=3)
        assert syn.ndim == 1


class TestIncrementalMaintenance:
    def test_incremental_equals_batch_equals_closed_form(self, rng):
        # The section 3.2 claim: Eq. 3.4 single-tuple updates, batch
        # updates, and the Eq. 3.3 closed form all agree exactly.
        d = Domain.of_size(40)
        rows = rng.integers(0, 40, size=(300, 1))
        one_by_one = CosineSynopsis(d, order=12)
        for row in rows:
            one_by_one.insert(row)
        batch = CosineSynopsis(d, order=12)
        batch.insert_batch(rows)
        closed = CosineSynopsis.from_counts(
            d, np.bincount(rows[:, 0], minlength=40), order=12
        )
        np.testing.assert_allclose(one_by_one.coefficients, batch.coefficients, atol=1e-12)
        np.testing.assert_allclose(batch.coefficients, closed.coefficients, atol=1e-12)

    def test_count_tracks_insertions_and_deletions(self):
        syn = CosineSynopsis(Domain.of_size(5), order=3)
        syn.insert((2,))
        syn.insert((3,))
        syn.delete((2,))
        assert syn.count == 1

    def test_delete_inverts_insert(self, rng):
        d = Domain.of_size(30)
        base_rows = rng.integers(0, 30, size=(100, 1))
        extra_rows = rng.integers(0, 30, size=(40, 1))
        syn = CosineSynopsis(d, order=10)
        syn.insert_batch(base_rows)
        reference = syn.coefficients.copy()
        syn.insert_batch(extra_rows)
        syn.delete_batch(extra_rows)
        np.testing.assert_allclose(syn.coefficients, reference, atol=1e-12)

    def test_delete_below_zero_rejected(self):
        syn = CosineSynopsis(Domain.of_size(5), order=2)
        syn.insert((1,))
        with pytest.raises(ValueError, match="more tuples"):
            syn.delete_batch(np.array([[1], [2]]))

    def test_multidimensional_updates(self, rng):
        doms = [Domain.of_size(12), Domain.of_size(8)]
        rows = np.stack(
            [rng.integers(0, 12, size=150), rng.integers(0, 8, size=150)], axis=1
        )
        streamed = CosineSynopsis(doms, order=5)
        streamed.insert_batch(rows)
        counts = np.zeros((12, 8))
        np.add.at(counts, (rows[:, 0], rows[:, 1]), 1)
        closed = CosineSynopsis.from_counts(doms, counts, order=5)
        np.testing.assert_allclose(streamed.coefficients, closed.coefficients, atol=1e-12)

    def test_raw_values_with_offset_domain(self):
        d = Domain.integer_range(100, 109)
        syn = CosineSynopsis(d, order=4)
        syn.insert((105,))
        assert syn.count == 1
        with pytest.raises(ValueError, match="outside"):
            syn.insert((99,))

    def test_wrong_arity_rejected(self):
        syn = CosineSynopsis([Domain.of_size(4)] * 2, order=2)
        with pytest.raises(ValueError, match="attributes"):
            syn.insert((1, 2, 3))

    def test_empty_batch_is_noop(self):
        syn = CosineSynopsis(Domain.of_size(5), order=2)
        syn.insert_batch(np.empty((0, 1)))
        assert syn.count == 0

    def test_a0_is_one_after_any_updates(self, rng):
        syn = CosineSynopsis(Domain.of_size(20), order=6)
        syn.insert_batch(rng.integers(0, 20, size=(50, 1)))
        assert syn.coefficients[0] == pytest.approx(1.0)


class TestFromCounts:
    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            CosineSynopsis.from_counts(Domain.of_size(5), np.zeros(6), order=2)

    def test_categorical_domain(self):
        d = Domain.categorical(["a", "b", "c"])
        syn = CosineSynopsis.from_counts(d, np.array([3.0, 2.0, 1.0]), order=3)
        assert syn.count == 6
        syn.insert(("a",))
        assert syn.count == 7


class TestMergeAndTruncate:
    def test_merge_equals_union_stream(self, rng):
        d = Domain.of_size(25)
        r1 = rng.integers(0, 25, size=(80, 1))
        r2 = rng.integers(0, 25, size=(60, 1))
        a = CosineSynopsis(d, order=8)
        a.insert_batch(r1)
        b = CosineSynopsis(d, order=8)
        b.insert_batch(r2)
        union = CosineSynopsis(d, order=8)
        union.insert_batch(np.concatenate([r1, r2]))
        merged = a + b
        np.testing.assert_allclose(merged.coefficients, union.coefficients, atol=1e-12)
        assert merged.count == 140

    def test_merge_incompatible_rejected(self):
        a = CosineSynopsis(Domain.of_size(5), order=2)
        b = CosineSynopsis(Domain.of_size(6), order=2)
        with pytest.raises(ValueError, match="incompatible"):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge("not a synopsis")  # type: ignore[arg-type]

    def test_truncated_matches_fresh_build(self, rng):
        doms = [Domain.of_size(20)] * 2
        counts = random_counts(rng, 20, 20)
        big = CosineSynopsis.from_counts(doms, counts, order=10)
        small = big.truncated(order=4)
        fresh = CosineSynopsis.from_counts(doms, counts, order=4)
        np.testing.assert_allclose(small.coefficients, fresh.coefficients, atol=1e-12)
        assert small.count == big.count

    def test_truncated_by_budget(self, rng):
        big = CosineSynopsis.from_counts(
            Domain.of_size(50), random_counts(rng, 50), order=40
        )
        small = big.truncated(budget=10)
        assert small.num_coefficients == 10

    def test_truncated_cannot_grow(self, rng):
        syn = CosineSynopsis.from_counts(
            Domain.of_size(20), random_counts(rng, 20), order=5
        )
        with pytest.raises(ValueError, match="grow"):
            syn.truncated(order=10)


class TestDenseTensorAndReconstruction:
    def test_dense_tensor_places_coefficients(self, rng):
        doms = [Domain.of_size(10)] * 2
        syn = CosineSynopsis.from_counts(doms, random_counts(rng, 10, 10), order=4)
        dense = syn.dense_tensor()
        assert dense.shape == (4, 4)
        assert dense[0, 0] == pytest.approx(1.0)
        assert dense[3, 3] == 0.0  # truncated away (3 + 3 > order - 1)

    def test_reconstruct_counts_exact_at_full_order(self, rng):
        d = Domain.of_size(16)
        counts = random_counts(rng, 16)
        syn = CosineSynopsis.from_counts(d, counts, order=16)
        np.testing.assert_allclose(syn.reconstruct_counts(), counts, atol=1e-8)

    def test_reconstruct_counts_2d_exact_at_full_order(self, rng):
        doms = [Domain.of_size(8), Domain.of_size(8)]
        counts = random_counts(rng, 8, 8)
        syn = CosineSynopsis.from_counts(doms, counts, order=8, truncation="full")
        np.testing.assert_allclose(syn.reconstruct_counts(), counts, atol=1e-8)


class TestSerialization:
    def test_roundtrip(self, rng):
        doms = [Domain.integer_range(5, 24), Domain.of_size(10)]
        syn = CosineSynopsis.from_counts(doms, random_counts(rng, 20, 10), budget=30)
        clone = CosineSynopsis.from_dict(syn.to_dict())
        np.testing.assert_allclose(clone.coefficients, syn.coefficients)
        assert clone.count == syn.count
        assert clone.domains == syn.domains

    def test_roundtrip_categorical(self):
        d = Domain.categorical(["x", "y"])
        syn = CosineSynopsis.from_counts(d, np.array([1.0, 2.0]), order=2)
        clone = CosineSynopsis.from_dict(syn.to_dict())
        assert clone.domains[0].is_categorical

    def test_corrupted_payload_rejected(self, rng):
        syn = CosineSynopsis.from_counts(
            Domain.of_size(10), random_counts(rng, 10), order=5
        )
        payload = syn.to_dict()
        payload["sums"] = payload["sums"][:-1]
        with pytest.raises(ValueError, match="does not match"):
            CosineSynopsis.from_dict(payload)


class TestHelpers:
    def test_synopses_for_budget(self):
        synopses = synopses_for_budget(
            [Domain.of_size(50), [Domain.of_size(50)] * 2], budget=10
        )
        assert [s.ndim for s in synopses] == [1, 2]
        assert all(s.num_coefficients <= 10 for s in synopses)
