"""Tests for join size estimation from cosine synopses (section 4.2)."""

import numpy as np
import pytest

from repro.core.join import (
    JoinPredicate,
    choose_budget,
    estimate_chain_join_size,
    estimate_join_size,
    estimate_join_size_by_group,
    estimate_multijoin_size,
    estimate_self_join_size,
)
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.streams.exact import exact_multijoin_size, exact_self_join_size


def syn(counts, order=None, **kw):
    counts = np.asarray(counts, dtype=float)
    doms = [Domain.of_size(s) for s in counts.shape]
    return CosineSynopsis.from_counts(
        doms, counts, order=order or max(counts.shape), **kw
    )


class TestSingleJoin:
    def test_exact_with_full_coefficients(self, rng):
        c1 = rng.integers(0, 20, 30).astype(float)
        c2 = rng.integers(0, 20, 30).astype(float)
        est = estimate_join_size(syn(c1), syn(c2))
        assert est == pytest.approx(float(c1 @ c2), rel=1e-9)

    def test_uniform_distributions_need_one_coefficient(self):
        # Section 4.3.1: a0 alone gives a zero-error estimate on uniform data.
        c = np.full(50, 7.0)
        a = syn(c, order=1)
        b = syn(c, order=1)
        est = estimate_join_size(a, b)
        assert est == pytest.approx(float(c @ c), rel=1e-9)

    def test_different_orders_use_common_prefix(self, rng):
        c1 = rng.integers(0, 20, 40).astype(float)
        c2 = rng.integers(0, 20, 40).astype(float)
        small = estimate_join_size(syn(c1, order=5), syn(c2, order=9))
        symmetric = estimate_join_size(syn(c1, order=5), syn(c2, order=5))
        assert small == pytest.approx(symmetric, rel=1e-9)

    def test_mismatched_domains_rejected(self, rng):
        a = syn(rng.integers(0, 5, 10).astype(float))
        b = syn(rng.integers(0, 5, 11).astype(float))
        with pytest.raises(ValueError, match="unified domain"):
            estimate_join_size(a, b)

    def test_mismatched_grids_rejected(self, rng):
        c = rng.integers(0, 5, 10).astype(float)
        a = syn(c)
        b = CosineSynopsis.from_counts(Domain.of_size(10), c, order=10, grid="endpoint")
        with pytest.raises(ValueError, match="grids"):
            estimate_join_size(a, b)

    def test_multiattribute_synopsis_rejected(self, rng):
        two_d = syn(rng.integers(0, 5, (6, 6)).astype(float))
        one_d = syn(rng.integers(0, 5, 6).astype(float))
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_join_size(two_d, one_d)

    def test_truncation_error_shrinks_with_order(self, rng):
        # On smooth data the estimate improves monotonically-ish with m;
        # check the bracketing property at three orders.
        n = 200
        x = np.arange(n)
        c1 = (np.exp(-((x - 80) / 30.0) ** 2) * 1000 + 5).astype(float)
        c2 = (np.exp(-((x - 100) / 40.0) ** 2) * 1000 + 5).astype(float)
        actual = float(c1 @ c2)
        errors = [
            abs(estimate_join_size(syn(c1, order=m), syn(c2, order=m)) - actual)
            for m in (4, 16, 64)
        ]
        assert errors[2] < errors[0]
        assert errors[2] < actual * 0.01


class TestSelfJoin:
    def test_self_join_exact_with_full_coefficients(self, rng):
        c = rng.integers(0, 20, 25).astype(float)
        est = estimate_self_join_size(syn(c))
        assert est == pytest.approx(exact_self_join_size(c), rel=1e-9)

    def test_self_join_requires_one_dimension(self, rng):
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_self_join_size(syn(rng.integers(0, 5, (4, 4)).astype(float)))


class TestMultiJoin:
    def test_two_join_chain_exact_at_full_order(self, rng):
        n = 15
        t1 = rng.integers(0, 6, n).astype(float)
        t2 = rng.integers(0, 3, (n, n)).astype(float)
        t3 = rng.integers(0, 6, n).astype(float)
        synopses = [syn(t1), syn(t2, truncation="full"), syn(t3)]
        est = estimate_chain_join_size(synopses)
        act = exact_multijoin_size([t1, t2, t3], [((0, 0), (1, 0)), ((1, 1), (2, 0))])
        assert est == pytest.approx(act, rel=1e-9)

    def test_three_join_chain_exact_at_full_order(self, rng):
        n = 8
        t1 = rng.integers(0, 4, n).astype(float)
        t2 = rng.integers(0, 3, (n, n)).astype(float)
        t3 = rng.integers(0, 3, (n, n)).astype(float)
        t4 = rng.integers(0, 4, n).astype(float)
        synopses = [
            syn(t1),
            syn(t2, truncation="full"),
            syn(t3, truncation="full"),
            syn(t4),
        ]
        est = estimate_chain_join_size(synopses)
        act = exact_multijoin_size(
            [t1, t2, t3, t4],
            [((0, 0), (1, 0)), ((1, 1), (2, 0)), ((2, 1), (3, 0))],
        )
        assert est == pytest.approx(act, rel=1e-9)

    def test_cyclic_join_graph_supported(self, rng):
        # R1(A,B) joined to R2(A,B) on both attributes: multi-dim Parseval.
        n = 10
        t1 = rng.integers(0, 4, (n, n)).astype(float)
        t2 = rng.integers(0, 4, (n, n)).astype(float)
        est = estimate_multijoin_size(
            [syn(t1, truncation="full"), syn(t2, truncation="full")],
            [((0, 0), (1, 0)), ((0, 1), (1, 1))],
        )
        act = float((t1 * t2).sum())
        assert est == pytest.approx(act, rel=1e-9)

    def test_unjoined_axis_is_marginalized(self, rng):
        # R1(A, C) joined to R2(A) only on A: C marginalizes away.
        n = 12
        t1 = rng.integers(0, 4, (n, n)).astype(float)
        t2 = rng.integers(0, 4, n).astype(float)
        est = estimate_multijoin_size(
            [syn(t1, truncation="full"), syn(t2)], [((0, 0), (1, 0))]
        )
        act = float(t1.sum(axis=1) @ t2)
        assert est == pytest.approx(act, rel=1e-9)

    def test_duplicate_slot_rejected(self, rng):
        n = 6
        synopses = [syn(rng.integers(0, 4, n).astype(float)) for _ in range(3)]
        with pytest.raises(ValueError, match="two predicates"):
            estimate_multijoin_size(
                synopses, [((0, 0), (1, 0)), ((0, 0), (2, 0))]
            )

    def test_out_of_range_slots_rejected(self, rng):
        synopses = [syn(rng.integers(0, 4, 6).astype(float))] * 2
        with pytest.raises(ValueError, match="relation"):
            estimate_multijoin_size(synopses, [((0, 0), (5, 0))])
        with pytest.raises(ValueError, match="axis"):
            estimate_multijoin_size(synopses, [((0, 3), (1, 0))])

    def test_empty_inputs_rejected(self, rng):
        a = syn(rng.integers(0, 4, 6).astype(float))
        with pytest.raises(ValueError, match="at least one"):
            estimate_multijoin_size([], [((0, 0), (1, 0))])
        with pytest.raises(ValueError, match="at least one"):
            estimate_multijoin_size([a, a], [])
        with pytest.raises(ValueError, match="at least two"):
            estimate_chain_join_size([a])

    def test_chain_wrapper_matches_explicit_predicates(self, rng):
        n = 10
        t1 = rng.integers(0, 5, n).astype(float)
        t2 = rng.integers(0, 3, (n, n)).astype(float)
        t3 = rng.integers(0, 5, n).astype(float)
        synopses = [syn(t1, order=6), syn(t2, order=6), syn(t3, order=6)]
        wrapped = estimate_chain_join_size(synopses)
        explicit = estimate_multijoin_size(
            synopses,
            [JoinPredicate((0, 0), (1, 0)), JoinPredicate((1, 1), (2, 0))],
        )
        assert wrapped == pytest.approx(explicit, rel=1e-12)

    def test_two_relation_chain_matches_single_join(self, rng):
        c1 = rng.integers(0, 9, 20).astype(float)
        c2 = rng.integers(0, 9, 20).astype(float)
        s1, s2 = syn(c1, order=7), syn(c2, order=7)
        assert estimate_chain_join_size([s1, s2]) == pytest.approx(
            estimate_join_size(s1, s2), rel=1e-12
        )


class TestGroupByJoin:
    def test_exact_at_full_order(self, rng):
        nG, nA = 12, 15
        t1 = rng.integers(0, 5, (nG, nA)).astype(float)
        t2 = rng.integers(0, 5, nA).astype(float)
        g = syn(t1, order=15, truncation="full")
        o = syn(t2, order=nA)
        per_group = estimate_join_size_by_group(g, o)
        np.testing.assert_allclose(per_group, t1 @ t2, atol=1e-8)

    def test_group_axis_one(self, rng):
        nA, nG = 10, 14
        t1 = rng.integers(0, 5, (nA, nG)).astype(float)
        t2 = rng.integers(0, 5, nA).astype(float)
        g = syn(t1, order=14, truncation="full")
        o = syn(t2, order=nA)
        per_group = estimate_join_size_by_group(g, o, group_axis=1)
        np.testing.assert_allclose(per_group, t1.T @ t2, atol=1e-8)

    def test_sum_of_groups_matches_plain_join(self, rng):
        n = 16
        t1 = rng.integers(0, 5, (n, n)).astype(float)
        t2 = rng.integers(0, 5, n).astype(float)
        g = syn(t1, order=8, truncation="full")
        o = syn(t2, order=8)
        per_group = estimate_join_size_by_group(g, o)
        plain = estimate_multijoin_size([g, o], [((0, 1), (1, 0))])
        assert per_group.sum() == pytest.approx(plain, rel=1e-9)

    def test_arity_validation(self, rng):
        n = 8
        one_d = syn(rng.integers(0, 5, n).astype(float))
        two_d = syn(rng.integers(0, 5, (n, n)).astype(float), truncation="full")
        with pytest.raises(ValueError, match="two-attribute"):
            estimate_join_size_by_group(one_d, one_d)
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_join_size_by_group(two_d, two_d)
        with pytest.raises(ValueError, match="group_axis"):
            estimate_join_size_by_group(two_d, one_d, group_axis=2)


class TestChooseBudget:
    def test_uniform_data_needs_one_coefficient(self):
        c = np.full(100, 5.0)
        a = syn(c, order=100)
        assert choose_budget(a, a) == 1

    def test_smooth_data_converges_early(self):
        n = 300
        x = np.arange(n)
        c1 = 100 * np.exp(-((x - 120) / 40.0) ** 2) + 10
        c2 = 100 * np.exp(-((x - 160) / 35.0) ** 2) + 10
        m = choose_budget(syn(c1, order=n), syn(c2, order=n), tolerance=0.01)
        assert m < n // 4

    def test_single_value_data_needs_nearly_everything(self):
        n = 128
        c = np.zeros(n)
        c[50] = 1000.0
        m = choose_budget(syn(c, order=n), syn(c, order=n), tolerance=0.01)
        assert m > n // 2

    def test_recommended_budget_delivers_tolerance(self, rng):
        n = 200
        c1 = rng.integers(0, 20, n).astype(float)
        c2 = rng.integers(0, 20, n).astype(float)
        a, b = syn(c1, order=n), syn(c2, order=n)
        tolerance = 0.05
        m = choose_budget(a, b, tolerance)
        full = estimate_join_size(a, b)
        truncated = estimate_join_size(a.truncated(order=m), b.truncated(order=m))
        assert abs(truncated - full) / abs(full) <= tolerance + 1e-9

    def test_validation(self, rng):
        one = syn(rng.integers(1, 5, 10).astype(float))
        two = syn(rng.integers(1, 5, (6, 6)).astype(float))
        with pytest.raises(ValueError, match="single-attribute"):
            choose_budget(two, one)
        with pytest.raises(ValueError, match="tolerance"):
            choose_budget(one, one, tolerance=0.0)
