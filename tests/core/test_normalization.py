"""Tests for attribute domains and section 4.1 domain unification."""

import numpy as np
import pytest

from repro.core.normalization import Domain, embed_counts, unify_domains


class TestDomainConstruction:
    def test_integer_range_size(self):
        assert Domain.integer_range(10, 19).size == 10

    def test_of_size(self):
        d = Domain.of_size(7)
        assert (d.low, d.high, d.size) == (0, 6, 7)

    def test_empty_integer_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Domain.integer_range(5, 4)

    def test_categorical_basics(self):
        d = Domain.categorical(["red", "green", "blue"])
        assert d.size == 3 and d.is_categorical
        assert d.high is None

    def test_categorical_duplicates_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Domain.categorical(["a", "a"])

    def test_categorical_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Domain.categorical([])


class TestIndexing:
    def test_integer_indices(self):
        d = Domain.integer_range(100, 109)
        np.testing.assert_array_equal(d.indices_of([100, 105, 109]), [0, 5, 9])

    def test_index_of_single(self):
        assert Domain.integer_range(-5, 5).index_of(0) == 5

    def test_out_of_range_rejected(self):
        d = Domain.of_size(10)
        with pytest.raises(ValueError, match="outside"):
            d.indices_of([3, 10])
        with pytest.raises(ValueError, match="outside"):
            d.indices_of([-1])

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="non-integer"):
            Domain.of_size(10).indices_of([1.5])

    def test_categorical_indices(self):
        d = Domain.categorical(["x", "y", "z"])
        np.testing.assert_array_equal(d.indices_of(["z", "x"]), [2, 0])

    def test_categorical_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="not in categorical"):
            Domain.categorical(["x"]).indices_of(["w"])


class TestPositions:
    def test_midpoint_positions(self):
        d = Domain.of_size(5)
        np.testing.assert_allclose(d.positions_of([0, 4]), [0.1, 0.9])

    def test_endpoint_positions_match_paper_normalization(self):
        # Section 3.1: x_z = (x - min) / (max - min).
        d = Domain.integer_range(0, 4)
        np.testing.assert_allclose(
            d.positions_of([0, 1, 2, 3, 4], kind="endpoint"), [0, 0.25, 0.5, 0.75, 1]
        )

    def test_positions_of_size_one_domain(self):
        d = Domain.integer_range(7, 7)
        np.testing.assert_allclose(d.positions_of([7], kind="endpoint"), [0.5])
        np.testing.assert_allclose(d.positions_of([7], kind="midpoint"), [0.5])

    def test_grid_matches_positions(self):
        d = Domain.integer_range(3, 12)
        np.testing.assert_allclose(
            d.grid("midpoint"), d.positions_of(np.arange(3, 13), "midpoint")
        )


class TestUnification:
    def test_integer_union(self):
        a = Domain.integer_range(0, 10)
        b = Domain.integer_range(5, 20)
        u = unify_domains(a, b)
        assert (u.low, u.high) == (0, 20)

    def test_disjoint_ranges_unify_to_the_hull(self):
        u = unify_domains(Domain.integer_range(0, 3), Domain.integer_range(10, 12))
        assert (u.low, u.high, u.size) == (0, 12, 13)

    def test_unify_is_commutative_in_extent(self):
        a = Domain.integer_range(-3, 7)
        b = Domain.integer_range(2, 15)
        assert unify_domains(a, b) == unify_domains(b, a)

    def test_categorical_union_keeps_left_order(self):
        a = Domain.categorical(["x", "y"])
        b = Domain.categorical(["y", "z"])
        u = unify_domains(a, b)
        np.testing.assert_array_equal(u.indices_of(["x", "y", "z"]), [0, 1, 2])

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError, match="cannot unify"):
            unify_domains(Domain.of_size(3), Domain.categorical(["a"]))


class TestEmbedCounts:
    def test_embedding_pads_with_zeros(self):
        orig = Domain.integer_range(5, 7)
        uni = Domain.integer_range(0, 9)
        out = embed_counts(np.array([1, 2, 3]), orig, uni)
        np.testing.assert_array_equal(out, [0, 0, 0, 0, 0, 1, 2, 3, 0, 0])

    def test_embedding_preserves_total(self, rng):
        orig = Domain.integer_range(10, 29)
        uni = unify_domains(orig, Domain.integer_range(0, 49))
        counts = rng.integers(0, 9, size=20)
        assert embed_counts(counts, orig, uni).sum() == counts.sum()

    def test_identity_embedding(self):
        d = Domain.of_size(4)
        np.testing.assert_array_equal(
            embed_counts(np.array([1, 2, 3, 4]), d, d), [1, 2, 3, 4]
        )

    def test_categorical_embedding(self):
        orig = Domain.categorical(["b", "c"])
        uni = Domain.categorical(["a", "b", "c"])
        np.testing.assert_array_equal(embed_counts(np.array([5, 7]), orig, uni), [0, 5, 7])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            embed_counts(np.array([1, 2]), Domain.of_size(3), Domain.of_size(5))

    def test_non_containing_unified_domain_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            embed_counts(
                np.array([1, 2, 3]),
                Domain.integer_range(0, 2),
                Domain.integer_range(1, 5),
            )
