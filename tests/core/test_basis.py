"""Tests for the cosine basis, grids and coefficient computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import (
    SQRT2,
    basis_matrix,
    coefficients_from_counts,
    coefficients_via_scipy_dct,
    endpoint_grid,
    make_grid,
    midpoint_grid,
    orthogonality_gram,
    phi,
    reconstruct_frequencies,
)


class TestGrids:
    def test_midpoint_grid_values(self):
        np.testing.assert_allclose(midpoint_grid(2), [0.25, 0.75])
        np.testing.assert_allclose(midpoint_grid(5), [0.1, 0.3, 0.5, 0.7, 0.9])

    def test_midpoint_grid_inside_unit_interval(self):
        g = midpoint_grid(100)
        assert g.min() > 0 and g.max() < 1

    def test_endpoint_grid_matches_section_31_example(self):
        # The paper's example: domain {0..4} normalizes to {0, 1/4, .., 1}.
        np.testing.assert_allclose(endpoint_grid(5), [0, 0.25, 0.5, 0.75, 1.0])

    def test_endpoint_grid_degenerate_domain(self):
        np.testing.assert_allclose(endpoint_grid(1), [0.5])

    def test_make_grid_dispatch(self):
        np.testing.assert_array_equal(make_grid(4, "midpoint"), midpoint_grid(4))
        np.testing.assert_array_equal(make_grid(4, "endpoint"), endpoint_grid(4))

    def test_make_grid_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown grid"):
            make_grid(4, "chebyshev")  # type: ignore[arg-type]

    @pytest.mark.parametrize("fn", [midpoint_grid, endpoint_grid])
    def test_grids_reject_empty_domain(self, fn):
        with pytest.raises(ValueError):
            fn(0)


class TestPhi:
    def test_phi_zero_is_constant_one(self):
        x = np.linspace(0, 1, 7)
        np.testing.assert_array_equal(phi(0, x), np.ones(7))

    def test_phi_k_formula(self):
        x = np.array([0.0, 0.25, 0.5])
        np.testing.assert_allclose(phi(2, x), SQRT2 * np.cos(2 * np.pi * x))

    def test_phi_broadcasts_k_and_x(self):
        out = phi(np.arange(4)[:, None], np.linspace(0, 1, 9)[None, :])
        assert out.shape == (4, 9)
        np.testing.assert_array_equal(out[0], np.ones(9))

    def test_phi_bounded_by_sqrt2(self):
        out = phi(np.arange(50)[:, None], np.linspace(0, 1, 101)[None, :])
        assert np.all(np.abs(out) <= SQRT2 + 1e-12)

    def test_basis_matrix_shape(self):
        mat = basis_matrix(np.arange(5), midpoint_grid(11))
        assert mat.shape == (5, 11)


class TestOrthogonality:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 257])
    def test_midpoint_grid_is_exactly_orthonormal(self, n):
        gram = orthogonality_gram(n, "midpoint")
        np.testing.assert_allclose(gram, np.eye(n), atol=1e-10)

    def test_endpoint_grid_is_not_orthonormal(self):
        gram = orthogonality_gram(16, "endpoint")
        assert np.abs(gram - np.eye(16)).max() > 0.01


class TestCoefficients:
    def test_a0_is_always_one(self, rng):
        counts = rng.integers(1, 100, size=50).astype(float)
        coeffs = coefficients_from_counts(counts)
        assert coeffs[0] == pytest.approx(1.0)

    def test_coefficients_bounded_by_sqrt2(self, rng):
        counts = rng.integers(0, 100, size=128).astype(float)
        coeffs = coefficients_from_counts(counts)
        assert np.all(np.abs(coeffs) <= SQRT2 + 1e-12)

    def test_matches_scipy_dct(self, rng):
        counts = rng.integers(0, 50, size=200).astype(float)
        np.testing.assert_allclose(
            coefficients_from_counts(counts),
            coefficients_via_scipy_dct(counts),
            atol=1e-12,
        )

    def test_paper_example_coefficients(self):
        # Section 3.2 example: 6 values {0.33, 0.32, 0.12, 0.66, 0.90, 0.80}
        # give a1 = -0.063, a2 = 0.0951 (coefficients over raw positions).
        stream = np.array([0.33, 0.32, 0.12, 0.66, 0.90, 0.80])
        a1 = np.mean(SQRT2 * np.cos(1 * np.pi * stream))
        a2 = np.mean(SQRT2 * np.cos(2 * np.pi * stream))
        assert a1 == pytest.approx(-0.063, abs=5e-4)
        assert a2 == pytest.approx(0.0951, abs=5e-4)

    def test_truncated_orders(self, rng):
        counts = rng.integers(0, 50, size=100).astype(float)
        full = coefficients_from_counts(counts)
        part = coefficients_from_counts(counts, orders=np.arange(7))
        np.testing.assert_allclose(part, full[:7])

    def test_uniform_counts_have_zero_higher_coefficients(self):
        # Section 4.3.1: uniform data needs only a0 (all a_k = 0, k >= 1).
        coeffs = coefficients_from_counts(np.full(64, 5.0))
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)
        assert coeffs[0] == pytest.approx(1.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            coefficients_from_counts(np.zeros(10))
        with pytest.raises(ValueError, match="empty"):
            coefficients_via_scipy_dct(np.zeros(10))

    def test_multidim_counts_rejected(self):
        with pytest.raises(ValueError, match="1-d"):
            coefficients_from_counts(np.ones((3, 3)))


class TestReconstruction:
    def test_full_reconstruction_is_exact_on_midpoint_grid(self, rng):
        counts = rng.integers(0, 30, size=40).astype(float)
        n = len(counts)
        coeffs = coefficients_from_counts(counts)
        freqs = reconstruct_frequencies(coeffs, np.arange(n), n)
        np.testing.assert_allclose(freqs, counts / counts.sum(), atol=1e-10)

    def test_truncated_reconstruction_sums_to_one(self, rng):
        counts = rng.integers(0, 30, size=64).astype(float) + 1
        coeffs = coefficients_from_counts(counts, orders=np.arange(9))
        freqs = reconstruct_frequencies(coeffs, np.arange(9), 64)
        assert freqs.sum() == pytest.approx(1.0, abs=1e-9)


class TestParsevalProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_parseval_identity_holds_on_midpoint_grid(self, n, seed):
        # Eq. 4.2: sum_v f1(v) f2(v) == (1/n) sum_k a_k b_k, exactly, for
        # any pair of frequency functions on the same domain.
        r = np.random.default_rng(seed)
        c1 = r.integers(0, 20, size=n).astype(float) + 1
        c2 = r.integers(0, 20, size=n).astype(float) + 1
        a = coefficients_from_counts(c1)
        b = coefficients_from_counts(c2)
        lhs = float(np.dot(c1 / c1.sum(), c2 / c2.sum()))
        rhs = float(np.dot(a, b)) / n
        assert lhs == pytest.approx(rhs, rel=1e-9)
