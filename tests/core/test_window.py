"""Tests for count-based sliding-window synopses."""

import numpy as np
import pytest

from repro.core.join import estimate_join_size, estimate_join_size_with_bound
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.core.window import SlidingWindowSynopsis


class TestWindowMechanics:
    def test_window_caps_at_size(self, rng):
        win = SlidingWindowSynopsis(Domain.of_size(20), window_size=5, order=20)
        for v in rng.integers(0, 20, 12):
            win.insert((int(v),))
        assert win.count == 5
        assert len(win) == 5

    def test_insert_returns_expired_tuple(self):
        win = SlidingWindowSynopsis(Domain.of_size(10), window_size=2, order=5)
        assert win.insert((1,)) is None
        assert win.insert((2,)) is None
        assert win.insert((3,)) == (1,)
        assert win.contents() == [(2,), (3,)]

    def test_invalid_window_size(self):
        with pytest.raises(ValueError, match="window size"):
            SlidingWindowSynopsis(Domain.of_size(10), window_size=0, order=5)

    def test_synopsis_tracks_window_exactly(self, rng):
        n = 15
        win = SlidingWindowSynopsis(Domain.of_size(n), window_size=30, order=n)
        stream = rng.integers(0, n, 100)
        for v in stream:
            win.insert((int(v),))
        fresh = CosineSynopsis(Domain.of_size(n), order=n)
        fresh.insert_batch(stream[-30:][:, None])
        np.testing.assert_allclose(
            win.synopsis.coefficients, fresh.coefficients, atol=1e-10
        )

    def test_window_join_against_reference(self, rng):
        n = 25
        win = SlidingWindowSynopsis(Domain.of_size(n), window_size=40, order=n)
        reference = CosineSynopsis.from_counts(
            Domain.of_size(n), np.ones(n), order=n
        )
        stream = rng.integers(0, n, 150)
        for v in stream:
            win.insert((int(v),))
        est = estimate_join_size(win.synopsis, reference)
        # every window tuple matches exactly one reference tuple
        assert est == pytest.approx(40.0, rel=1e-9)


class TestEstimateWithBound:
    def test_bound_contains_truth(self, rng):
        n = 50
        c1 = rng.integers(0, 10, n).astype(float)
        c2 = rng.integers(0, 10, n).astype(float)
        d = Domain.of_size(n)
        a = CosineSynopsis.from_counts(d, c1, order=8)
        b = CosineSynopsis.from_counts(d, c2, order=8)
        estimate, bound = estimate_join_size_with_bound(a, b)
        actual = float(c1 @ c2)
        assert abs(actual - estimate) <= bound + 1e-9

    def test_bound_zero_at_full_order(self, rng):
        n = 30
        c = rng.integers(1, 5, n).astype(float)
        d = Domain.of_size(n)
        a = CosineSynopsis.from_counts(d, c, order=n)
        estimate, bound = estimate_join_size_with_bound(a, a)
        assert bound == 0.0
        assert estimate == pytest.approx(float(c @ c), rel=1e-9)
