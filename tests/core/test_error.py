"""Tests for the section 4.3 analytic error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error import (
    absolute_error_bound,
    coefficients_for_relative_error,
    relative_error_bound,
    sketch_space_bounds,
    worst_case_coefficients,
)
from repro.core.join import estimate_join_size
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis


class TestAbsoluteBound:
    def test_formula(self):
        # Eq. 4.7 with equal sizes: 2 N^2 (n - m) / n.
        assert absolute_error_bound(100, 100, 50, 10) == pytest.approx(
            2 * 100 * 100 * 40 / 50
        )

    def test_zero_at_full_coefficients(self):
        assert absolute_error_bound(100, 100, 50, 50) == 0.0

    def test_monotone_in_coefficients(self):
        bounds = [absolute_error_bound(10, 10, 100, m) for m in (1, 10, 50, 100)]
        assert bounds == sorted(bounds, reverse=True)

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            absolute_error_bound(10, 10, 5, 6)
        with pytest.raises(ValueError):
            absolute_error_bound(10, 10, 5, 0)
        with pytest.raises(ValueError):
            absolute_error_bound(10, 10, 0, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 40),
        m=st.integers(1, 40),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_bound_actually_holds(self, n, m, seed):
        # The deterministic Eq. 4.7 bound must dominate the observed error
        # for every distribution pair.
        m = min(m, n)
        r = np.random.default_rng(seed)
        c1 = r.integers(0, 10, n).astype(float)
        c2 = r.integers(0, 10, n).astype(float)
        if c1.sum() == 0:
            c1[0] = 1
        if c2.sum() == 0:
            c2[0] = 1
        d = Domain.of_size(n)
        est = estimate_join_size(
            CosineSynopsis.from_counts(d, c1, order=m),
            CosineSynopsis.from_counts(d, c2, order=m),
        )
        actual = float(c1 @ c2)
        bound = absolute_error_bound(int(c1.sum()), int(c2.sum()), n, m)
        assert abs(actual - est) <= bound + 1e-6


class TestRelativeBoundAndInversion:
    def test_relative_bound_formula(self):
        assert relative_error_bound(1000.0, 100, 100, 50, 10) == pytest.approx(
            absolute_error_bound(100, 100, 50, 10) / 1000.0
        )

    def test_relative_bound_needs_positive_join(self):
        with pytest.raises(ValueError, match="J > 0"):
            relative_error_bound(0.0, 10, 10, 5, 2)

    def test_eq_4_9_inverts_eq_4_8(self):
        # m from Eq. 4.9 must guarantee the Eq. 4.8 bound <= e.
        n, stream, join = 1000, 5000, 2.0e5
        for e in (0.05, 0.2, 0.9):
            m = coefficients_for_relative_error(e, join, stream, n)
            assert relative_error_bound(join, stream, stream, n, m) <= e + 1e-9

    def test_eq_4_9_clamps_to_valid_range(self):
        assert coefficients_for_relative_error(10.0, 1e12, 10, 100) == 1
        assert coefficients_for_relative_error(1e-9, 10.0, 1000, 100) == 100

    def test_eq_4_9_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            coefficients_for_relative_error(0.0, 10.0, 10, 10)
        with pytest.raises(ValueError):
            coefficients_for_relative_error(0.1, -1.0, 10, 10)


class TestWorstCase:
    def test_eq_4_12_formula(self):
        # m = n - floor(e n / 2).
        assert worst_case_coefficients(0.1, 1000) == 1000 - 50
        assert worst_case_coefficients(1.0, 100) == 50

    def test_worst_case_scenario_error_matches_bound_shape(self):
        # Both streams hold one identical value; J = N^2.  The truncated
        # estimate's relative error must be within the Eq. 4.8 bound.
        n, big = 64, 500
        counts = np.zeros(n)
        counts[n // 2] = big
        d = Domain.of_size(n)
        e = 0.5
        m = worst_case_coefficients(e, n)
        syn = CosineSynopsis.from_counts(d, counts, order=m)
        est = estimate_join_size(syn, syn)
        actual = float(big) ** 2
        assert abs(actual - est) / actual <= e + 1e-9

    def test_single_value_stream_is_the_hard_case(self):
        # With few coefficients the single-value stream's join is badly
        # underestimated (the DCT worst case of section 4.3.2).
        n, big = 256, 1000
        counts = np.zeros(n)
        counts[3] = big
        d = Domain.of_size(n)
        syn = CosineSynopsis.from_counts(d, counts, order=8)
        est = estimate_join_size(syn, syn)
        actual = float(big) ** 2
        assert abs(actual - est) / actual > 0.5


class TestSketchBounds:
    def test_values(self):
        b = sketch_space_bounds(stream_size=1000, join_size=1.0e4, domain_size=500)
        assert b.basic_best == pytest.approx(100.0)
        assert b.basic_worst == pytest.approx(10_000.0)
        assert b.skimmed == pytest.approx(100.0)
        assert b.skimmed_sanity_bound == pytest.approx(1000.0**1.5)
        assert b.skimmed_extra_dense_space == 500

    def test_uniform_data_is_sketch_worst_case(self):
        # Section 4.3.1: for uniform data J = N^2 / n, so the sketch's best
        # bound Omega(N^2 / J) evaluates to Omega(n) — brute force.
        n, stream = 1000, 100_000
        join = stream**2 / n
        b = sketch_space_bounds(stream, join, n)
        assert b.basic_best == pytest.approx(n)

    def test_positive_join_required(self):
        with pytest.raises(ValueError):
            sketch_space_bounds(10, 0.0, 5)
