"""Tests for triangular coefficient truncation (section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.triangular import (
    full_count,
    full_indices,
    order_for_budget,
    scatter_to_dense,
    triangular_count,
    triangular_indices,
)


class TestCounts:
    @pytest.mark.parametrize(
        "order,ndim,expected",
        [(1, 1, 1), (5, 1, 5), (3, 2, 6), (4, 3, 20), (10, 2, 55)],
    )
    def test_triangular_count_formula(self, order, ndim, expected):
        assert triangular_count(order, ndim) == expected

    def test_paper_storage_ratios(self):
        # Section 3.2: ~50%, 17%, 4% of m^d survive for d = 2, 3, 4.
        m = 64
        for d, approx in [(2, 0.5), (3, 1 / 6), (4, 1 / 24)]:
            ratio = triangular_count(m, d) / full_count(m, d)
            assert ratio == pytest.approx(approx, rel=0.15)

    def test_enumeration_matches_count(self):
        for order, ndim in [(1, 1), (4, 1), (5, 2), (4, 3), (3, 4)]:
            assert triangular_indices(order, ndim).shape == (
                triangular_count(order, ndim),
                ndim,
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            triangular_count(0, 1)
        with pytest.raises(ValueError):
            triangular_count(1, 0)
        with pytest.raises(ValueError):
            triangular_indices(0, 2)
        with pytest.raises(ValueError):
            full_indices(2, 0)


class TestEnumeration:
    def test_indices_satisfy_triangular_condition(self):
        idx = triangular_indices(6, 3)
        assert np.all(idx.sum(axis=1) <= 5)
        assert np.all(idx >= 0)

    def test_indices_are_unique(self):
        idx = triangular_indices(7, 2)
        assert len({tuple(row) for row in idx}) == idx.shape[0]

    def test_one_dimensional_is_prefix(self):
        np.testing.assert_array_equal(triangular_indices(4, 1)[:, 0], [0, 1, 2, 3])

    def test_lexicographic_order(self):
        idx = triangular_indices(4, 2)
        as_tuples = [tuple(r) for r in idx]
        assert as_tuples == sorted(as_tuples)

    def test_smaller_order_is_subset(self):
        big = {tuple(r) for r in triangular_indices(8, 2)}
        small = {tuple(r) for r in triangular_indices(5, 2)}
        assert small <= big

    def test_full_indices_cover_grid(self):
        idx = full_indices(3, 2)
        assert idx.shape == (9, 2)
        assert len({tuple(r) for r in idx}) == 9


class TestBudget:
    def test_order_for_budget_exact_fit(self):
        # C(5+2-1, 2) = 15 coefficients at order 5, d = 2.
        assert order_for_budget(15, 2) == 5

    def test_order_for_budget_rounds_down(self):
        assert order_for_budget(14, 2) == 4

    def test_order_for_budget_full_grid(self):
        assert order_for_budget(27, 3, truncation="full") == 3
        assert order_for_budget(26, 3, truncation="full") == 2

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            order_for_budget(0, 1)

    def test_budget_of_one_always_fits_order_one(self):
        # C(d, d) = 1: a single coefficient (the mean) fits any arity.
        for ndim in (1, 2, 3, 4):
            assert order_for_budget(1, ndim) == 1

    def test_unknown_truncation_rejected(self):
        with pytest.raises(ValueError, match="unknown truncation"):
            order_for_budget(10, 2, truncation="circular")

    @settings(max_examples=50, deadline=None)
    @given(budget=st.integers(min_value=1, max_value=5000), ndim=st.integers(1, 4))
    def test_order_for_budget_is_maximal(self, budget, ndim):
        order = order_for_budget(budget, ndim)
        assert triangular_count(order, ndim) <= budget
        assert triangular_count(order + 1, ndim) > budget


class TestScatter:
    def test_scatter_roundtrip(self, rng):
        idx = triangular_indices(5, 2)
        values = rng.normal(size=idx.shape[0])
        dense = scatter_to_dense(idx, values, 5)
        assert dense.shape == (5, 5)
        np.testing.assert_array_equal(dense[idx[:, 0], idx[:, 1]], values)

    def test_scatter_zeroes_truncated_entries(self):
        idx = triangular_indices(3, 2)
        dense = scatter_to_dense(idx, np.ones(idx.shape[0]), 3)
        assert dense[2, 2] == 0.0 and dense[1, 2] == 0.0

    def test_scatter_rejects_overflow_index(self):
        with pytest.raises(ValueError, match="exceeds"):
            scatter_to_dense(np.array([[3]]), np.array([1.0]), 3)

    def test_scatter_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="matching"):
            scatter_to_dense(np.array([[0], [1]]), np.array([1.0]), 2)
