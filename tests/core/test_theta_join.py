"""Tests for non-equi (theta) join estimation — the section 6 extension."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.core.theta_join import (
    estimate_band_join_size,
    estimate_inequality_join_size,
    estimate_selected_join_size,
    estimate_theta_join_size,
)


def syn(counts, order=None, **kw):
    counts = np.asarray(counts, dtype=float)
    d = Domain.of_size(len(counts))
    return CosineSynopsis.from_counts(d, counts, order=order or len(counts), **kw)


def brute_force(c1, c2, predicate):
    n = len(c1)
    return float(
        sum(
            c1[x] * c2[y]
            for x in range(n)
            for y in range(n)
            if predicate(x, y)
        )
    )


@pytest.fixture
def pair(rng):
    c1 = rng.integers(0, 9, 40).astype(float)
    c2 = rng.integers(0, 9, 40).astype(float)
    return c1, c2


class TestInequalityJoins:
    @pytest.mark.parametrize(
        "op,pred",
        [
            ("<", lambda x, y: x < y),
            ("<=", lambda x, y: x <= y),
            (">", lambda x, y: x > y),
            (">=", lambda x, y: x >= y),
        ],
    )
    def test_exact_with_full_coefficients(self, pair, op, pred):
        c1, c2 = pair
        est = estimate_inequality_join_size(syn(c1), syn(c2), op)
        assert est == pytest.approx(brute_force(c1, c2, pred), rel=1e-8)

    def test_complementary_ops_partition_cross_product(self, pair):
        c1, c2 = pair
        a, b = syn(c1), syn(c2)
        less = estimate_inequality_join_size(a, b, "<")
        geq = estimate_inequality_join_size(a, b, ">=")
        assert less + geq == pytest.approx(float(c1.sum() * c2.sum()), rel=1e-8)

    def test_unknown_operator_rejected(self, pair):
        c1, c2 = pair
        with pytest.raises(ValueError, match="unsupported"):
            estimate_inequality_join_size(syn(c1), syn(c2), "!=")

    def test_truncated_estimate_close_on_smooth_data(self):
        n = 200
        x = np.arange(n)
        c1 = 100 * np.exp(-((x - 60) / 30.0) ** 2) + 5
        c2 = 100 * np.exp(-((x - 120) / 25.0) ** 2) + 5
        est = estimate_inequality_join_size(syn(c1, order=24), syn(c2, order=24), "<")
        actual = brute_force(c1, c2, lambda a, b: a < b)
        assert est == pytest.approx(actual, rel=0.05)


class TestBandJoins:
    def test_exact_with_full_coefficients(self, pair):
        c1, c2 = pair
        for width in (0, 1, 3, 10):
            est = estimate_band_join_size(syn(c1), syn(c2), width)
            actual = brute_force(c1, c2, lambda x, y, w=width: abs(x - y) <= w)
            assert est == pytest.approx(actual, rel=1e-8)

    def test_width_zero_is_equi_join(self, pair):
        c1, c2 = pair
        est = estimate_band_join_size(syn(c1), syn(c2), 0)
        assert est == pytest.approx(float(c1 @ c2), rel=1e-8)

    def test_huge_width_is_cross_product(self, pair):
        c1, c2 = pair
        est = estimate_band_join_size(syn(c1), syn(c2), 10_000)
        assert est == pytest.approx(float(c1.sum() * c2.sum()), rel=1e-8)

    def test_negative_width_rejected(self, pair):
        c1, c2 = pair
        with pytest.raises(ValueError, match=">= 0"):
            estimate_band_join_size(syn(c1), syn(c2), -1)

    def test_monotone_in_width(self, pair):
        c1, c2 = pair
        a, b = syn(c1), syn(c2)
        sizes = [estimate_band_join_size(a, b, w) for w in (0, 2, 5, 20)]
        assert sizes == sorted(sizes)


class TestSelectedJoins:
    def test_exact_with_full_coefficients(self, pair):
        c1, c2 = pair
        est = estimate_selected_join_size(syn(c1), syn(c2), (5, 20), (10, 30))
        actual = float(c1[10:21] @ c2[10:21])
        assert est == pytest.approx(actual, rel=1e-8)

    def test_no_selection_is_plain_equi_join(self, pair):
        c1, c2 = pair
        est = estimate_selected_join_size(syn(c1), syn(c2))
        assert est == pytest.approx(float(c1 @ c2), rel=1e-8)

    def test_one_sided_selection(self, pair):
        c1, c2 = pair
        est = estimate_selected_join_size(syn(c1), syn(c2), range_a=(0, 9))
        assert est == pytest.approx(float(c1[:10] @ c2[:10]), rel=1e-8)

    def test_disjoint_selections_give_zero(self, pair):
        c1, c2 = pair
        est = estimate_selected_join_size(syn(c1), syn(c2), (0, 5), (10, 20))
        assert est == 0.0

    def test_invalid_range_rejected(self, pair):
        c1, c2 = pair
        with pytest.raises(ValueError, match="selection range"):
            estimate_selected_join_size(syn(c1), syn(c2), (5, 100))
        with pytest.raises(ValueError, match="selection range"):
            estimate_selected_join_size(syn(c1), syn(c2), (6, 5))


class TestGeneralTheta:
    def test_matches_brute_force(self, pair):
        c1, c2 = pair
        predicate = lambda x, y: (x + y) % 3 == 0
        est = estimate_theta_join_size(syn(c1), syn(c2), predicate, chunk=7)
        assert est == pytest.approx(brute_force(c1, c2, predicate), rel=1e-8)

    def test_chunking_invariant(self, pair):
        c1, c2 = pair
        predicate = lambda x, y: x * 2 < y
        a, b = syn(c1), syn(c2)
        est_small = estimate_theta_join_size(a, b, predicate, chunk=3)
        est_big = estimate_theta_join_size(a, b, predicate, chunk=1_000)
        assert est_small == pytest.approx(est_big, rel=1e-10)

    def test_bad_predicate_shape_rejected(self, pair):
        c1, c2 = pair
        with pytest.raises(ValueError, match="broadcast"):
            estimate_theta_join_size(
                syn(c1), syn(c2), lambda x, y: np.array([True])
            )


class TestValidation:
    def test_mismatched_domains_rejected(self, rng):
        a = syn(rng.integers(0, 5, 10).astype(float))
        b = syn(rng.integers(0, 5, 12).astype(float))
        with pytest.raises(ValueError, match="unified"):
            estimate_inequality_join_size(a, b)

    def test_multiattribute_rejected(self, rng):
        counts = rng.integers(0, 5, (6, 6)).astype(float)
        two_d = CosineSynopsis.from_counts(
            [Domain.of_size(6)] * 2, counts, order=6, truncation="full"
        )
        one_d = syn(rng.integers(0, 5, 6).astype(float))
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_band_join_size(two_d, one_d, 1)

    def test_mismatched_grids_rejected(self, rng):
        c = rng.integers(0, 5, 10).astype(float)
        a = syn(c)
        b = CosineSynopsis.from_counts(Domain.of_size(10), c, order=10, grid="endpoint")
        with pytest.raises(ValueError, match="grids"):
            estimate_inequality_join_size(a, b)
