"""Tests for point/range estimation from cosine synopses."""

import numpy as np
import pytest

from repro.core.basis import basis_matrix, midpoint_grid
from repro.core.normalization import Domain
from repro.core.range_query import (
    basis_range_sums,
    estimate_box_count,
    estimate_cdf,
    estimate_quantile,
    estimate_point_count,
    estimate_range_count,
    estimate_range_selectivity,
)
from repro.core.synopsis import CosineSynopsis


class TestClosedForm:
    @pytest.mark.parametrize("n,lo,hi", [(10, 0, 9), (10, 3, 7), (33, 5, 5), (7, 0, 0)])
    def test_matches_direct_summation(self, n, lo, hi):
        sums = basis_range_sums(n, n, lo, hi)
        direct = basis_matrix(np.arange(n), midpoint_grid(n))[:, lo : hi + 1].sum(axis=1)
        np.testing.assert_allclose(sums, direct, atol=1e-10)

    def test_order_zero_term_is_range_width(self):
        assert basis_range_sums(5, 100, 10, 19)[0] == 10

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            basis_range_sums(5, 10, 5, 3)
        with pytest.raises(ValueError):
            basis_range_sums(5, 10, 0, 10)


class TestRangeEstimation:
    def test_exact_with_full_coefficients(self, rng):
        n = 60
        counts = rng.integers(0, 30, n).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        for lo, hi in [(0, n - 1), (10, 20), (5, 5)]:
            est = estimate_range_count(syn, lo, hi)
            assert est == pytest.approx(counts[lo : hi + 1].sum(), abs=1e-6)

    def test_point_count_exact_with_full_coefficients(self, rng):
        n = 40
        counts = rng.integers(0, 30, n).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        assert estimate_point_count(syn, 7) == pytest.approx(counts[7], abs=1e-6)

    def test_truncated_estimate_close_on_smooth_data(self):
        n = 200
        x = np.arange(n)
        counts = 100 * np.exp(-((x - 90) / 25.0) ** 2) + 10
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=20)
        actual = counts[60:120].sum()
        est = estimate_range_count(syn, 60, 119)
        assert est == pytest.approx(actual, rel=0.05)

    def test_endpoint_grid_supported(self, rng):
        n = 30
        counts = rng.integers(1, 10, n).astype(float)
        syn = CosineSynopsis.from_counts(
            Domain.of_size(n), counts, order=n, grid="endpoint"
        )
        # On the endpoint grid the inversion is approximate; only sanity.
        est = estimate_range_count(syn, 0, n - 1)
        assert est == pytest.approx(counts.sum(), rel=0.25)

    def test_selectivity_normalizes_by_stream_size(self, rng):
        n = 50
        counts = rng.integers(1, 10, n).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        sel = estimate_range_selectivity(syn, 0, 24)
        assert sel == pytest.approx(counts[:25].sum() / counts.sum(), abs=1e-9)

    def test_multiattribute_rejected(self, rng):
        syn = CosineSynopsis.from_counts(
            [Domain.of_size(5)] * 2, rng.integers(0, 5, (5, 5)).astype(float), order=3
        )
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_range_count(syn, 0, 2)

    def test_bad_range_rejected(self, rng):
        syn = CosineSynopsis.from_counts(
            Domain.of_size(5), rng.integers(1, 5, 5).astype(float), order=5
        )
        with pytest.raises(ValueError):
            estimate_range_count(syn, 3, 1)
        with pytest.raises(ValueError):
            estimate_range_count(syn, 0, 5)


class TestBoxCount:
    def test_exact_with_full_coefficients(self, rng):
        counts = rng.integers(0, 9, (12, 9)).astype(float)
        doms = [Domain.of_size(12), Domain.of_size(9)]
        syn = CosineSynopsis.from_counts(doms, counts, order=12, truncation="full")
        est = estimate_box_count(syn, [(3, 8), (2, 5)])
        assert est == pytest.approx(counts[3:9, 2:6].sum(), abs=1e-8)

    def test_open_axis(self, rng):
        counts = rng.integers(0, 9, (10, 10)).astype(float)
        doms = [Domain.of_size(10)] * 2
        syn = CosineSynopsis.from_counts(doms, counts, order=10, truncation="full")
        est = estimate_box_count(syn, [None, (4, 7)])
        assert est == pytest.approx(counts[:, 4:8].sum(), abs=1e-8)

    def test_whole_box_is_stream_size(self, rng):
        counts = rng.integers(0, 9, (8, 8)).astype(float)
        doms = [Domain.of_size(8)] * 2
        syn = CosineSynopsis.from_counts(doms, counts, order=8, truncation="full")
        est = estimate_box_count(syn, [None, None])
        assert est == pytest.approx(counts.sum(), abs=1e-8)

    def test_one_dimensional_matches_range_count(self, rng):
        counts = rng.integers(0, 9, 30).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(30), counts, order=15)
        assert estimate_box_count(syn, [(5, 20)]) == pytest.approx(
            estimate_range_count(syn, 5, 20), rel=1e-10
        )

    def test_wrong_arity_rejected(self, rng):
        counts = rng.integers(0, 9, (8, 8)).astype(float)
        syn = CosineSynopsis.from_counts(
            [Domain.of_size(8)] * 2, counts, order=4
        )
        with pytest.raises(ValueError, match="one range per"):
            estimate_box_count(syn, [(0, 3)])

    def test_bad_range_rejected(self, rng):
        counts = rng.integers(0, 9, (8, 8)).astype(float)
        syn = CosineSynopsis.from_counts([Domain.of_size(8)] * 2, counts, order=4)
        with pytest.raises(ValueError, match="not inside"):
            estimate_box_count(syn, [(0, 8), None])

    def test_triangular_truncation_smooth_data(self):
        n = 64
        x = np.arange(n)
        joint = np.exp(
            -0.5 * (((x[:, None] - 30) / 10.0) ** 2 + ((x[None, :] - 20) / 8.0) ** 2)
        ) * 500 + 1
        doms = [Domain.of_size(n)] * 2
        syn = CosineSynopsis.from_counts(doms, joint, budget=300)
        est = estimate_box_count(syn, [(20, 45), (10, 35)])
        actual = joint[20:46, 10:36].sum()
        assert est == pytest.approx(actual, rel=0.05)


class TestCdfAndQuantiles:
    def test_cdf_exact_at_full_order(self, rng):
        n = 40
        counts = rng.integers(0, 10, n).astype(float) + 1
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        np.testing.assert_allclose(
            estimate_cdf(syn), np.cumsum(counts) / counts.sum(), atol=1e-9
        )

    def test_cdf_monotone_under_truncation(self, rng):
        n = 100
        counts = rng.integers(0, 10, n).astype(float)
        counts[0] = 1
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=10)
        cdf = estimate_cdf(syn)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_median_of_symmetric_distribution(self):
        n = 101
        x = np.arange(n)
        counts = np.exp(-0.5 * ((x - 50) / 12.0) ** 2) * 100 + 1
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=25)
        assert abs(estimate_quantile(syn, 0.5) - 50) <= 2

    def test_quantiles_exact_at_full_order(self, rng):
        n = 60
        counts = rng.integers(1, 10, n).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        cdf = np.cumsum(counts) / counts.sum()
        for q in (0.1, 0.25, 0.5, 0.9):
            expected = int(np.searchsorted(cdf, q, side="left"))
            assert estimate_quantile(syn, q) == expected

    def test_extreme_quantiles(self, rng):
        n = 30
        counts = rng.integers(1, 5, n).astype(float)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        assert estimate_quantile(syn, 0.0) == 0
        assert estimate_quantile(syn, 1.0) == n - 1

    def test_invalid_quantile_rejected(self, rng):
        syn = CosineSynopsis.from_counts(
            Domain.of_size(5), rng.integers(1, 5, 5).astype(float), order=5
        )
        with pytest.raises(ValueError, match="quantile"):
            estimate_quantile(syn, 1.5)

    def test_multiattribute_rejected(self, rng):
        syn = CosineSynopsis.from_counts(
            [Domain.of_size(5)] * 2, rng.integers(1, 5, (5, 5)).astype(float), order=3
        )
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_cdf(syn)
