"""Hypothesis property tests on the cosine synopsis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import estimate_join_size
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.streams.exact import exact_join_size


@st.composite
def counts_vector(draw, max_n=40, max_count=15):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_count), min_size=n, max_size=n
        )
    )
    counts = np.array(values, dtype=float)
    # keep at least one tuple so coefficients are defined
    if counts.sum() == 0:
        counts[draw(st.integers(0, n - 1))] = 1
    return counts


class TestStreamOrderInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        size=st.integers(min_value=1, max_value=120),
    )
    def test_coefficients_independent_of_arrival_order(self, seed, size):
        # The synopsis is a pure function of the multiset of tuples: any
        # arrival permutation yields the same coefficients.
        r = np.random.default_rng(seed)
        d = Domain.of_size(17)
        rows = r.integers(0, 17, size=(size, 1))
        a = CosineSynopsis(d, order=9)
        a.insert_batch(rows)
        b = CosineSynopsis(d, order=9)
        b.insert_batch(rows[r.permutation(size)])
        np.testing.assert_allclose(a.coefficients, b.coefficients, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_insert_delete_commute(self, seed):
        # Inserting X then deleting Y equals deleting Y then inserting X
        # (whenever both orders are legal): the synopsis is linear.
        r = np.random.default_rng(seed)
        d = Domain.of_size(11)
        base = r.integers(0, 11, size=(50, 1))
        extra = r.integers(0, 11, size=(10, 1))
        doomed = base[:10]

        one = CosineSynopsis(d, order=6)
        one.insert_batch(base)
        one.insert_batch(extra)
        one.delete_batch(doomed)

        two = CosineSynopsis(d, order=6)
        two.insert_batch(base)
        two.delete_batch(doomed)
        two.insert_batch(extra)

        np.testing.assert_allclose(one.coefficients, two.coefficients, atol=1e-10)


class TestExactRecovery:
    @settings(max_examples=30, deadline=None)
    @given(counts_a=counts_vector(), counts_b=counts_vector())
    def test_full_order_join_estimate_is_exact(self, counts_a, counts_b):
        # Eq. 4.3: with all n coefficients the estimate IS the join size.
        n = max(len(counts_a), len(counts_b))
        a = np.pad(counts_a, (0, n - len(counts_a)))
        b = np.pad(counts_b, (0, n - len(counts_b)))
        d = Domain.of_size(n)
        sa = CosineSynopsis.from_counts(d, a, order=n)
        sb = CosineSynopsis.from_counts(d, b, order=n)
        estimate = estimate_join_size(sa, sb)
        actual = exact_join_size(a, b)
        assert estimate == pytest.approx(actual, rel=1e-9, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector(max_n=24))
    def test_full_order_reconstruction_is_exact(self, counts):
        d = Domain.of_size(len(counts))
        syn = CosineSynopsis.from_counts(d, counts, order=len(counts))
        np.testing.assert_allclose(syn.reconstruct_counts(), counts, atol=1e-7)


class TestBoundsAndInvariants:
    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector())
    def test_coefficients_bounded_by_sqrt2(self, counts):
        syn = CosineSynopsis.from_counts(Domain.of_size(len(counts)), counts, order=len(counts))
        assert np.all(np.abs(syn.coefficients) <= np.sqrt(2) + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector(), seed=st.integers(0, 2**31 - 1))
    def test_merge_is_commutative(self, counts, seed):
        r = np.random.default_rng(seed)
        other = r.permutation(counts)
        d = Domain.of_size(len(counts))
        a = CosineSynopsis.from_counts(d, counts, order=5)
        b = CosineSynopsis.from_counts(d, other, order=5)
        np.testing.assert_allclose(
            (a + b).coefficients, (b + a).coefficients, atol=1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(counts=counts_vector(max_n=30), m=st.integers(2, 10))
    def test_truncation_tower(self, counts, m):
        # truncating twice equals truncating once to the smaller order.
        n = len(counts)
        order = min(m, n)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        via_middle = syn.truncated(order=min(n, order + 3)).truncated(order=order)
        direct = syn.truncated(order=order)
        np.testing.assert_allclose(
            via_middle.coefficients, direct.coefficients, atol=1e-12
        )
