"""Tests for exponentially time-decayed cosine synopses."""

import numpy as np
import pytest

from repro.core.decay import DecayedCosineSynopsis, estimate_decayed_join_size
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis


def decayed_counts(events, n, gamma, read_time):
    """Ground-truth decayed frequency vector for (value, time) events."""
    counts = np.zeros(n)
    for value, t in events:
        counts[value] += np.exp(-gamma * (read_time - t))
    return counts


def random_events(rng, n, size, horizon=10.0):
    times = np.sort(rng.uniform(0, horizon, size))
    values = rng.integers(0, n, size)
    return list(zip(values.tolist(), times.tolist()))


class TestConstruction:
    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            DecayedCosineSynopsis(Domain.of_size(10), gamma=-0.1, order=5)

    def test_empty_synopsis_has_no_coefficients(self):
        syn = DecayedCosineSynopsis(Domain.of_size(10), gamma=0.5, order=5)
        with pytest.raises(ValueError, match="mass"):
            syn.coefficients()


class TestClock:
    def test_clock_advances_with_inserts(self):
        syn = DecayedCosineSynopsis(Domain.of_size(10), gamma=0.5, order=5)
        syn.insert((3,), timestamp=1.0)
        syn.insert((4,), timestamp=2.5)
        assert syn.clock == 2.5

    def test_time_cannot_rewind(self):
        syn = DecayedCosineSynopsis(Domain.of_size(10), gamma=0.5, order=5)
        syn.insert((3,), timestamp=2.0)
        with pytest.raises(ValueError, match="forward"):
            syn.insert((4,), timestamp=1.0)

    def test_weighted_count_decays(self):
        syn = DecayedCosineSynopsis(Domain.of_size(10), gamma=1.0, order=5)
        syn.insert((3,), timestamp=0.0)
        syn.advance_to(1.0)
        assert syn.weighted_count == pytest.approx(np.exp(-1.0))

    def test_gamma_zero_is_undecayed(self, rng):
        n = 20
        decayed = DecayedCosineSynopsis(Domain.of_size(n), gamma=0.0, order=n)
        plain = CosineSynopsis(Domain.of_size(n), order=n)
        for value, t in random_events(rng, n, 100):
            decayed.insert((value,), timestamp=t)
            plain.insert((value,))
        np.testing.assert_allclose(
            decayed.coefficients(), plain.coefficients, atol=1e-12
        )
        assert decayed.weighted_count == pytest.approx(100)


class TestDecayedEstimation:
    def test_join_exact_at_full_order(self, rng):
        n, gamma = 25, 0.3
        events_a = random_events(rng, n, 200)
        events_b = random_events(rng, n, 150)
        a = DecayedCosineSynopsis(Domain.of_size(n), gamma=gamma, order=n)
        b = DecayedCosineSynopsis(Domain.of_size(n), gamma=gamma, order=n)
        for value, t in events_a:
            a.insert((value,), timestamp=t)
        for value, t in events_b:
            b.insert((value,), timestamp=t)
        read_time = 12.0
        estimate = estimate_decayed_join_size(a, b, timestamp=read_time)
        actual = float(
            decayed_counts(events_a, n, gamma, read_time)
            @ decayed_counts(events_b, n, gamma, read_time)
        )
        assert estimate == pytest.approx(actual, rel=1e-9)

    def test_default_read_time_is_later_clock(self, rng):
        n = 10
        a = DecayedCosineSynopsis(Domain.of_size(n), gamma=0.2, order=n)
        b = DecayedCosineSynopsis(Domain.of_size(n), gamma=0.2, order=n)
        a.insert((1,), timestamp=1.0)
        b.insert((1,), timestamp=5.0)
        estimate_decayed_join_size(a, b)
        assert a.clock == b.clock == 5.0

    def test_old_tuples_fade_from_the_join(self):
        n = 10
        a = DecayedCosineSynopsis(Domain.of_size(n), gamma=2.0, order=n)
        b = DecayedCosineSynopsis(Domain.of_size(n), gamma=2.0, order=n)
        a.insert((3,), timestamp=0.0)
        b.insert((3,), timestamp=0.0)
        early = estimate_decayed_join_size(a, b, timestamp=0.0)
        late = estimate_decayed_join_size(a, b, timestamp=5.0)
        assert early == pytest.approx(1.0, rel=1e-9)
        assert late < 1e-6

    def test_reconstruction_matches_ground_truth(self, rng):
        n, gamma = 16, 0.4
        events = random_events(rng, n, 120)
        syn = DecayedCosineSynopsis(Domain.of_size(n), gamma=gamma, order=n)
        for value, t in events:
            syn.insert((value,), timestamp=t)
        syn.advance_to(11.0)
        np.testing.assert_allclose(
            syn.reconstruct_decayed_counts(),
            decayed_counts(events, n, gamma, 11.0),
            atol=1e-8,
        )

    def test_mismatched_grids_rejected(self):
        a = DecayedCosineSynopsis(Domain.of_size(8), gamma=0.1, order=4)
        b = DecayedCosineSynopsis(Domain.of_size(8), gamma=0.1, order=4, grid="endpoint")
        a.insert((0,), 0.0)
        b.insert((0,), 0.0)
        with pytest.raises(ValueError, match="grids"):
            estimate_decayed_join_size(a, b)

    def test_different_gammas_supported(self, rng):
        # Nothing requires both sides to age at the same rate.
        n = 12
        a = DecayedCosineSynopsis(Domain.of_size(n), gamma=0.1, order=n)
        b = DecayedCosineSynopsis(Domain.of_size(n), gamma=1.0, order=n)
        a.insert((4,), timestamp=0.0)
        b.insert((4,), timestamp=0.0)
        est = estimate_decayed_join_size(a, b, timestamp=1.0)
        assert est == pytest.approx(np.exp(-0.1) * np.exp(-1.0), rel=1e-9)
