"""Stateful property test: the engine under arbitrary operation sequences.

Drives a :class:`ContinuousQueryEngine` with random interleavings of
insertions and deletions on two stream relations and checks, after every
step, that a full-budget cosine query equals the exact join size and that
every synopsis' live tuple count matches the relation's.  This is the
strongest form of the paper's maintenance claim (Eqs. 3.4/3.5): the
synopsis is a pure function of the live multiset, whatever path led there.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.normalization import Domain
from repro.streams.engine import ContinuousQueryEngine
from repro.streams.queries import JoinQuery

DOMAIN_SIZE = 12


class EngineMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.engine = ContinuousQueryEngine(seed=0)
        self.engine.create_relation("S1", ["A"], [Domain.of_size(DOMAIN_SIZE)])
        self.engine.create_relation("S2", ["A"], [Domain.of_size(DOMAIN_SIZE)])
        query = JoinQuery.chain(["S1", "S2"], ["A"])
        # Full budget: the estimate must equal the exact answer throughout.
        self.engine.register_query("q", query, method="cosine", budget=DOMAIN_SIZE)
        self.shadow = {
            "S1": np.zeros(DOMAIN_SIZE, dtype=np.int64),
            "S2": np.zeros(DOMAIN_SIZE, dtype=np.int64),
        }

    @rule(
        relation=st.sampled_from(["S1", "S2"]),
        value=st.integers(min_value=0, max_value=DOMAIN_SIZE - 1),
    )
    def insert(self, relation, value):
        self.engine.insert(relation, (value,))
        self.shadow[relation][value] += 1

    @precondition(lambda self: any(c.sum() > 0 for c in self.shadow.values()))
    @rule(
        relation=st.sampled_from(["S1", "S2"]),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def delete_existing(self, relation, pick):
        counts = self.shadow[relation]
        if counts.sum() == 0:
            return
        live = np.flatnonzero(counts)
        value = int(live[pick % len(live)])
        self.engine.delete(relation, (value,))
        counts[value] -= 1

    @invariant()
    def estimate_equals_exact(self):
        if not hasattr(self, "engine"):
            return
        if self.shadow["S1"].sum() == 0 or self.shadow["S2"].sum() == 0:
            return  # coefficients undefined on an empty stream
        expected = float(self.shadow["S1"] @ self.shadow["S2"])
        assert abs(self.engine.answer("q") - expected) < 1e-6

    @invariant()
    def exact_state_matches_shadow(self):
        if not hasattr(self, "engine"):
            return
        for name, counts in self.shadow.items():
            np.testing.assert_array_equal(
                self.engine.relations[name].counts, counts
            )


EngineMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestEngineStateful = EngineMachine.TestCase
