"""Consistency checks between the documentation and the code."""

import re
import subprocess
import sys
from pathlib import Path


REPO = Path(__file__).resolve().parents[2]


class TestApiDocsGenerator:
    def test_generator_runs_and_is_fresh(self, tmp_path):
        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "generate_api_docs.py"),
             "--out", str(out)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        generated = out.read_text()
        committed = (REPO / "docs" / "API.md").read_text()
        assert generated == committed, (
            "docs/API.md is stale; regenerate with "
            "`python scripts/generate_api_docs.py`"
        )

    def test_api_doc_covers_key_surface(self):
        text = (REPO / "docs" / "API.md").read_text()
        for symbol in (
            "CosineSynopsis",
            "estimate_join_size",
            "estimate_multijoin_size",
            "AGMSSketch",
            "ContinuousQueryEngine",
            "make_figures",
        ):
            assert symbol in text


class TestReadmeAndDesign:
    def test_readme_mentions_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, f"{example.name} missing from README"

    def test_design_lists_every_figure_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for i in range(1, 21):
            assert f"bench_fig{i:02d}.py" in design

    def test_benches_named_in_design_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for name in set(re.findall(r"bench_\w+\.py", design)):
            assert (REPO / "benchmarks" / name).exists(), f"{name} missing"

    def test_experiments_md_has_all_figures(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for i in range(1, 21):
            assert f"fig{i:02d}" in experiments

    def test_theory_doc_sections(self):
        theory = (REPO / "docs" / "THEORY.md").read_text()
        for heading in ("Parseval", "Error analysis", "Sketches", "Space accounting"):
            assert heading in theory
