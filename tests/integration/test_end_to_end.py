"""Cross-module integration tests: generators -> streams -> engine -> answers."""

import numpy as np
import pytest

from repro import (
    ContinuousQueryEngine,
    CosineSynopsis,
    Domain,
    JoinQuery,
    estimate_join_size,
    relative_error,
)
from repro.data.clustered import ClusteredConfig, make_clustered_chain
from repro.data.reallike import cps_like
from repro.data.streams import raw_rows_from_counts, rows_from_counts
from repro.data.zipf import Correlation, TypeIConfig, make_type1_pair
from repro.streams.tuples import inserts, interleave


class TestGeneratorsThroughEngine:
    def test_type1_data_streamed_through_engine(self, rng):
        config = TypeIConfig(
            domain_size=200,
            relation_size=3_000,
            correlation=Correlation.INDEPENDENT,
        )
        c1, c2 = make_type1_pair(config, rng)
        eng = ContinuousQueryEngine(seed=1)
        eng.create_relation("R1", ["A"], [Domain.of_size(200)])
        eng.create_relation("R2", ["A"], [Domain.of_size(200)])
        q = JoinQuery.chain(["R1", "R2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=60)
        eng.register_query("q_sketch", q, method="basic_sketch", budget=60)

        for row in rows_from_counts(c1, rng):
            eng.insert("R1", (int(row[0]),))
        for row in rows_from_counts(c2, rng):
            eng.insert("R2", (int(row[0]),))

        actual = float(c1 @ c2)
        assert eng.exact_answer("q") == pytest.approx(actual)
        assert relative_error(actual, eng.answer("q")) < 0.5

    def test_clustered_chain_streamed_through_engine(self, rng):
        config = ClusteredConfig(domain_size=64, num_clusters=5, relation_size=4_000)
        relations = make_clustered_chain(config, 2, rng)
        eng = ContinuousQueryEngine(seed=2)
        eng.create_relation("R1", ["A"], [Domain.of_size(64)])
        eng.create_relation("R2", ["A", "B"], [Domain.of_size(64)] * 2)
        eng.create_relation("R3", ["B"], [Domain.of_size(64)])
        for name, counts in zip(("R1", "R2", "R3"), relations):
            eng.relations[name].load_counts(counts)
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        eng.register_query("q", q, method="cosine", budget=300)
        actual = eng.exact_answer("q")
        assert actual > 0
        assert relative_error(actual, eng.answer("q")) < 0.3

    def test_cps_age_join_small_error(self, rng):
        jan = cps_like(1, rng, scale=0.2)
        feb = cps_like(2, rng, scale=0.2)
        d = jan.domains[0]
        a = CosineSynopsis.from_counts(d, jan.counts.sum(axis=1), budget=25)
        b = CosineSynopsis.from_counts(d, feb.counts.sum(axis=1), budget=25)
        actual = float(jan.counts.sum(axis=1) @ feb.counts.sum(axis=1))
        assert relative_error(actual, estimate_join_size(a, b)) < 0.1


class TestInterleavedStreams:
    def test_interleaved_arrival_order_does_not_matter(self, rng):
        n = 50
        c1 = rng.integers(0, 8, n)
        c2 = rng.integers(0, 8, n)
        rows1 = raw_rows_from_counts(c1, [Domain.of_size(n)], rng)
        rows2 = raw_rows_from_counts(c2, [Domain.of_size(n)], rng)

        eng = ContinuousQueryEngine(seed=4)
        eng.create_relation("S1", ["A"], [Domain.of_size(n)])
        eng.create_relation("S2", ["A"], [Domain.of_size(n)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=n)

        names = ["S1", "S2"]
        for sid, op in interleave([inserts(rows1), inserts(rows2)], seed=11):
            eng.process(names[sid], op)

        assert eng.answer("q") == pytest.approx(float(c1 @ c2), rel=1e-9)


class TestSlidingWindowPattern:
    def test_deletions_implement_a_sliding_window(self, rng):
        # A windowed stream: insert new tuples, delete expired ones; the
        # synopsis must track the window contents exactly.
        n = 30
        d = Domain.of_size(n)
        eng = ContinuousQueryEngine()
        eng.create_relation("W", ["A"], [d])
        eng.create_relation("REF", ["A"], [d])
        q = JoinQuery.chain(["W", "REF"], ["A"])
        eng.register_query("q", q, method="cosine", budget=n)
        for v in range(n):
            eng.insert("REF", (v,))

        stream = rng.integers(0, n, size=200)
        window = 50
        for i, v in enumerate(stream):
            eng.insert("W", (int(v),))
            if i >= window:
                eng.delete("W", (int(stream[i - window]),))
        # final window holds the last `window` elements
        tail = stream[-window:]
        expected = float(np.bincount(tail, minlength=n) @ np.ones(n))
        assert eng.answer("q") == pytest.approx(expected, rel=1e-9)
