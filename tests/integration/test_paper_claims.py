"""Integration tests of the paper's analytic claims (sections 3-4).

These pin down the *mathematical* statements of the paper, as opposed to
the experimental shapes which the benchmark suite reproduces.
"""

import numpy as np
import pytest

from repro.core.error import coefficients_for_relative_error
from repro.core.join import estimate_join_size, estimate_self_join_size
from repro.core.normalization import Domain
from repro.core.synopsis import CosineSynopsis
from repro.sketches.basic import AGMSSketch
from repro.sketches.basic import estimate_join_size as sketch_join
from repro.sketches.hashing import SignFamily
from repro.streams.exact import relative_error


class TestSection431BestCase:
    """Uniform data: DCT exact with one coefficient, sketches noisy."""

    def test_dct_exact_with_single_coefficient(self):
        n, per_value = 500, 20
        counts = np.full(n, float(per_value))
        d = Domain.of_size(n)
        a = CosineSynopsis.from_counts(d, counts, order=1)
        b = CosineSynopsis.from_counts(d, counts, order=1)
        actual = float(counts @ counts)
        assert a.num_coefficients == 1
        assert estimate_join_size(a, b) == pytest.approx(actual, rel=1e-12)

    def test_higher_coefficients_vanish_on_uniform_data(self):
        counts = np.full(128, 3.0)
        syn = CosineSynopsis.from_counts(Domain.of_size(128), counts, order=128)
        np.testing.assert_allclose(syn.coefficients[1:], 0.0, atol=1e-12)

    def test_sketch_noisy_on_uniform_data_at_small_space(self):
        # The sketch needs Omega(n) space here; with far less it has
        # noticeable error where the DCT has none.
        n, per_value = 2_000, 10
        counts = np.full(n, float(per_value))
        actual = float(counts @ counts)
        errors = []
        for seed in range(10):
            fam = SignFamily(n, 60, seed=seed)
            s1 = AGMSSketch.from_counts(fam, counts, 20, 3)
            s2 = AGMSSketch.from_counts(fam, counts, 20, 3)
            errors.append(relative_error(actual, sketch_join(s1, s2)))
        assert np.mean(errors) > 0.01


class TestSection432WorstCase:
    """Single-value streams: sketches exact, DCT needs ~n coefficients."""

    def test_sketch_exact_on_single_value_streams(self):
        n, big = 1_000, 5_000
        counts = np.zeros(n)
        counts[123] = big
        for seed in range(5):
            fam = SignFamily(n, 30, seed=seed)
            s1 = AGMSSketch.from_counts(fam, counts, 10, 3)
            s2 = AGMSSketch.from_counts(fam, counts, 10, 3)
            assert sketch_join(s1, s2) == pytest.approx(float(big) ** 2)

    def test_dct_needs_near_linear_coefficients(self):
        n, big = 256, 1_000
        counts = np.zeros(n)
        counts[99] = big
        d = Domain.of_size(n)
        actual = float(big) ** 2

        def error_at(m):
            syn = CosineSynopsis.from_counts(d, counts, order=m)
            return relative_error(actual, estimate_join_size(syn, syn))

        # Eq. 4.12: error <= e requires about n(1 - e/2) coefficients.
        assert error_at(16) > 0.8
        assert error_at(n // 2) > 0.3
        assert error_at(n) == pytest.approx(0.0, abs=1e-9)


class TestEq49SpaceGuarantee:
    def test_budget_from_eq_4_9_meets_target_error(self, rng):
        # For arbitrary data, using the Eq. 4.9 coefficient budget must
        # bring the observed relative error under the target.
        n = 300
        c1 = rng.integers(0, 20, n).astype(float)
        c2 = rng.integers(0, 20, n).astype(float)
        actual = float(c1 @ c2)
        stream = int(max(c1.sum(), c2.sum()))
        d = Domain.of_size(n)
        for target in (0.5, 0.1):
            m = coefficients_for_relative_error(target, actual, stream, n)
            a = CosineSynopsis.from_counts(d, c1, order=m)
            b = CosineSynopsis.from_counts(d, c2, order=m)
            assert relative_error(actual, estimate_join_size(a, b)) <= target


class TestSelfJoinAgreement:
    def test_dct_and_sketch_agree_on_self_join_moment(self, rng):
        # Both estimate F2; at generous space they should land close to the
        # truth and hence to each other.
        n = 400
        counts = rng.integers(0, 15, n).astype(float)
        actual = float(counts @ counts)
        syn = CosineSynopsis.from_counts(Domain.of_size(n), counts, order=n)
        dct_est = estimate_self_join_size(syn)
        assert dct_est == pytest.approx(actual, rel=1e-9)

        fam = SignFamily(n, 1000, seed=5)
        sk = AGMSSketch.from_counts(fam, counts, 200, 5)
        from repro.sketches.basic import estimate_self_join_size as sketch_self

        assert sketch_self(sk) == pytest.approx(actual, rel=0.25)


class TestBatchUpdateClaim:
    def test_batch_and_per_tuple_updates_identical(self, rng):
        # Section 3.2: "the set of coefficients derived by the incremental
        # update scheme is exactly the same as if we had derived in batch".
        n = 100
        d = Domain.of_size(n)
        rows = rng.integers(0, n, size=(500, 1))
        per_tuple = CosineSynopsis(d, order=30)
        for row in rows:
            per_tuple.insert(row)
        batched = CosineSynopsis(d, order=30)
        for start in range(0, 500, 97):  # uneven batches on purpose
            batched.insert_batch(rows[start : start + 97])
        np.testing.assert_allclose(
            per_tuple.coefficients, batched.coefficients, atol=1e-12
        )
