"""Subprocess tests for the repository's scripts."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


class TestReproduceAll:
    def test_subset_run_produces_valid_markdown(self, tmp_path):
        out = tmp_path / "EXP.md"
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "reproduce_all.py"),
                "--figures", "fig13",
                "--trials", "1",
                "--out", str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "fig13" in text
        assert "Quoted paper values" in text  # fig13 has structured claims
        assert "Section 5.4 computation speed" in text
        assert "Winner over the three largest budgets" in text

    def test_unknown_figure_rejected(self):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "reproduce_all.py"),
                "--figures", "fig99",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
        assert "unknown figure" in result.stderr


class TestCliEntryPoint:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "list"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "fig20" in result.stdout
