"""Stress test: one engine, many methods, shared relations, live updates.

The paper's processing model has many continuous queries running over the
same streams; this test registers every applicable method over one pair of
relations, drives a mixed insert/delete stream, and checks all estimators
stay coherent with the exact answer throughout.
"""

import pytest

from repro.core.normalization import Domain
from repro.streams.engine import ContinuousQueryEngine
from repro.streams.queries import JoinQuery

METHODS = ("cosine", "basic_sketch", "skimmed_sketch", "histogram", "wavelet",
           "partitioned_sketch")


class TestManyQueriesOneStream:
    @pytest.fixture
    def engine(self, rng):
        n = 64
        eng = ContinuousQueryEngine(seed=5)
        eng.create_relation("S1", ["A"], [Domain.of_size(n)])
        eng.create_relation("S2", ["A"], [Domain.of_size(n)])
        # warm history so partitioned pilots and replays are non-trivial
        for v in (rng.zipf(1.2, 1_500) - 1) % n:
            eng.insert("S1", (int(v),))
        for v in (rng.zipf(1.2, 1_500) - 1) % n:
            eng.insert("S2", (int(v),))
        query = JoinQuery.chain(["S1", "S2"], ["A"])
        for method in METHODS:
            eng.register_query(f"q_{method}", query, method=method, budget=64)
        eng.register_range_query("q_range", "S1", "A", low=0, high=31, budget=64)
        return eng

    def test_all_methods_answer_after_mixed_updates(self, engine, rng):
        n = 64
        inserted: list[int] = []
        for i in range(600):
            v = int((rng.zipf(1.2) - 1) % n)
            engine.insert("S1", (v,))
            inserted.append(v)
            if i % 3 == 2:
                victim = inserted.pop(rng.integers(0, len(inserted)))
                engine.delete("S1", (victim,))
        actual = engine.exact_answer("q_cosine")
        answers = engine.answers()
        assert set(answers) == {f"q_{m}" for m in METHODS} | {"q_range"}
        # the deterministic synopses at full-ish budget stay tight;
        # randomized sketches stay within a loose sanity envelope
        assert abs(answers["q_cosine"] - actual) / actual < 0.05
        assert abs(answers["q_histogram"] - actual) / actual < 0.5
        assert abs(answers["q_wavelet"] - actual) / actual < 0.5
        for method in ("basic_sketch", "skimmed_sketch", "partitioned_sketch"):
            assert abs(answers[f"q_{method}"] - actual) / actual < 2.0
        # the range query tracks its own exact answer closely
        assert answers["q_range"] == pytest.approx(
            engine.exact_answer("q_range"), rel=0.02
        )

    def test_unregistering_one_query_leaves_others_working(self, engine, rng):
        engine.unregister_query("q_basic_sketch")
        engine.insert("S1", (3,))
        answers = engine.answers()
        assert "q_basic_sketch" not in answers
        assert "q_cosine" in answers
        # observer count: each remaining join query contributes one observer
        # per relation it touches; S2 lost exactly one (the basic sketch's)
        assert len(engine.relations["S2"]._observers) == len(METHODS) - 1
