"""Smoke tests for the example scripts.

Every example must at least import cleanly and expose a ``main``; the two
fastest are executed end-to-end so a broken public API surfaces here
rather than in a user's terminal.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExampleStructure:
    def test_expected_examples_present(self):
        names = {p.stem for p in ALL_EXAMPLES}
        assert names == {
            "quickstart",
            "network_monitoring",
            "census_join_analysis",
            "method_comparison",
            "deletions_and_windows",
            "beyond_equi_joins",
            "csv_to_continuous_queries",
        }

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_has_module_docstring(self, path):
        module = _load(path)
        assert module.__doc__ and "Run:" in module.__doc__


class TestExampleExecution:
    @pytest.mark.parametrize("name", ["quickstart.py", "csv_to_continuous_queries.py"])
    def test_runs_end_to_end(self, name):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "err" in result.stdout
