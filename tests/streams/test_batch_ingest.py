"""Batched ingestion: batch/sequential parity, mixed batches, and stats.

The batch fast path (``StreamRelation.insert_rows`` / ``delete_rows`` /
``process_batch`` and ``StreamEngine.ingest_batch``) must be a pure
optimization: identical exact state and identical estimates to per-tuple
ingestion, for every estimation method — including ``"sample"``, whose RNG
consumes the same double stream batched or not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.streams import JoinQuery, OpKind, StreamEngine, StreamOp
from repro.streams.relation import StreamObserver, StreamRelation

ALL_METHODS = (
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
)

DOMAIN_SIZE = 24


def single_join_engine(seed: int, methods=ALL_METHODS) -> StreamEngine:
    engine = StreamEngine(seed=seed)
    domain = Domain.of_size(DOMAIN_SIZE)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        options = {"probability": 0.5} if method == "sample" else {}
        engine.register_query(f"q_{method}", query, method=method, budget=24, **options)
    return engine


def feed_sequential(engine: StreamEngine, streams: dict) -> None:
    for name, values in streams.items():
        for value in values:
            engine.insert(name, (int(value),))


def feed_batched(engine: StreamEngine, streams: dict, batch: int) -> None:
    for name, values in streams.items():
        rows = np.asarray(values, dtype=np.int64)[:, None]
        for lo in range(0, rows.shape[0], batch):
            engine.ingest_batch(name, rows[lo : lo + batch])


values_list = st.lists(
    st.integers(0, DOMAIN_SIZE - 1), min_size=1, max_size=60
)


class TestBatchSequentialParity:
    @settings(max_examples=20, deadline=None)
    @given(
        left=values_list,
        right=values_list,
        seed=st.integers(0, 2**16),
        batch=st.integers(1, 40),
    )
    def test_all_methods_agree(self, left, right, seed, batch):
        """Same seeded stream => same answer() for every method, any batch size."""
        streams = {"R1": left, "R2": right}
        sequential = single_join_engine(seed)
        feed_sequential(sequential, streams)
        batched = single_join_engine(seed)
        feed_batched(batched, streams, batch)

        np.testing.assert_array_equal(
            sequential.relations["R1"].counts, batched.relations["R1"].counts
        )
        seq_answers = sequential.answers()
        bat_answers = batched.answers()
        for method in ALL_METHODS:
            assert seq_answers[f"q_{method}"] == pytest.approx(
                bat_answers[f"q_{method}"], rel=1e-9, abs=1e-6
            ), method

    def test_sample_rng_parity_is_exact(self):
        """Bernoulli acceptance is bit-identical batched vs sequential."""
        rng = np.random.default_rng(3)
        streams = {
            "R1": (rng.integers(0, DOMAIN_SIZE, 200)).tolist(),
            "R2": (rng.integers(0, DOMAIN_SIZE, 200)).tolist(),
        }
        sequential = single_join_engine(7, methods=("sample",))
        feed_sequential(sequential, streams)
        batched = single_join_engine(7, methods=("sample",))
        feed_batched(batched, streams, batch=64)
        assert sequential.answer("q_sample") == batched.answer("q_sample")

    def test_deletions_agree_for_linear_methods(self):
        """Insert-then-delete batches match sequential for deletion-capable methods."""
        methods = ("cosine", "basic_sketch", "histogram", "wavelet", "partitioned_sketch")
        rng = np.random.default_rng(11)
        inserts = {name: rng.integers(0, DOMAIN_SIZE, 120).tolist() for name in ("R1", "R2")}
        removals = {name: values[:40] for name, values in inserts.items()}

        sequential = single_join_engine(1, methods=methods)
        feed_sequential(sequential, inserts)
        for name, values in removals.items():
            for value in values:
                sequential.delete(name, (int(value),))

        batched = single_join_engine(1, methods=methods)
        feed_batched(batched, inserts, batch=50)
        for name, values in removals.items():
            rows = np.asarray(values, dtype=np.int64)[:, None]
            batched.ingest_batch(name, rows, kind=OpKind.DELETE)

        seq_answers = sequential.answers()
        bat_answers = batched.answers()
        for method in methods:
            assert seq_answers[f"q_{method}"] == pytest.approx(
                bat_answers[f"q_{method}"], rel=1e-9, abs=1e-6
            ), method


def make_relation():
    return StreamRelation(
        "R", ["A", "B"], [Domain.integer_range(0, 4), Domain.integer_range(10, 14)]
    )


class BatchRecorder(StreamObserver):
    def __init__(self):
        self.batches = []
        self.ops = []

    def on_op(self, relation, op):
        self.ops.append(op)

    def on_ops(self, relation, rows, kind):
        self.batches.append((rows.shape[0], kind))


class PerOpOnly:
    """Duck-typed observer without on_ops: must still see batched tuples."""

    def __init__(self):
        self.ops = []

    def on_op(self, relation, op):
        self.ops.append(op)


class TestProcessBatch:
    def test_mixed_kinds_split_into_runs(self):
        r = make_relation()
        rec = BatchRecorder()
        r.attach(rec)
        ops = [
            StreamOp((0, 10)),
            StreamOp((1, 11)),
            StreamOp((0, 10), OpKind.DELETE),
            StreamOp((2, 12)),
        ]
        r.process_batch(ops)
        assert rec.batches == [
            (2, OpKind.INSERT),
            (1, OpKind.DELETE),
            (1, OpKind.INSERT),
        ]
        assert r.count == 2
        assert r.counts[0, 0] == 0 and r.counts[1, 1] == 1 and r.counts[2, 2] == 1

    def test_mixed_batch_matches_sequential_state(self):
        rng = np.random.default_rng(5)
        ops = []
        live = []
        for _ in range(80):
            if live and rng.random() < 0.3:
                victim = live.pop(int(rng.integers(0, len(live))))
                ops.append(StreamOp(victim, OpKind.DELETE))
            else:
                row = (int(rng.integers(0, 5)), int(rng.integers(10, 15)))
                live.append(row)
                ops.append(StreamOp(row))
        a, b = make_relation(), make_relation()
        for op in ops:
            a.process(op)
        b.process_batch(ops)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.count == b.count

    def test_delete_run_exceeding_held_is_rejected_atomically(self):
        r = make_relation()
        r.insert_rows([(0, 10), (1, 11)])
        with pytest.raises(ValueError, match="does not hold"):
            r.delete_rows([(0, 10), (0, 10)])
        # the rejected batch left the exact state untouched
        assert r.count == 2
        assert r.counts[0, 0] == 1

    def test_per_op_observer_fallback(self):
        r = make_relation()
        duck = PerOpOnly()
        r.attach(duck)
        r.insert_rows([(0, 10), (1, 11), (1, 11)])
        assert [op.kind for op in duck.ops] == [OpKind.INSERT] * 3
        assert [tuple(op.values) for op in duck.ops] == [(0, 10), (1, 11), (1, 11)]

    def test_default_on_ops_falls_back_to_on_op(self):
        class Subclassed(StreamObserver):
            def __init__(self):
                self.ops = []

            def on_op(self, relation, op):
                self.ops.append(op)

        r = make_relation()
        obs = Subclassed()
        r.attach(obs)
        r.insert_rows([(2, 12), (3, 13)])
        assert len(obs.ops) == 2

    def test_rows_shape_validated(self):
        r = make_relation()
        with pytest.raises(ValueError, match="shape"):
            r.insert_rows(np.zeros((3, 3), dtype=np.int64))

    def test_load_counts_after_attach_still_guarded(self):
        """Bulk-load must stay rejected once any (batch) observer is attached."""
        r = make_relation()
        r.attach(BatchRecorder())
        with pytest.raises(ValueError, match="observers"):
            r.load_counts(np.zeros((5, 5)))


class TestEngineStats:
    def test_counters_after_ingest_and_answer(self):
        engine = single_join_engine(0, methods=("cosine", "basic_sketch"))
        rows = np.arange(48, dtype=np.int64)[:, None] % DOMAIN_SIZE
        engine.ingest_batch("R1", rows)
        engine.ingest_batch("R2", rows)
        engine.insert("R1", (3,))
        engine.answers()
        stats = engine.stats()
        assert stats.tuples_ingested == 97
        assert stats.batched_ops == 96
        assert stats.batches == 2
        assert stats.per_tuple_ops == 1
        assert stats.estimate_calls == 2
        assert stats.estimate_time > 0
        assert set(stats.observer_time) == {"cosine", "basic_sketch"}
        assert all(t > 0 for t in stats.observer_time.values())
        assert stats.observer_ops["cosine"] == 97

    def test_reset(self):
        engine = single_join_engine(0, methods=("cosine",))
        engine.ingest_batch("R1", np.zeros((4, 1), dtype=np.int64))
        engine.stats().reset()
        assert engine.stats().tuples_ingested == 0
        assert engine.stats().observer_time == {}

    def test_as_dict_roundtrips_to_json(self):
        import json

        engine = single_join_engine(0, methods=("cosine",))
        engine.ingest_batch("R1", np.zeros((4, 1), dtype=np.int64))
        engine.ingest_batch("R2", np.zeros((4, 1), dtype=np.int64))
        engine.answer("q_cosine")
        payload = json.loads(json.dumps(engine.stats().as_dict()))
        assert payload["tuples_ingested"] == 8
        assert payload["estimate_calls"] == 1


class TestIngestBatchDispatch:
    def test_delete_kind_routes_to_delete_rows(self):
        engine = single_join_engine(0, methods=("cosine",))
        rows = np.full((10, 1), 7, dtype=np.int64)
        engine.ingest_batch("R1", rows)
        engine.ingest_batch("R1", rows[:4], kind=OpKind.DELETE)
        assert engine.relations["R1"].count == 6
        assert engine.relations["R1"].counts[7] == 6

    def test_sample_method_rejects_batched_deletes(self):
        engine = single_join_engine(0, methods=("sample",))
        rows = np.zeros((5, 1), dtype=np.int64)
        engine.ingest_batch("R1", rows)
        with pytest.raises(NotImplementedError, match="Bernoulli"):
            engine.ingest_batch("R1", rows[:1], kind=OpKind.DELETE)
