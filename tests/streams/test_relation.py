"""Tests for StreamRelation: exact state and observer notification."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.streams.relation import StreamRelation
from repro.streams.tuples import OpKind, StreamOp


def make_relation():
    return StreamRelation(
        "R", ["A", "B"], [Domain.integer_range(0, 4), Domain.integer_range(10, 14)]
    )


class Recorder:
    def __init__(self):
        self.ops = []

    def on_op(self, relation, op):
        self.ops.append(op)


class TestConstruction:
    def test_schema_checks(self):
        with pytest.raises(ValueError, match="at least one"):
            StreamRelation("R", [], [])
        with pytest.raises(ValueError, match="one domain per"):
            StreamRelation("R", ["A"], [])
        with pytest.raises(ValueError, match="distinct"):
            StreamRelation("R", ["A", "A"], [Domain.of_size(2)] * 2)

    def test_exact_cell_guard(self):
        with pytest.raises(ValueError, match="MAX_EXACT_CELLS"):
            StreamRelation("R", ["A", "B"], [Domain.of_size(100_000)] * 2)


class TestProcessing:
    def test_insert_updates_counts(self):
        r = make_relation()
        r.insert((2, 12))
        r.insert((2, 12))
        assert r.counts[2, 2] == 2
        assert r.count == 2

    def test_delete_updates_counts(self):
        r = make_relation()
        r.insert((0, 10))
        r.delete((0, 10))
        assert r.count == 0
        assert r.counts.sum() == 0

    def test_delete_of_absent_tuple_rejected(self):
        r = make_relation()
        with pytest.raises(ValueError, match="does not hold"):
            r.delete((0, 10))

    def test_out_of_domain_rejected(self):
        r = make_relation()
        with pytest.raises(ValueError, match="outside"):
            r.insert((9, 10))

    def test_wrong_arity_rejected(self):
        r = make_relation()
        with pytest.raises(ValueError, match="attributes"):
            r.insert((1,))

    def test_insert_rows(self):
        r = make_relation()
        r.insert_rows([(0, 10), (1, 11)])
        assert r.count == 2


class TestObservers:
    def test_observers_see_every_op(self):
        r = make_relation()
        rec = Recorder()
        r.attach(rec)
        r.insert((1, 11))
        r.delete((1, 11))
        assert [op.kind for op in rec.ops] == [OpKind.INSERT, OpKind.DELETE]

    def test_detach(self):
        r = make_relation()
        rec = Recorder()
        r.attach(rec)
        r.detach(rec)
        r.insert((1, 11))
        assert rec.ops == []

    def test_observer_notified_after_state_update(self):
        r = make_relation()
        seen = []

        class Checker:
            def on_op(self, relation, op):
                seen.append(relation.counts[1, 1])

        r.attach(Checker())
        r.process(StreamOp((1, 11), OpKind.INSERT))
        assert seen == [1]


class TestBulkLoad:
    def test_load_counts(self, rng):
        r = make_relation()
        counts = rng.integers(0, 5, size=(5, 5))
        r.load_counts(counts)
        assert r.count == counts.sum()

    def test_load_counts_after_attach_rejected(self):
        r = make_relation()
        r.attach(Recorder())
        with pytest.raises(ValueError, match="observers"):
            r.load_counts(np.zeros((5, 5)))

    def test_load_counts_shape_checked(self):
        r = make_relation()
        with pytest.raises(ValueError, match="shape"):
            r.load_counts(np.zeros((4, 5)))

    def test_load_counts_negative_rejected(self):
        r = make_relation()
        with pytest.raises(ValueError, match="non-negative"):
            r.load_counts(np.full((5, 5), -1))
