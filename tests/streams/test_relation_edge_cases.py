"""Hypothesis edge-case properties for :class:`StreamRelation`.

The exact count tensor is the engine's ground truth, so its invariants
are checked property-style: counts never go negative, over-deletion is
rejected atomically (batch untouched), batch and sequential ingest land
in identical states, and empty batches are true no-ops.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.streams.relation import StreamRelation
from repro.streams.tuples import OpKind, StreamOp

DOMAIN = 12


def make_relation(ndim=1) -> StreamRelation:
    return StreamRelation(
        "R", [f"A{i}" for i in range(ndim)], [Domain.of_size(DOMAIN)] * ndim
    )


values = st.integers(0, DOMAIN - 1)
rows_1d = st.lists(values, min_size=0, max_size=40).map(
    lambda vs: np.array(vs, dtype=np.int64).reshape(-1, 1)
)


class TestDeleteBelowZero:
    @settings(max_examples=40, deadline=None)
    @given(value=values)
    def test_deleting_absent_tuple_raises_and_leaves_state(self, value):
        relation = make_relation()
        with pytest.raises(ValueError, match="does not hold"):
            relation.delete((value,))
        assert relation.count == 0
        assert relation.counts.sum() == 0

    @settings(max_examples=40, deadline=None)
    @given(value=values, extra=st.integers(1, 5))
    def test_duplicate_deletes_beyond_multiplicity_rejected(self, value, extra):
        relation = make_relation()
        relation.insert((value,))
        relation.delete((value,))
        for _ in range(extra):
            with pytest.raises(ValueError):
                relation.delete((value,))
        assert relation.count == 0

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_1d, over=st.integers(1, 4))
    def test_over_deleting_batch_is_atomic(self, rows, over):
        relation = make_relation()
        relation.insert_rows(rows)
        before = relation.counts.copy()
        # One tuple more of some value than the relation holds.
        value = int(rows[0, 0]) if rows.shape[0] else 0
        held = int(before[value])
        bad = np.full((held + over, 1), value, dtype=np.int64)
        with pytest.raises(ValueError, match="does not hold"):
            relation.delete_rows(bad)
        np.testing.assert_array_equal(relation.counts, before)
        assert relation.count == rows.shape[0]

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_1d)
    def test_counts_tensor_never_negative(self, rows):
        relation = make_relation()
        relation.insert_rows(rows)
        relation.delete_rows(rows)
        assert relation.counts.min() >= 0
        assert relation.counts.sum() == 0
        assert relation.count == 0


class TestBatchSequentialParity:
    @settings(max_examples=40, deadline=None)
    @given(rows=rows_1d)
    def test_insert_rows_matches_per_tuple_inserts(self, rows):
        batched, sequential = make_relation(), make_relation()
        batched.insert_rows(rows)
        for value in rows[:, 0]:
            sequential.insert((int(value),))
        np.testing.assert_array_equal(batched.counts, sequential.counts)
        assert batched.count == sequential.count

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_1d, seed=st.integers(0, 2**31 - 1))
    def test_interleaved_process_batch_matches_process(self, rows, seed):
        inserted = np.repeat(rows, 2, axis=0)  # ensure deletes always legal
        deletions = rows
        ops = [StreamOp(tuple(r), OpKind.INSERT) for r in inserted] + [
            StreamOp(tuple(r), OpKind.DELETE) for r in deletions
        ]
        batched, sequential = make_relation(), make_relation()
        batched.process_batch(ops)
        for op in ops:
            sequential.process(op)
        np.testing.assert_array_equal(batched.counts, sequential.counts)
        assert batched.count == sequential.count == rows.shape[0]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 30),
    )
    def test_multi_attribute_parity(self, seed, n):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, DOMAIN, size=(n, 2))
        batched, sequential = make_relation(ndim=2), make_relation(ndim=2)
        batched.insert_rows(rows)
        for row in rows:
            sequential.insert(tuple(int(v) for v in row))
        np.testing.assert_array_equal(batched.counts, sequential.counts)


class TestEmptyBatches:
    def test_empty_list_is_a_no_op(self):
        relation = make_relation()
        relation.insert_rows([])
        relation.delete_rows([])
        assert relation.count == 0

    def test_empty_array_is_a_no_op(self):
        relation = make_relation(ndim=2)
        relation.insert_rows(np.empty((0, 2), dtype=np.int64))
        relation.delete_rows(np.empty((0, 2), dtype=np.int64))
        assert relation.count == 0

    def test_empty_1d_array_is_a_no_op(self):
        relation = make_relation()
        relation.insert_rows(np.array([], dtype=np.int64))
        assert relation.count == 0

    def test_empty_process_batch(self):
        relation = make_relation()
        relation.process_batch([])
        assert relation.count == 0

    def test_observers_not_notified_for_empty_batch(self):
        calls = []

        class Recorder:
            def on_op(self, relation, op):
                calls.append("op")

            def on_ops(self, relation, rows, kind):
                calls.append("ops")

        relation = make_relation()
        relation.attach(Recorder())
        relation.insert_rows([])
        assert calls == []
