"""Tests for stream operations and interleaving."""

import numpy as np

from repro.streams.tuples import OpKind, StreamOp, deletes, inserts, interleave


class TestStreamOp:
    def test_weights(self):
        assert StreamOp((1,), OpKind.INSERT).weight == 1
        assert StreamOp((1,), OpKind.DELETE).weight == -1

    def test_default_kind_is_insert(self):
        assert StreamOp((1, 2)).kind is OpKind.INSERT


class TestWrappers:
    def test_inserts_from_rows(self):
        ops = list(inserts([(1, 2), (3, 4)]))
        assert all(op.kind is OpKind.INSERT for op in ops)
        assert ops[0].values == (1, 2)

    def test_inserts_from_scalars(self):
        ops = list(inserts([5, 6]))
        assert ops[0].values == (5,)

    def test_inserts_from_ndarray(self):
        ops = list(inserts(np.array([[1, 2], [3, 4]])))
        assert ops[1].values == (3, 4)

    def test_deletes(self):
        ops = list(deletes([(9,)]))
        assert ops[0].kind is OpKind.DELETE and ops[0].values == (9,)


class TestInterleave:
    def test_yields_everything_with_stream_ids(self):
        s1 = list(inserts([1, 2, 3]))
        s2 = list(inserts([10, 20]))
        out = list(interleave([s1, s2], seed=0))
        assert len(out) == 5
        from_s1 = [op.values[0] for sid, op in out if sid == 0]
        from_s2 = [op.values[0] for sid, op in out if sid == 1]
        assert from_s1 == [1, 2, 3]  # per-stream order preserved
        assert from_s2 == [10, 20]

    def test_deterministic_given_seed(self):
        make = lambda: [list(inserts(range(10))), list(inserts(range(10, 20)))]
        a = [(sid, op.values) for sid, op in interleave(make(), seed=42)]
        b = [(sid, op.values) for sid, op in interleave(make(), seed=42)]
        assert a == b

    def test_empty_streams(self):
        assert list(interleave([[], []], seed=1)) == []
