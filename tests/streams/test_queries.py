"""Tests for the join query model."""

import pytest

from repro.core.normalization import Domain
from repro.streams.queries import AttributeRef, EquiJoinPredicate, JoinQuery


def schemas():
    return {"R1": ["A"], "R2": ["A", "B"], "R3": ["B"]}


def domains():
    return {
        "R1": [Domain.integer_range(0, 9)],
        "R2": [Domain.integer_range(5, 14), Domain.of_size(20)],
        "R3": [Domain.of_size(20)],
    }


class TestConstruction:
    def test_chain_builder(self):
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        assert q.num_joins == 2
        assert q.predicates[0] == EquiJoinPredicate(
            AttributeRef("R1", "A"), AttributeRef("R2", "A")
        )

    def test_chain_arity_checked(self):
        with pytest.raises(ValueError, match="k-1"):
            JoinQuery.chain(["R1", "R2"], ["A", "B"])

    def test_parse(self):
        q = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
        assert q.predicates[0].left == AttributeRef("R1", "A")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="cannot parse"):
            JoinQuery.parse(["R1"], ["R1.A == R1.B = R1.C"])

    def test_duplicate_relations_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            JoinQuery(("R1", "R1"))

    def test_self_predicate_rejected(self):
        ref = AttributeRef("R1", "A")
        with pytest.raises(ValueError, match="itself"):
            EquiJoinPredicate(ref, ref)

    def test_slot_reuse_rejected(self):
        a = AttributeRef("R1", "A")
        with pytest.raises(ValueError, match="more than one"):
            JoinQuery(
                ("R1", "R2", "R3"),
                (
                    EquiJoinPredicate(a, AttributeRef("R2", "A")),
                    EquiJoinPredicate(a, AttributeRef("R3", "B")),
                ),
            )

    def test_unknown_relation_in_predicate_rejected(self):
        with pytest.raises(ValueError, match="not in the FROM"):
            JoinQuery(
                ("R1",),
                (
                    EquiJoinPredicate(
                        AttributeRef("R1", "A"), AttributeRef("R9", "A")
                    ),
                ),
            )

    def test_str_rendering(self):
        q = JoinQuery.chain(["R1", "R2"], ["A"])
        assert "SELECT COUNT(*)" in str(q)
        assert "R1.A = R2.A" in str(q)


class TestFromSql:
    def test_paper_query_shape(self):
        q = JoinQuery.from_sql(
            "Select COUNT(*) from R1, R2, R3, R4 "
            "Where R1.A = R2.A and R2.B = R3.B and R3.C = R4.C"
        )
        assert q.relations == ("R1", "R2", "R3", "R4")
        assert q.num_joins == 3
        assert q.predicates[1] == EquiJoinPredicate(
            AttributeRef("R2", "B"), AttributeRef("R3", "B")
        )

    def test_case_insensitive_keywords(self):
        q = JoinQuery.from_sql("select count( * ) FROM R1, R2 WHERE R1.x = R2.y;")
        assert q.predicates[0].right == AttributeRef("R2", "y")

    def test_no_where_clause_is_cross_product(self):
        q = JoinQuery.from_sql("SELECT COUNT(*) FROM A, B")
        assert q.num_joins == 0

    def test_whitespace_and_newlines_tolerated(self):
        q = JoinQuery.from_sql(
            """SELECT COUNT(*)
               FROM  R1 ,  R2
               WHERE R1.A   =   R2.A"""
        )
        assert q.relations == ("R1", "R2")

    def test_non_count_select_rejected(self):
        with pytest.raises(ValueError, match="COUNT"):
            JoinQuery.from_sql("SELECT * FROM R1")

    def test_non_equi_predicate_rejected(self):
        with pytest.raises(ValueError, match="equi-joins"):
            JoinQuery.from_sql("SELECT COUNT(*) FROM R1, R2 WHERE R1.A < R2.B")

    def test_literal_comparison_rejected(self):
        with pytest.raises(ValueError, match="equi-joins"):
            JoinQuery.from_sql("SELECT COUNT(*) FROM R1, R2 WHERE R1.A = 5")

    def test_malformed_from_rejected(self):
        with pytest.raises(ValueError, match="FROM"):
            JoinQuery.from_sql("SELECT COUNT(*) FROM R1 R2")


class TestValidation:
    def test_validate_against_schemas(self):
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        q.validate_against(schemas())

    def test_missing_relation_detected(self):
        q = JoinQuery.chain(["R1", "RX"], ["A"])
        with pytest.raises(ValueError, match="not registered"):
            q.validate_against(schemas())

    def test_missing_attribute_detected(self):
        q = JoinQuery.chain(["R1", "R3"], ["A"])
        with pytest.raises(ValueError, match="does not exist"):
            q.validate_against(schemas())


class TestSlotPairsAndDomains:
    def test_slot_pairs(self):
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        pairs = q.slot_pairs(schemas())
        assert pairs == [(((0, 0)), ((1, 0))), (((1, 1)), ((2, 0)))]

    def test_unified_domains(self):
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        unified = q.unified_domains(schemas(), domains())
        # R1.A [0,9] unified with R2.A [5,14] -> [0,14]
        assert unified["R1"][0] == Domain.integer_range(0, 14)
        assert unified["R2"][0] == Domain.integer_range(0, 14)
        # B domains already equal
        assert unified["R2"][1] == Domain.of_size(20)
        assert unified["R3"][0] == Domain.of_size(20)
