"""EngineStats: the registry-backed facade, summary formatting, as_dict."""

import json

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import MetricsRegistry
from repro.streams import EngineStats, JoinQuery, OpKind, StreamEngine


def make_engine() -> StreamEngine:
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(16)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=16)
    return engine


class TestSummaryFormatting:
    def test_zero_seconds_rate_prints_na(self):
        """The ops/s column must say n/a, not emit bare padding spaces."""
        stats = EngineStats()
        stats.record_observer("cosine", 0.0, 42)
        summary = stats.summary()
        (line,) = [ln for ln in summary.splitlines() if "cosine" in ln]
        assert "n/a ops/s" in line

    def test_na_column_stays_aligned_with_real_rates(self):
        stats = EngineStats()
        stats.record_observer("fast", 0.0, 10)
        stats.record_observer("slow", 0.5, 10)
        lines = [ln for ln in stats.summary().splitlines() if "ops/s" in ln]
        assert len(lines) == 2
        assert len(lines[0]) == len(lines[1])  # same width -> not ragged
        assert all(ln.endswith(" ops/s") for ln in lines)

    def test_positive_rate_still_printed(self):
        stats = EngineStats()
        stats.record_observer("cosine", 0.5, 1000)
        assert "2,000 ops/s" in stats.summary()


class TestAsDict:
    def test_derived_quantities_present(self):
        stats = EngineStats()
        stats.record_ops(8, OpKind.INSERT, batched=True)
        stats.record_observer("cosine", 0.5, 1000)
        stats.record_observer("stuck", 0.0, 5)
        stats.record_estimate(0.25)
        stats.record_estimate(0.75)
        payload = stats.as_dict()
        assert payload["mean_estimate_latency"] == pytest.approx(0.5)
        assert payload["ops_per_sec"]["cosine"] == pytest.approx(2000.0)
        assert payload["ops_per_sec"]["stuck"] is None  # zero time: no rate

    def test_mean_latency_none_without_estimates(self):
        assert EngineStats().as_dict()["mean_estimate_latency"] is None

    def test_json_round_trip_does_not_raise(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.zeros((4, 1), dtype=np.int64))
        engine.insert("R2", (3,))
        engine.answer("q")
        payload = json.loads(json.dumps(engine.stats().as_dict()))
        assert payload["tuples_ingested"] == 5
        assert payload["relation_ops"] == {"R1": 4, "R2": 1}
        assert payload["mean_estimate_latency"] > 0
        assert payload["ops_per_sec"]["cosine"] is None or isinstance(
            payload["ops_per_sec"]["cosine"], float
        )


class TestRegistryFacade:
    def test_counters_visible_through_registry(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.zeros((7, 1), dtype=np.int64))
        registry = engine.telemetry.registry
        assert registry.get("repro_ingest_ops_total").value == 7
        assert (
            registry.get("repro_relation_ops_total").labels("R1").value == 7
        )
        assert engine.stats().registry is registry

    def test_standalone_stats_gets_private_registry(self):
        a, b = EngineStats(), EngineStats()
        a.record_ops(3, OpKind.INSERT, batched=False)
        assert a.tuples_ingested == 3 and b.tuples_ingested == 0

    def test_shared_registry_shares_counters(self):
        registry = MetricsRegistry()
        a = EngineStats(registry=registry)
        b = EngineStats(registry=registry)
        a.record_ops(3, OpKind.INSERT, batched=False)
        assert b.tuples_ingested == 3

    def test_per_query_estimate_attribution(self):
        stats = EngineStats()
        stats.record_estimate(0.1, query="q1")
        stats.record_estimate(0.2, query="q1")
        stats.record_estimate(0.3, query="q2")
        assert stats.query_estimates == {"q1": 2, "q2": 1}
        assert stats.estimate_calls == 3

    def test_estimate_latency_histogram_percentiles(self):
        stats = EngineStats()
        for v in (0.001, 0.002, 0.004, 0.008):
            stats.record_estimate(v)
        hist = stats.estimate_latency_histogram
        assert hist.count == 4
        assert 0.001 <= hist.percentile(50) <= hist.percentile(95) <= 0.008

    def test_reset_clears_everything_and_keeps_recording(self):
        stats = EngineStats()
        stats.record_ops(5, OpKind.DELETE, batched=True, relation="R1")
        stats.record_observer("cosine", 0.1, 5)
        stats.record_estimate(0.1, query="q")
        stats.reset()
        assert stats.tuples_ingested == 0
        assert stats.observer_time == {}
        assert stats.relation_ops == {}
        assert stats.query_estimates == {}
        assert stats.estimate_calls == 0
        # the facade must keep working after reset (fresh label children)
        stats.record_observer("cosine", 0.2, 7)
        assert stats.observer_ops == {"cosine": 7}
