"""Tests for exact join evaluation and the relative-error measure."""

import numpy as np
import pytest

from repro.streams.exact import (
    exact_join_size,
    exact_multijoin_size,
    exact_self_join_size,
    relative_error,
)


class TestSingleJoin:
    def test_matches_brute_force(self, rng):
        c1 = rng.integers(0, 9, 25).astype(float)
        c2 = rng.integers(0, 9, 25).astype(float)
        brute = sum(c1[v] * c2[v] for v in range(25))
        assert exact_join_size(c1, c2) == pytest.approx(brute)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="unified"):
            exact_join_size(np.ones(3), np.ones(4))

    def test_multidim_rejected(self):
        with pytest.raises(ValueError, match="1-d"):
            exact_join_size(np.ones((2, 2)), np.ones((2, 2)))

    def test_self_join(self, rng):
        c = rng.integers(0, 9, (4, 5)).astype(float)
        assert exact_self_join_size(c) == pytest.approx(float((c**2).sum()))


class TestMultiJoin:
    def test_chain_matches_brute_force(self, rng):
        n = 6
        t1 = rng.integers(0, 4, n).astype(float)
        t2 = rng.integers(0, 4, (n, n)).astype(float)
        t3 = rng.integers(0, 4, n).astype(float)
        brute = sum(
            t1[a] * t2[a, b] * t3[b] for a in range(n) for b in range(n)
        )
        est = exact_multijoin_size([t1, t2, t3], [((0, 0), (1, 0)), ((1, 1), (2, 0))])
        assert est == pytest.approx(brute)

    def test_unjoined_axes_marginalized(self, rng):
        t1 = rng.integers(0, 4, (5, 7)).astype(float)
        t2 = rng.integers(0, 4, 5).astype(float)
        est = exact_multijoin_size([t1, t2], [((0, 0), (1, 0))])
        assert est == pytest.approx(float(t1.sum(axis=1) @ t2))

    def test_mismatched_join_axes_rejected(self, rng):
        t1 = rng.integers(0, 4, 5).astype(float)
        t2 = rng.integers(0, 4, 6).astype(float)
        with pytest.raises(ValueError, match="different"):
            exact_multijoin_size([t1, t2], [((0, 0), (1, 0))])

    def test_duplicate_slot_rejected(self, rng):
        t = rng.integers(0, 4, 5).astype(float)
        with pytest.raises(ValueError, match="two predicates"):
            exact_multijoin_size(
                [t, t, t], [((0, 0), (1, 0)), ((0, 0), (2, 0))]
            )

    def test_out_of_range_rejected(self, rng):
        t = rng.integers(0, 4, 5).astype(float)
        with pytest.raises(ValueError, match="relation"):
            exact_multijoin_size([t], [((0, 0), (1, 0))])
        with pytest.raises(ValueError, match="axis"):
            exact_multijoin_size([t, t], [((0, 1), (1, 0))])

    def test_empty_relations_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            exact_multijoin_size([], [])


class TestRelativeError:
    def test_definition(self):
        assert relative_error(100.0, 80.0) == pytest.approx(0.2)
        assert relative_error(100.0, 130.0) == pytest.approx(0.3)

    def test_zero_error(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_nonpositive_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_error(0.0, 1.0)
