"""Tests for stream operation log I/O."""

import io

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.streams.io import (
    format_op_line,
    parse_op_line,
    read_ops,
    replay_into,
    write_ops,
)
from repro.streams.relation import StreamRelation
from repro.streams.tuples import OpKind, StreamOp


class TestParsing:
    def test_plain_line_is_insert(self):
        op = parse_op_line("7,123")
        assert op == StreamOp((7, 123), OpKind.INSERT)

    def test_markers(self):
        assert parse_op_line("+5").kind is OpKind.INSERT
        assert parse_op_line("-5").kind is OpKind.DELETE

    def test_blank_and_comment_lines_skipped(self):
        assert parse_op_line("") is None
        assert parse_op_line("   ") is None
        assert parse_op_line("# header") is None

    def test_strings_preserved(self):
        op = parse_op_line("+red,3")
        assert op.values == ("red", 3)

    def test_marker_without_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            parse_op_line("+")

    def test_roundtrip_format(self):
        for op in (StreamOp((1, 2)), StreamOp((9,), OpKind.DELETE)):
            assert parse_op_line(format_op_line(op)) == op


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path, rng):
        ops = [
            StreamOp((int(a), int(b)), OpKind.INSERT)
            for a, b in rng.integers(0, 10, size=(25, 2))
        ] + [StreamOp((3, 4), OpKind.DELETE)]
        path = tmp_path / "stream.log"
        assert write_ops(path, ops) == 26
        assert list(read_ops(path)) == ops

    def test_read_from_handle_with_comments(self):
        handle = io.StringIO("# my stream\n+1,2\n\n-1,2\n")
        ops = list(read_ops(handle))
        assert len(ops) == 2
        assert ops[1].kind is OpKind.DELETE

    def test_error_reports_line_number(self):
        handle = io.StringIO("+1\n-\n")
        with pytest.raises(ValueError, match="line 2"):
            list(read_ops(handle))


class TestReplay:
    def test_replay_into_relation(self, tmp_path, rng):
        relation = StreamRelation("R", ["A", "B"], [Domain.of_size(10)] * 2)
        rows = rng.integers(0, 10, size=(40, 2))
        ops = [StreamOp((int(a), int(b))) for a, b in rows]
        ops.append(StreamOp(tuple(int(v) for v in rows[0]), OpKind.DELETE))
        path = tmp_path / "r.log"
        write_ops(path, ops)

        applied = replay_into(relation, path)
        assert applied == 41
        assert relation.count == 39
        expected = np.zeros((10, 10), dtype=np.int64)
        np.add.at(expected, (rows[:, 0], rows[:, 1]), 1)
        expected[rows[0, 0], rows[0, 1]] -= 1
        np.testing.assert_array_equal(relation.counts, expected)
