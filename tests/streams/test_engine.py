"""Tests for the continuous query engine."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.streams.engine import ContinuousQueryEngine, embed_counts_tensor
from repro.streams.queries import JoinQuery
from repro.streams.relation import StreamRelation


def chain_engine(nA=40, nB=30, seed=0):
    eng = ContinuousQueryEngine(seed=seed)
    eng.create_relation("R1", ["A"], [Domain.of_size(nA)])
    eng.create_relation("R2", ["A", "B"], [Domain.of_size(nA), Domain.of_size(nB)])
    eng.create_relation("R3", ["B"], [Domain.of_size(nB)])
    return eng


def feed_chain(eng, rng, n_tuples=500, nA=40, nB=30):
    for _ in range(n_tuples):
        eng.insert("R1", (int(rng.integers(0, nA)),))
        eng.insert("R2", (int(rng.integers(0, nA)), int(rng.integers(0, nB))))
        eng.insert("R3", (int(rng.integers(0, nB)),))


class TestEmbedCountsTensor:
    def test_multi_axis_embedding(self, rng):
        counts = rng.integers(0, 5, size=(3, 4))
        orig = [Domain.integer_range(2, 4), Domain.integer_range(0, 3)]
        uni = [Domain.integer_range(0, 5), Domain.integer_range(0, 5)]
        out = embed_counts_tensor(counts, orig, uni)
        assert out.shape == (6, 6)
        assert out.sum() == counts.sum()
        np.testing.assert_array_equal(out[2:5, 0:4], counts)

    def test_identity(self, rng):
        counts = rng.integers(0, 5, size=(3, 3))
        doms = [Domain.of_size(3)] * 2
        np.testing.assert_array_equal(embed_counts_tensor(counts, doms, doms), counts)


class TestRelationManagement:
    def test_duplicate_relation_rejected(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.of_size(5)])
        with pytest.raises(ValueError, match="already exists"):
            eng.create_relation("R", ["A"], [Domain.of_size(5)])

    def test_add_existing_relation(self):
        eng = ContinuousQueryEngine()
        rel = StreamRelation("S", ["A"], [Domain.of_size(5)])
        eng.add_relation(rel)
        assert eng.relations["S"] is rel
        with pytest.raises(ValueError, match="already exists"):
            eng.add_relation(rel)


class TestQueryRegistration:
    def test_unknown_method_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        with pytest.raises(ValueError, match="unknown method"):
            eng.register_query("q", q, method="tarot")

    def test_duplicate_query_name_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        eng.register_query("q", q, budget=20)
        with pytest.raises(ValueError, match="already registered"):
            eng.register_query("q", q, budget=20)

    def test_unknown_relation_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "RX"], ["A"])
        with pytest.raises(ValueError, match="not registered"):
            eng.register_query("q", q, budget=20)

    def test_histogram_multijoin_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        with pytest.raises(ValueError, match="single-join"):
            eng.register_query("q", q, method="histogram", budget=20)

    def test_space_report(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        eng.register_query("q", q, method="basic_sketch", budget=60)
        report = eng.space_report()
        assert set(report["q"]) == {"R1", "R2", "R3"}
        assert all(v <= 60 for v in report["q"].values())


class TestEstimatesAgainstExact:
    @pytest.mark.parametrize(
        "method,budget,tolerance",
        [
            ("cosine", 400, 0.2),
            ("basic_sketch", 400, 0.8),
            ("skimmed_sketch", 400, 0.8),
            ("sample", 400, 0.5),
        ],
    )
    def test_chain_query_estimates(self, method, budget, tolerance, rng):
        eng = chain_engine(seed=7)
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        eng.register_query("q", q, method=method, budget=budget, probability=0.8)
        feed_chain(eng, rng)
        actual = eng.exact_answer("q")
        estimate = eng.answer("q")
        assert abs(estimate - actual) / actual < tolerance

    def test_cosine_exact_at_full_budget(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(20)])
        eng.create_relation("S2", ["A"], [Domain.of_size(20)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=20)
        for _ in range(200):
            eng.insert("S1", (int(rng.integers(0, 20)),))
            eng.insert("S2", (int(rng.integers(0, 20)),))
        assert eng.answer("q") == pytest.approx(eng.exact_answer("q"), rel=1e-9)

    def test_histogram_single_join(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(20)])
        eng.create_relation("S2", ["A"], [Domain.of_size(20)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="histogram", budget=20)
        for v in range(20):
            eng.insert("S1", (v,))
            eng.insert("S2", (v,))
        assert eng.answer("q") == pytest.approx(20.0)

    def test_wavelet_single_join(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(32)])
        eng.create_relation("S2", ["A"], [Domain.of_size(32)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="wavelet", budget=32)
        for v in rng.integers(0, 32, 300):
            eng.insert("S1", (int(v),))
            eng.insert("S2", (int(31 - v),))
        assert eng.answer("q") == pytest.approx(eng.exact_answer("q"), rel=1e-6)

    def test_wavelet_multijoin_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        with pytest.raises(ValueError, match="single-join"):
            eng.register_query("q", q, method="wavelet", budget=20)

    def test_wavelet_replay_matches_streaming(self, rng):
        early = ContinuousQueryEngine()
        late = ContinuousQueryEngine()
        for eng in (early, late):
            eng.create_relation("S1", ["A"], [Domain.of_size(25)])
            eng.create_relation("S2", ["A"], [Domain.of_size(25)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        early.register_query("q", q, method="wavelet", budget=12)
        rows = rng.integers(0, 25, size=(200, 2))
        for a, b in rows:
            for eng in (early, late):
                eng.insert("S1", (int(a),))
                eng.insert("S2", (int(b),))
        late.register_query("q", q, method="wavelet", budget=12)
        assert late.answer("q") == pytest.approx(early.answer("q"), rel=1e-9)

    def test_answers_returns_all_queries(self, rng):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        eng.register_query("a", q, method="cosine", budget=100)
        eng.register_query("b", q, method="basic_sketch", budget=100)
        feed_chain(eng, rng, n_tuples=100)
        answers = eng.answers()
        assert set(answers) == {"a", "b"}


class TestLateRegistrationReplay:
    def test_cosine_replay_matches_streaming(self, rng):
        # A query registered after data must answer as if it had seen
        # everything (the engine rebuilds synopses from exact state).
        early = ContinuousQueryEngine()
        late = ContinuousQueryEngine()
        for eng in (early, late):
            eng.create_relation("S1", ["A"], [Domain.of_size(25)])
            eng.create_relation("S2", ["A"], [Domain.of_size(25)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        early.register_query("q", q, method="cosine", budget=12)
        rows = rng.integers(0, 25, size=(300, 2))
        for a, b in rows:
            for eng in (early, late):
                eng.insert("S1", (int(a),))
                eng.insert("S2", (int(b),))
        late.register_query("q", q, method="cosine", budget=12)
        assert late.answer("q") == pytest.approx(early.answer("q"), rel=1e-9)

    def test_sketch_replay_matches_streaming(self, rng):
        early = ContinuousQueryEngine(seed=5)
        late = ContinuousQueryEngine(seed=5)
        for eng in (early, late):
            eng.create_relation("S1", ["A"], [Domain.of_size(25)])
            eng.create_relation("S2", ["A"], [Domain.of_size(25)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        early.register_query("q", q, method="basic_sketch", budget=30)
        rows = rng.integers(0, 25, size=(200, 2))
        for a, b in rows:
            for eng in (early, late):
                eng.insert("S1", (int(a),))
                eng.insert("S2", (int(b),))
        late.register_query("q", q, method="basic_sketch", budget=30)
        assert late.answer("q") == pytest.approx(early.answer("q"), rel=1e-9)


class TestDeletions:
    def test_cosine_tracks_deletions(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(10)])
        eng.create_relation("S2", ["A"], [Domain.of_size(10)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=10)
        for v in range(10):
            eng.insert("S1", (v,))
            eng.insert("S2", (v,))
        eng.insert("S1", (0,))
        eng.delete("S1", (0,))
        assert eng.answer("q") == pytest.approx(10.0, rel=1e-9)

    def test_sketch_tracks_deletions(self, rng):
        eng = ContinuousQueryEngine(seed=9)
        eng.create_relation("S1", ["A"], [Domain.of_size(10)])
        eng.create_relation("S2", ["A"], [Domain.of_size(10)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="basic_sketch", budget=40)
        for v in range(10):
            eng.insert("S1", (v,))
            eng.insert("S2", (v,))
        before = eng.answer("q")
        eng.insert("S1", (3,))
        eng.delete("S1", (3,))
        assert eng.answer("q") == pytest.approx(before, rel=1e-9)

    def test_sample_deletion_raises(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(10)])
        eng.create_relation("S2", ["A"], [Domain.of_size(10)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="sample", budget=5, probability=0.5)
        eng.insert("S1", (1,))
        with pytest.raises(NotImplementedError):
            eng.delete("S1", (1,))


class TestUnifiedDomainsEndToEnd:
    def test_offset_domains_join_correctly(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("T1", ["X"], [Domain.integer_range(10, 30)])
        eng.create_relation("T2", ["X"], [Domain.integer_range(20, 45)])
        q = JoinQuery.parse(["T1", "T2"], ["T1.X = T2.X"])
        eng.register_query("u", q, method="cosine", budget=36)
        for v in range(10, 31):
            eng.insert("T1", (v,))
        for v in range(20, 46):
            eng.insert("T2", (v,))
        # overlap 20..30 -> 11 matching pairs
        assert eng.exact_answer("u") == pytest.approx(11.0)
        assert eng.answer("u") == pytest.approx(11.0, rel=1e-6)


class TestQueryLifecycle:
    def test_unregister_detaches_observers(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(10)])
        eng.create_relation("S2", ["A"], [Domain.of_size(10)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=10)
        assert len(eng.relations["S1"]._observers) == 1
        eng.unregister_query("q")
        assert eng.relations["S1"]._observers == []
        assert eng.relations["S2"]._observers == []
        with pytest.raises(KeyError):
            eng.answer("q")

    def test_unregister_unknown_query(self):
        eng = ContinuousQueryEngine()
        with pytest.raises(KeyError, match="no query"):
            eng.unregister_query("ghost")

    def test_reregister_after_unregister(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("S1", ["A"], [Domain.of_size(10)])
        eng.create_relation("S2", ["A"], [Domain.of_size(10)])
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("q", q, method="cosine", budget=10)
        for v in range(10):
            eng.insert("S1", (v,))
            eng.insert("S2", (v,))
        eng.unregister_query("q")
        eng.register_query("q", q, method="cosine", budget=10)
        assert eng.answer("q") == pytest.approx(10.0, rel=1e-9)

    def test_failed_registration_leaves_no_orphans(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        # histogram rejects multi-join AFTER validation but builders may
        # attach nothing; use wavelet which also rejects, then verify no
        # observers leaked on any relation
        with pytest.raises(ValueError):
            eng.register_query("bad", q, method="histogram", budget=5)
        assert all(not r._observers for r in eng.relations.values())

    def test_sql_query_through_engine(self, rng):
        eng = chain_engine(seed=3)
        q = JoinQuery.from_sql(
            "SELECT COUNT(*) FROM R1, R2, R3 WHERE R1.A = R2.A AND R2.B = R3.B"
        )
        eng.register_query("sql", q, method="cosine", budget=200)
        feed_chain(eng, rng, n_tuples=200)
        actual = eng.exact_answer("sql")
        assert abs(eng.answer("sql") - actual) / actual < 0.3


class TestPartitionedSketchMethod:
    def _single_join_engine(self, rng, n=80):
        eng = ContinuousQueryEngine(seed=4)
        eng.create_relation("S1", ["A"], [Domain.of_size(n)])
        eng.create_relation("S2", ["A"], [Domain.of_size(n)])
        for v in (rng.zipf(1.2, 2_000) - 1) % n:
            eng.insert("S1", (int(v),))
        for v in (rng.zipf(1.2, 2_000) - 1) % n:
            eng.insert("S2", (int(v),))
        return eng

    def test_estimate_reasonable(self, rng):
        eng = self._single_join_engine(rng)
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("p", q, method="partitioned_sketch", budget=256, partitions=4)
        actual = eng.exact_answer("p")
        assert abs(eng.answer("p") - actual) / actual < 0.5

    def test_streaming_updates_after_registration(self, rng):
        eng = self._single_join_engine(rng)
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("p", q, method="partitioned_sketch", budget=256)
        before = eng.answer("p")
        for v in (rng.zipf(1.2, 1_000) - 1) % 80:
            eng.insert("S1", (int(v),))
        assert eng.answer("p") != before

    def test_multijoin_rejected(self):
        eng = chain_engine()
        q = JoinQuery.chain(["R1", "R2", "R3"], ["A", "B"])
        with pytest.raises(ValueError, match="single-join"):
            eng.register_query("p", q, method="partitioned_sketch", budget=64)

    def test_space_report_within_budget(self, rng):
        eng = self._single_join_engine(rng)
        q = JoinQuery.chain(["S1", "S2"], ["A"])
        eng.register_query("p", q, method="partitioned_sketch", budget=100, partitions=5)
        assert all(v <= 100 for v in eng.space_report()["p"].values())


class TestRangeQueries:
    def test_exact_at_full_budget(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.integer_range(10, 59)])
        eng.register_range_query("r", "R", "A", low=20, high=40, budget=50)
        values = rng.integers(10, 60, 500)
        for v in values:
            eng.insert("R", (int(v),))
        expected = float(((values >= 20) & (values <= 40)).sum())
        assert eng.exact_answer("r") == pytest.approx(expected)
        assert eng.answer("r") == pytest.approx(expected, rel=1e-6)

    def test_tracks_deletions(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.of_size(30)])
        eng.register_range_query("r", "R", "A", low=0, high=14, budget=30)
        eng.insert("R", (5,))
        eng.insert("R", (25,))
        eng.delete("R", (5,))
        assert eng.answer("r") == pytest.approx(0.0, abs=1e-6)

    def test_replays_history(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.of_size(30)])
        for v in rng.integers(0, 30, 200):
            eng.insert("R", (int(v),))
        eng.register_range_query("late", "R", "A", low=0, high=29, budget=30)
        assert eng.answer("late") == pytest.approx(200.0, rel=1e-6)

    def test_multiattribute_relation_marginal(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A", "B"], [Domain.of_size(20)] * 2)
        eng.register_range_query("r", "R", "B", low=0, high=9, budget=20)
        for a, b in rng.integers(0, 20, size=(300, 2)):
            eng.insert("R", (int(a), int(b)))
        assert eng.answer("r") == pytest.approx(eng.exact_answer("r"), rel=1e-6)

    def test_validation(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.of_size(10)])
        with pytest.raises(ValueError, match="not registered"):
            eng.register_range_query("r", "X", "A", 0, 5)
        with pytest.raises(ValueError, match="does not exist"):
            eng.register_range_query("r", "R", "Z", 0, 5)
        with pytest.raises(ValueError, match="empty range"):
            eng.register_range_query("r", "R", "A", 5, 2)
        eng.register_range_query("r", "R", "A", 0, 5)
        with pytest.raises(ValueError, match="already registered"):
            eng.register_range_query("r", "R", "A", 0, 5)

    def test_unregister_range_query(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("R", ["A"], [Domain.of_size(10)])
        eng.register_range_query("r", "R", "A", 0, 5)
        eng.unregister_query("r")
        assert eng.relations["R"]._observers == []


class TestBandQueries:
    def test_exact_at_full_budget(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("A", ["x"], [Domain.of_size(40)])
        eng.create_relation("B", ["x"], [Domain.of_size(40)])
        eng.register_band_query("near", ("A", "x"), ("B", "x"), width=3, budget=40)
        for v in rng.integers(0, 40, 300):
            eng.insert("A", (int(v),))
            eng.insert("B", (int(39 - v),))
        assert eng.answer("near") == pytest.approx(eng.exact_answer("near"), rel=1e-6)

    def test_width_zero_matches_equi_join(self, rng):
        eng = ContinuousQueryEngine()
        eng.create_relation("A", ["x"], [Domain.of_size(25)])
        eng.create_relation("B", ["x"], [Domain.of_size(25)])
        q = JoinQuery.parse(["A", "B"], ["A.x = B.x"])
        eng.register_query("equi", q, method="cosine", budget=25)
        eng.register_band_query("band0", ("A", "x"), ("B", "x"), width=0, budget=25)
        for v in rng.integers(0, 25, 200):
            eng.insert("A", (int(v),))
            eng.insert("B", (int(v),))
        assert eng.answer("band0") == pytest.approx(eng.answer("equi"), rel=1e-6)

    def test_unified_offset_domains(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("A", ["x"], [Domain.integer_range(10, 19)])
        eng.create_relation("B", ["x"], [Domain.integer_range(15, 29)])
        eng.register_band_query("near", ("A", "x"), ("B", "x"), width=1, budget=20)
        eng.insert("A", (19,))
        eng.insert("B", (20,))  # |19-20| <= 1 across the unified domain
        eng.insert("B", (25,))
        assert eng.exact_answer("near") == pytest.approx(1.0)
        assert eng.answer("near") == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        eng = ContinuousQueryEngine()
        eng.create_relation("A", ["x"], [Domain.of_size(10)])
        with pytest.raises(ValueError, match="not registered"):
            eng.register_band_query("b", ("A", "x"), ("Z", "x"), width=1)
        eng.create_relation("B", ["x"], [Domain.of_size(10)])
        eng.register_band_query("b", ("A", "x"), ("B", "x"), width=1)
        with pytest.raises(ValueError, match="already registered"):
            eng.register_band_query("b", ("A", "x"), ("B", "x"), width=1)
