"""Tests for Bernoulli and reservoir stream samples."""

import pytest

from repro.sampling.reservoir import BernoulliSample, ReservoirSample


class TestBernoulli:
    def test_invalid_probability_rejected(self):
        for p in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                BernoulliSample(p)

    def test_p_one_keeps_everything(self):
        s = BernoulliSample(1.0, seed=1)
        s.insert_many(range(100))
        assert s.sampled_size == 100
        assert s.stream_size == 100
        assert sum(s.counts.values()) == 100

    def test_sample_size_concentrates_around_p_n(self):
        s = BernoulliSample(0.3, seed=2)
        s.insert_many(range(20_000))
        assert s.sampled_size == pytest.approx(6000, rel=0.1)

    def test_counts_track_multiplicity(self):
        s = BernoulliSample(1.0, seed=3)
        s.insert_many([7, 7, 7, 9])
        assert s.counts[7] == 3 and s.counts[9] == 1

    def test_deterministic_given_seed(self):
        a = BernoulliSample(0.5, seed=4)
        b = BernoulliSample(0.5, seed=4)
        a.insert_many(range(100))
        b.insert_many(range(100))
        assert a.counts == b.counts

    def test_deletion_unsupported(self):
        s = BernoulliSample(0.5, seed=5)
        s.insert(1)
        with pytest.raises(NotImplementedError, match="deletions"):
            s.delete(1)


class TestReservoir:
    def test_capacity_enforced(self):
        r = ReservoirSample(10, seed=1)
        r.insert_many(range(1000))
        assert r.sampled_size == 10
        assert r.stream_size == 1000

    def test_short_stream_fully_kept(self):
        r = ReservoirSample(10, seed=2)
        r.insert_many(range(4))
        assert sorted(r.items) == [0, 1, 2, 3]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_uniform_inclusion_probability(self):
        # Every element of a length-50 stream should appear in a k=10
        # reservoir with probability 1/5; check the first element's rate.
        hits = 0
        runs = 2000
        for seed in range(runs):
            r = ReservoirSample(10, seed=seed)
            r.insert_many(range(50))
            hits += 0 in r.items
        assert hits / runs == pytest.approx(0.2, abs=0.03)

    def test_value_counts(self):
        r = ReservoirSample(5, seed=3)
        r.insert_many([1, 1, 2])
        counts = r.value_counts()
        assert counts[1] == 2 and counts[2] == 1
