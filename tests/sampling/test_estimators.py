"""Tests for sampling-based join size estimators."""

from collections import Counter

import numpy as np
import pytest

from repro.sampling.estimators import (
    estimate_chain_join_size_samples,
    estimate_join_size_bernoulli,
    estimate_join_size_reservoir,
)
from repro.sampling.reservoir import BernoulliSample, ReservoirSample


def bernoulli_from_values(values, p, seed):
    s = BernoulliSample(p, seed=seed)
    s.insert_many(values)
    return s


class TestBernoulliJoin:
    def test_full_samples_are_exact(self, rng):
        v1 = rng.integers(0, 20, 500)
        v2 = rng.integers(0, 20, 400)
        s1 = bernoulli_from_values(v1, 1.0, 1)
        s2 = bernoulli_from_values(v2, 1.0, 2)
        actual = float(
            np.bincount(v1, minlength=20) @ np.bincount(v2, minlength=20)
        )
        result = estimate_join_size_bernoulli(s1, s2)
        assert result.estimate == pytest.approx(actual)
        assert result.std_error == 0.0

    def test_unbiased_over_many_draws(self, rng):
        v1 = rng.integers(0, 30, 2000)
        v2 = rng.integers(0, 30, 2000)
        actual = float(
            np.bincount(v1, minlength=30) @ np.bincount(v2, minlength=30)
        )
        estimates = []
        for seed in range(40):
            s1 = bernoulli_from_values(v1, 0.2, seed * 2)
            s2 = bernoulli_from_values(v2, 0.2, seed * 2 + 1)
            estimates.append(estimate_join_size_bernoulli(s1, s2).estimate)
        assert np.mean(estimates) == pytest.approx(actual, rel=0.1)

    def test_confidence_interval_contains_estimate(self, rng):
        v = rng.integers(0, 10, 500)
        s1 = bernoulli_from_values(v, 0.5, 1)
        s2 = bernoulli_from_values(v, 0.5, 2)
        result = estimate_join_size_bernoulli(s1, s2)
        lo, hi = result.confidence_interval()
        assert lo <= result.estimate <= hi

    def test_disjoint_samples_estimate_zero(self):
        s1 = bernoulli_from_values([1] * 50, 1.0, 1)
        s2 = bernoulli_from_values([2] * 50, 1.0, 2)
        assert estimate_join_size_bernoulli(s1, s2).estimate == 0.0


class TestReservoirJoin:
    def test_empty_reservoir_estimates_zero(self):
        r1 = ReservoirSample(5, seed=1)
        r2 = ReservoirSample(5, seed=2)
        assert estimate_join_size_reservoir(r1, r2).estimate == 0.0

    def test_full_capture_is_exact(self, rng):
        v1 = rng.integers(0, 10, 50)
        v2 = rng.integers(0, 10, 60)
        r1 = ReservoirSample(100, seed=1)
        r1.insert_many(v1)
        r2 = ReservoirSample(100, seed=2)
        r2.insert_many(v2)
        actual = float(np.bincount(v1, minlength=10) @ np.bincount(v2, minlength=10))
        assert estimate_join_size_reservoir(r1, r2).estimate == pytest.approx(actual)

    def test_roughly_unbiased(self, rng):
        v1 = rng.integers(0, 15, 3000)
        v2 = rng.integers(0, 15, 3000)
        actual = float(np.bincount(v1, minlength=15) @ np.bincount(v2, minlength=15))
        estimates = []
        for seed in range(40):
            r1 = ReservoirSample(300, seed=seed * 2)
            r1.insert_many(v1)
            r2 = ReservoirSample(300, seed=seed * 2 + 1)
            r2.insert_many(v2)
            estimates.append(estimate_join_size_reservoir(r1, r2).estimate)
        assert np.mean(estimates) == pytest.approx(actual, rel=0.15)


class TestChainJoin:
    def test_exact_with_full_samples(self, rng):
        n = 10
        t1 = rng.integers(0, 4, n)
        t2 = rng.integers(0, 3, (n, n))
        t3 = rng.integers(0, 4, n)
        actual = float(np.einsum("a,ab,b->", t1.astype(float), t2.astype(float), t3.astype(float)))

        samples = [BernoulliSample(1.0, seed=i) for i in range(3)]
        c1 = Counter({v: int(c) for v, c in enumerate(t1) if c})
        c2 = Counter(
            {(a, b): int(t2[a, b]) for a in range(n) for b in range(n) if t2[a, b]}
        )
        c3 = Counter({v: int(c) for v, c in enumerate(t3) if c})
        est = estimate_chain_join_size_samples(samples, [c1, c2, c3])
        assert est == pytest.approx(actual)

    def test_scaling_by_probabilities(self):
        samples = [BernoulliSample(0.5, seed=1), BernoulliSample(0.25, seed=2)]
        counters = [Counter({3: 2}), Counter({3: 4})]
        est = estimate_chain_join_size_samples(samples, counters)
        assert est == pytest.approx(2 * 4 / (0.5 * 0.25))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="one tuple counter"):
            estimate_chain_join_size_samples([BernoulliSample(0.5)], [])

    def test_single_relation_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            estimate_chain_join_size_samples([BernoulliSample(0.5)], [Counter()])

    def test_inner_relation_must_be_binary(self):
        samples = [BernoulliSample(1.0, seed=i) for i in range(3)]
        counters = [Counter({1: 1}), Counter({1: 1}), Counter({1: 1})]
        with pytest.raises(ValueError, match="two attributes"):
            estimate_chain_join_size_samples(samples, counters)
