"""Observer fault isolation: quarantine, degraded queries, answer policies."""

import math

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.resilience.chaos import ChaosError, FlakyObserver
from repro.resilience.errors import DegradedQueryError
from repro.streams import JoinQuery, StreamEngine


def make_engine(policy=None):
    engine = StreamEngine(seed=3)
    domain = Domain.of_size(50)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q_cosine", query, method="cosine", budget=16)
    engine.register_query("q_sketch", query, method="basic_sketch", budget=16)
    if policy is not None:
        engine.enable_fault_isolation(policy)
    return engine


def seed_rows(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 50, size=(n, 1))


class TestDefaultBehaviour:
    def test_without_isolation_observer_faults_propagate(self):
        engine = make_engine(policy=None)
        engine.relations["R1"].attach(FlakyObserver(fail_on=1))
        with pytest.raises(ChaosError):
            engine.ingest_batch("R1", seed_rows(8))

    def test_unknown_policy_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="unknown degraded-answer policy"):
            engine.enable_fault_isolation("retry")


class TestQuarantine:
    def test_faulting_observer_is_detached_and_ingest_continues(self):
        engine = make_engine(policy="raise")
        flaky = FlakyObserver(fail_on=2)
        engine.relations["R1"].attach(flaky)
        for _ in range(4):
            engine.ingest_batch("R1", seed_rows(16))
        # Failed exactly once (call 2), then was quarantined.
        assert flaky.faults_raised == 1
        assert engine.relations["R1"].count == 64
        assert engine.degraded_queries() == {}

    def test_unowned_observer_fault_does_not_degrade_queries(self):
        engine = make_engine(policy="raise")
        engine.relations["R1"].attach(FlakyObserver(fail_on=1))
        engine.ingest_batch("R1", seed_rows(4))
        engine.ingest_batch("R2", seed_rows(4))
        assert engine.degraded_queries() == {}
        assert math.isfinite(engine.answer("q_cosine"))

    def test_fault_metrics_recorded(self):
        engine = make_engine(policy="raise")
        engine.relations["R1"].attach(FlakyObserver(fail_on=1))
        engine.ingest_batch("R1", seed_rows(4))
        counter = engine.telemetry.registry.counter(
            "repro_observer_faults_total",
            "Observer exceptions absorbed by fault isolation, per method.",
            labelnames=("method",),
        )
        assert counter.labels("FlakyObserver").value == 1

    def test_per_tuple_path_also_isolated(self):
        engine = make_engine(policy="raise")
        flaky = FlakyObserver(fail_on=1)
        engine.relations["R1"].attach(flaky)
        engine.insert("R1", (5,))
        engine.insert("R1", (6,))
        assert flaky.faults_raised == 1
        assert engine.relations["R1"].count == 2


def degrade_query(engine, name="q_cosine"):
    """Make the named query's own observer fault on the next batch."""
    state = engine._queries[name]
    _, observer = state.attachments[0]
    original = observer.on_ops

    def exploding(relation, rows, kind):
        raise RuntimeError("synopsis exploded")

    observer.on_ops = exploding
    engine.ingest_batch("R1", seed_rows(4, seed=9))
    observer.on_ops = original
    return engine


class TestDegradedAnswerPolicies:
    def test_raise_policy_raises_typed_error(self):
        engine = degrade_query(make_engine(policy="raise"))
        assert list(engine.degraded_queries()) == ["q_cosine"]
        with pytest.raises(DegradedQueryError) as info:
            engine.answer("q_cosine")
        assert info.value.query == "q_cosine"
        assert "RuntimeError" in info.value.reason

    def test_healthy_queries_still_answer(self):
        engine = degrade_query(make_engine(policy="raise"))
        assert math.isfinite(engine.answer("q_sketch"))

    def test_nan_policy_returns_nan(self):
        engine = degrade_query(make_engine(policy="nan"))
        assert math.isnan(engine.answer("q_cosine"))

    def test_exact_policy_falls_back_to_ground_truth(self):
        engine = degrade_query(make_engine(policy="exact"))
        engine.ingest_batch("R1", seed_rows(50, seed=1))
        engine.ingest_batch("R2", seed_rows(50, seed=2))
        assert engine.answer("q_cosine") == engine.exact_answer("q_cosine")

    def test_degraded_gauge_tracks_count(self):
        engine = degrade_query(make_engine(policy="raise"))
        gauge = engine.telemetry.registry.gauge(
            "repro_queries_degraded",
            "Registered queries currently degraded by a quarantined observer.",
        )
        assert gauge.value == 1


class TestRecoveringObserver:
    def test_flaky_observer_recovery_window(self):
        flaky = FlakyObserver(fail_on=2, recover_after=2)
        for expect_raise in (False, True, True, False, False):
            if expect_raise:
                with pytest.raises(ChaosError):
                    flaky.on_op(None, None)
            else:
                flaky.on_op(None, None)
        assert flaky.faults_raised == 2
