"""Retry/backoff policy tests (no real sleeping anywhere)."""

import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience.chaos import FlakyIO
from repro.resilience.retry import RetryPolicy, retry_io


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(attempts=6, base_delay=0.5, max_delay=3.0)
        assert policy.delays() == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(attempts=1).delays() == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0)


class TestJitter:
    def test_jittered_delays_stay_within_the_exponential_caps(self):
        policy = RetryPolicy(attempts=6, base_delay=0.5, max_delay=3.0, jitter=True)
        caps = policy.backoff_caps()
        assert caps == [0.5, 1.0, 2.0, 3.0, 3.0]
        for seed in range(20):
            delays = policy.delays(random.Random(seed))
            assert all(0.0 <= d <= cap for d, cap in zip(delays, caps))

    def test_jitter_decorrelates_two_shards(self):
        """Same policy, different RNG state: different retry pacing."""
        policy = RetryPolicy(attempts=5, base_delay=0.5, jitter=True)
        assert policy.delays(random.Random(1)) != policy.delays(random.Random(2))

    def test_jitter_draws_are_deterministic_given_the_rng(self):
        policy = RetryPolicy(attempts=4, jitter=True)
        assert policy.delays(random.Random(7)) == policy.delays(random.Random(7))

    def test_without_jitter_delays_are_the_caps(self):
        policy = RetryPolicy(attempts=4, base_delay=0.5, max_delay=3.0)
        assert list(policy.delays(random.Random(3))) == list(policy.backoff_caps())


class TestDeadline:
    def test_deadline_reraises_instead_of_sleeping_past_the_budget(self):
        """A worker must fail fast rather than back off past its heartbeat."""
        flaky = FlakyIO(lambda: "ok", fail_times=10)
        slept = []
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        with pytest.raises(OSError, match="injected transient"):
            retry_io(
                flaky,
                policy=RetryPolicy(
                    attempts=10, base_delay=1.0, max_delay=8.0, deadline=4.0
                ),
                sleep=sleep,
                clock=clock,
            )
        # slept 1 + 2 = 3s; the next 4s delay would cross the 4s deadline,
        # so the failure is re-raised without that sleep
        assert slept == [1.0, 2.0]
        assert flaky.calls == 3

    def test_generous_deadline_changes_nothing(self):
        flaky = FlakyIO(lambda: "ok", fail_times=2)
        slept = []
        result = retry_io(
            flaky,
            policy=RetryPolicy(attempts=4, base_delay=0.1, deadline=60.0),
            sleep=slept.append,
        )
        assert result == "ok" and slept == [0.1, 0.2]


class TestRetryMetrics:
    def test_retries_are_counted_per_operation(self):
        registry = MetricsRegistry()
        retry_io(
            FlakyIO(lambda: 1, fail_times=2),
            policy=RetryPolicy(attempts=4),
            sleep=lambda s: None,
            operation="checkpoint_write",
            registry=registry,
        )
        retry_io(
            FlakyIO(lambda: 1, fail_times=1),
            policy=RetryPolicy(attempts=4),
            sleep=lambda s: None,
            operation="telemetry_append",
            registry=registry,
        )
        counts = registry.get("repro_retries_total").as_value_dict()
        assert counts["checkpoint_write"] == 2
        assert counts["telemetry_append"] == 1

    def test_no_registry_means_no_counting_and_no_error(self):
        assert (
            retry_io(
                FlakyIO(lambda: 5, fail_times=1),
                policy=RetryPolicy(attempts=2),
                sleep=lambda s: None,
                operation="checkpoint_write",
            )
            == 5
        )


class TestRetryIO:
    def test_returns_result_without_failures(self):
        assert retry_io(lambda: 42, sleep=lambda s: None) == 42

    def test_recovers_from_transient_failures(self):
        flaky = FlakyIO(lambda: "ok", fail_times=2)
        slept = []
        result = retry_io(
            flaky, policy=RetryPolicy(attempts=4, base_delay=0.1), sleep=slept.append
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert slept == [0.1, 0.2]

    def test_exhausted_attempts_reraise_last_failure(self):
        flaky = FlakyIO(lambda: "ok", fail_times=10)
        with pytest.raises(OSError, match="injected transient"):
            retry_io(flaky, policy=RetryPolicy(attempts=3), sleep=lambda s: None)
        assert flaky.calls == 3

    def test_non_retryable_exception_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_io(boom, policy=RetryPolicy(attempts=5), sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_callback_sees_each_failure(self):
        flaky = FlakyIO(lambda: 1, fail_times=2)
        seen = []
        retry_io(
            flaky,
            policy=RetryPolicy(attempts=3),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(1, OSError), (2, OSError)]

    def test_custom_retry_on_tuple(self):
        flaky = FlakyIO(lambda: "done", fail_times=1, exc_factory=lambda: ValueError("x"))
        result = retry_io(
            flaky,
            policy=RetryPolicy(attempts=2),
            retry_on=(ValueError,),
            sleep=lambda s: None,
        )
        assert result == "done"
