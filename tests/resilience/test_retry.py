"""Retry/backoff policy tests (no real sleeping anywhere)."""

import pytest

from repro.resilience.chaos import FlakyIO
from repro.resilience.retry import RetryPolicy, retry_io


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(attempts=6, base_delay=0.5, max_delay=3.0)
        assert policy.delays() == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(attempts=1).delays() == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


class TestRetryIO:
    def test_returns_result_without_failures(self):
        assert retry_io(lambda: 42, sleep=lambda s: None) == 42

    def test_recovers_from_transient_failures(self):
        flaky = FlakyIO(lambda: "ok", fail_times=2)
        slept = []
        result = retry_io(
            flaky, policy=RetryPolicy(attempts=4, base_delay=0.1), sleep=slept.append
        )
        assert result == "ok"
        assert flaky.calls == 3
        assert slept == [0.1, 0.2]

    def test_exhausted_attempts_reraise_last_failure(self):
        flaky = FlakyIO(lambda: "ok", fail_times=10)
        with pytest.raises(OSError, match="injected transient"):
            retry_io(flaky, policy=RetryPolicy(attempts=3), sleep=lambda s: None)
        assert flaky.calls == 3

    def test_non_retryable_exception_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_io(boom, policy=RetryPolicy(attempts=5), sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_callback_sees_each_failure(self):
        flaky = FlakyIO(lambda: 1, fail_times=2)
        seen = []
        retry_io(
            flaky,
            policy=RetryPolicy(attempts=3),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(1, OSError), (2, OSError)]

    def test_custom_retry_on_tuple(self):
        flaky = FlakyIO(lambda: "done", fail_times=1, exc_factory=lambda: ValueError("x"))
        result = retry_io(
            flaky,
            policy=RetryPolicy(attempts=2),
            retry_on=(ValueError,),
            sleep=lambda s: None,
        )
        assert result == "done"
