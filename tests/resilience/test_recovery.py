"""Crash/recovery properties: a restored engine is indistinguishable.

The central guarantee of the checkpoint subsystem, driven by the chaos
harness: crash the ingest at *any* batch boundary, restore the newest
checkpoint, replay the batches the checkpoint had not yet seen — and
every registered query (all seven estimation methods plus range and
band) answers exactly what an uncrashed control engine answers.
"""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.resilience import CheckpointStore, SimulatedCrash
from repro.resilience.chaos import CrashingIngest
from repro.resilience.errors import CheckpointError
from repro.streams import JoinQuery, StreamEngine

ALL_METHODS = [
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
]

DOMAIN_SIZE = 64


def build_engine(methods=ALL_METHODS, seed=11):
    engine = StreamEngine(seed=seed)
    domain = Domain.of_size(DOMAIN_SIZE)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        options = {"probability": 0.25} if method == "sample" else {}
        engine.register_query(f"q_{method}", query, method=method, budget=24, **options)
    engine.register_range_query("q_range", "R1", "A", 10, 30, budget=24)
    return engine


def make_batches(n_batches=8, batch_size=40, seed=5):
    rng = np.random.default_rng(seed)
    batches = []
    for i in range(n_batches):
        name = "R1" if i % 2 == 0 else "R2"
        rows = ((rng.zipf(1.4, size=batch_size) - 1) % DOMAIN_SIZE)[:, None]
        batches.append((name, rows))
    return batches


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("crash_at", [1, 2, 4, 7, 8])
    def test_crash_at_any_batch_boundary_recovers_exactly(self, tmp_path, crash_at):
        batches = make_batches()

        control = build_engine()
        CrashingIngest(control).run(batches)
        expected = control.answers()

        victim = build_engine()
        store = CheckpointStore(tmp_path / f"crash{crash_at}", keep=3)
        harness = CrashingIngest(victim, store, checkpoint_every=1, crash_at=crash_at)
        with pytest.raises(SimulatedCrash):
            harness.run(batches)
        applied = harness.batches_applied
        assert applied == crash_at - 1

        if store.latest() is None:
            restored = build_engine()
            remaining = batches
        else:
            restored = StreamEngine.load_checkpoint(store.latest())
            remaining = batches[applied:]
        CrashingIngest(restored).run(remaining)

        recovered = restored.answers()
        assert set(recovered) == set(expected)
        for name, value in expected.items():
            assert recovered[name] == pytest.approx(value, rel=1e-9), name

    def test_exact_tensors_restored_bit_for_bit(self, tmp_path):
        engine = build_engine(methods=["cosine"])
        for name, rows in make_batches():
            engine.ingest_batch(name, rows)
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        for name, relation in engine.relations.items():
            np.testing.assert_array_equal(relation.counts, restored.relations[name].counts)
            assert restored.relations[name].count == relation.count

    def test_future_ingest_matches_after_restore(self, tmp_path):
        """Sample RNG bit state and partition geometry survive the restore."""
        engine = build_engine()
        history = make_batches(n_batches=4, seed=21)
        for name, rows in history:
            engine.ingest_batch(name, rows)
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")

        future = make_batches(n_batches=4, seed=22)
        for name, rows in future:
            engine.ingest_batch(name, rows)
            restored.ingest_batch(name, rows)
        original = engine.answers()
        for name, value in restored.answers().items():
            assert value == pytest.approx(original[name], rel=1e-9), name

    def test_deletions_survive_checkpoint(self, tmp_path):
        engine = build_engine(methods=["cosine", "basic_sketch", "histogram"])
        rows = np.arange(30)[:, None] % DOMAIN_SIZE
        engine.ingest_batch("R1", rows)
        engine.ingest_batch("R2", rows)
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        from repro.streams.tuples import OpKind

        engine.ingest_batch("R1", rows[:10], kind=OpKind.DELETE)
        restored.ingest_batch("R1", rows[:10], kind=OpKind.DELETE)
        original = engine.answers()
        for name, value in restored.answers().items():
            assert value == pytest.approx(original[name], rel=1e-9), name


class TestCheckpointCarriesConfiguration:
    def test_degraded_state_survives_restore(self, tmp_path):
        engine = build_engine(methods=["cosine", "basic_sketch"])
        engine.enable_fault_isolation("raise")
        state = engine._queries["q_cosine"]
        _, observer = state.attachments[0]

        def exploding(relation, rows, kind):
            raise RuntimeError("synopsis exploded")

        observer.on_ops = exploding
        engine.ingest_batch("R1", np.array([[1], [2]]))
        assert list(engine.degraded_queries()) == ["q_cosine"]

        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        assert list(restored.degraded_queries()) == ["q_cosine"]
        from repro.resilience.errors import DegradedQueryError

        with pytest.raises(DegradedQueryError):
            restored.answer("q_cosine")

    def test_fault_policy_and_dead_lettering_survive_restore(self, tmp_path):
        engine = build_engine(methods=["cosine"])
        engine.enable_fault_isolation("nan")
        engine.enable_dead_lettering(capacity=7)
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        assert restored.dead_letters is not None
        assert restored.dead_letters.capacity == 7
        # Malformed rows are diverted, not fatal, on the restored engine too.
        restored.ingest_batch("R1", [[1], [9999]])
        assert restored.dead_letters.total == 1

    def test_unknown_query_kind_rejected(self, tmp_path):
        engine = build_engine(methods=["cosine"])
        engine._queries["q_cosine"].spec = {"kind": "galactic"}
        engine.save_checkpoint(tmp_path / "x.ckpt")
        with pytest.raises(CheckpointError, match="unknown kind"):
            StreamEngine.load_checkpoint(tmp_path / "x.ckpt")


class TestMultiAttributeAndBand:
    def test_multi_attribute_chain_recovers(self, tmp_path):
        engine = StreamEngine(seed=2)
        d = Domain.of_size(32)
        engine.create_relation("R1", ["A"], [d])
        engine.create_relation("R2", ["A", "B"], [d, d])
        engine.create_relation("R3", ["B"], [d])
        chain = JoinQuery.parse(["R1", "R2", "R3"], ["R1.A = R2.A", "R2.B = R3.B"])
        engine.register_query("q_chain", chain, method="cosine", budget=16)
        engine.register_band_query("q_band", ("R1", "A"), ("R3", "B"), 2, budget=16)

        rng = np.random.default_rng(0)
        engine.ingest_batch("R1", rng.integers(0, 32, (60, 1)))
        engine.ingest_batch("R2", rng.integers(0, 32, (60, 2)))
        engine.ingest_batch("R3", rng.integers(0, 32, (60, 1)))

        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        original = engine.answers()
        for name, value in restored.answers().items():
            assert value == pytest.approx(original[name], rel=1e-9), name


class TestBoundObserversRideAlong:
    """Degree statistics are regular observer state: checkpoints carry them."""

    def test_degree_observers_restore_with_the_query(self, tmp_path):
        engine = StreamEngine(seed=3)
        domain = Domain.of_size(DOMAIN_SIZE)
        engine.create_relation("R1", ["A"], [domain])
        engine.create_relation("R2", ["A"], [domain])
        query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
        engine.register_query("q", query, method="basic_sketch", budget=24, bounds=True)
        for name, rows in make_batches(n_batches=4):
            engine.ingest_batch(name, rows)
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")
        assert restored.bound_report("q") == engine.bound_report("q")
        # the restored observers are live, not a frozen snapshot: future
        # ingest moves both engines' bounds in lockstep
        for name, rows in make_batches(n_batches=2, seed=33):
            engine.ingest_batch(name, rows)
            restored.ingest_batch(name, rows)
        assert restored.bound_report("q") == engine.bound_report("q")
