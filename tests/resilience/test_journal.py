"""CommandJournal: append/mark/replay-suffix/truncate bookkeeping."""

from repro.resilience.journal import CommandJournal, JournalEntry


def filled_journal(n=4):
    journal = CommandJournal()
    for i in range(n):
        journal.append("ingest", ("R", [[i]]), {"traceparent": None})
    return journal


class TestAppendAndReplay:
    def test_append_preserves_order_and_payload(self):
        journal = CommandJournal()
        journal.append("create_relation", ("R", ["A"]), {})
        entry = journal.append("ingest", ("R", [[1], [2]]), {"traceparent": "t"})
        assert isinstance(entry, JournalEntry)
        assert entry.method == "ingest"
        assert entry.args == ("R", [[1], [2]])
        assert entry.kwargs == {"traceparent": "t"}
        assert [e.method for e in journal.all_entries()] == [
            "create_relation",
            "ingest",
        ]

    def test_unmarked_journal_replays_everything(self):
        journal = filled_journal(3)
        assert not journal.has_mark
        assert journal.pending == 3
        assert len(journal.since_mark()) == 3

    def test_mark_splits_replay_suffix(self):
        journal = filled_journal(2)
        journal.mark("ckpt-0001")
        journal.append("ingest", ("R", [[9]]), {})
        assert journal.has_mark
        assert journal.mark_ref == "ckpt-0001"
        assert journal.pending == 1
        suffix = journal.since_mark()
        assert [e.args[1] for e in suffix] == [[[9]]]

    def test_mark_without_ref_still_pins_the_position(self):
        journal = filled_journal(2)
        journal.mark()
        assert journal.pending == 0
        assert not journal.has_mark  # no durable ref recorded


class TestTruncateAndClear:
    def test_truncate_drops_only_the_covered_prefix(self):
        journal = filled_journal(3)
        journal.mark("ckpt")
        journal.append("ingest", ("R", [[7]]), {})
        assert journal.truncate() == 3
        assert len(journal) == 1
        assert journal.pending == 1
        assert journal.mark_ref == "ckpt"  # the mark ref survives truncation

    def test_truncate_without_mark_is_a_noop(self):
        journal = filled_journal(3)
        assert journal.truncate() == 0
        assert len(journal) == 3

    def test_clear_forgets_entries_and_mark(self):
        journal = filled_journal(3)
        journal.mark("ckpt")
        journal.clear()
        assert len(journal) == 0
        assert journal.pending == 0
        assert not journal.has_mark
        assert journal.mark_ref is None


class TestAccounting:
    def test_counters_and_snapshot(self):
        journal = filled_journal(3)
        journal.mark("ckpt")
        journal.append("ingest", ("R", [[5]]), {})
        journal.since_mark()
        snapshot = journal.as_dict()
        assert snapshot == {
            "entries": 4,
            "pending": 1,
            "mark_ref": "ckpt",
            "appended_total": 4,
            "replayed_total": 1,
        }

    def test_appended_total_survives_truncate(self):
        journal = filled_journal(5)
        journal.mark("ckpt")
        journal.truncate()
        assert journal.as_dict()["appended_total"] == 5
