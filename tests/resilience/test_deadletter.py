"""Ingest validation and dead-letter buffer behaviour."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.resilience.deadletter import (
    REASON_ARITY,
    REASON_NON_FINITE,
    REASON_OUT_OF_DOMAIN,
    DeadLetter,
    DeadLetterBuffer,
    validate_rows,
)
from repro.streams import JoinQuery, StreamEngine
from repro.streams.relation import StreamRelation


def make_relation(size=10, ndim=1) -> StreamRelation:
    return StreamRelation("R", [f"A{i}" for i in range(ndim)], [Domain.of_size(size)] * ndim)


class TestValidateRows:
    def test_clean_batch_passes_through(self):
        relation = make_relation()
        clean, rejects = validate_rows(relation, np.array([[1], [2], [3]]))
        assert rejects == []
        assert clean.shape == (3, 1)

    def test_out_of_domain_rows_rejected(self):
        relation = make_relation(size=10)
        clean, rejects = validate_rows(relation, [[1], [99], [-3], [5]])
        assert clean[:, 0].tolist() == [1, 5]
        assert [r for _, r in rejects] == [REASON_OUT_OF_DOMAIN] * 2
        assert {row for row, _ in rejects} == {(99,), (-3,)}

    def test_nan_and_inf_rejected_as_non_finite(self):
        relation = make_relation()
        clean, rejects = validate_rows(
            relation, np.array([[1.0], [float("nan")], [float("inf")], [4.0]])
        )
        assert clean.shape[0] == 2
        assert [r for _, r in rejects] == [REASON_NON_FINITE] * 2

    def test_ragged_arity_rejected(self):
        relation = make_relation()
        clean, rejects = validate_rows(relation, [[1], [1, 2], [], [3]])
        assert clean.shape[0] == 2
        assert [r for _, r in rejects] == [REASON_ARITY] * 2

    def test_mixed_rejections_report_each_reason(self):
        relation = make_relation(size=10)
        clean, rejects = validate_rows(relation, [[1], [99], [float("nan")], [5], [1, 2]])
        assert clean.shape[0] == 2
        reasons = sorted(r for _, r in rejects)
        assert reasons == sorted([REASON_ARITY, REASON_NON_FINITE, REASON_OUT_OF_DOMAIN])

    def test_multi_attribute_relation(self):
        relation = make_relation(size=5, ndim=2)
        clean, rejects = validate_rows(relation, [[1, 2], [1, 7], [0, 0], [3]])
        assert clean.shape == (2, 2)
        assert len(rejects) == 2

    def test_empty_batch(self):
        relation = make_relation()
        clean, rejects = validate_rows(relation, [])
        assert clean.shape[0] == 0
        assert rejects == []


class TestDeadLetterBuffer:
    def letter(self, i: int) -> DeadLetter:
        return DeadLetter("R", (i,), "insert", REASON_OUT_OF_DOMAIN)

    def test_bounded_ring_evicts_oldest(self):
        buffer = DeadLetterBuffer(capacity=3)
        for i in range(5):
            buffer.add(self.letter(i))
        assert len(buffer) == 3
        assert buffer.total == 5
        assert buffer.dropped == 2
        assert [l.row for l in buffer] == [(2,), (3,), (4,)]

    def test_tail_returns_most_recent(self):
        buffer = DeadLetterBuffer(capacity=10)
        for i in range(6):
            buffer.add(self.letter(i))
        assert [l.row for l in buffer.tail(2)] == [(4,), (5,)]
        assert buffer.tail(0) == []

    def test_clear_preserves_accounting(self):
        buffer = DeadLetterBuffer(capacity=2)
        for i in range(4):
            buffer.add(self.letter(i))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.total == 4
        assert buffer.dropped == 2

    def test_as_dict_snapshot(self):
        buffer = DeadLetterBuffer(capacity=4)
        buffer.add(self.letter(1))
        snap = buffer.as_dict()
        assert snap["held"] == 1
        assert snap["tail"][0]["reason"] == REASON_OUT_OF_DOMAIN

    def test_rejects_capacity_below_one(self):
        with pytest.raises(ValueError):
            DeadLetterBuffer(capacity=0)


class TestEngineDeadLettering:
    def make_engine(self):
        engine = StreamEngine(seed=0)
        domain = Domain.of_size(10)
        engine.create_relation("R1", ["A"], [domain])
        engine.create_relation("R2", ["A"], [domain])
        query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
        engine.register_query("q", query, method="cosine", budget=8)
        return engine

    def test_disabled_by_default_bad_batch_raises(self):
        engine = self.make_engine()
        with pytest.raises(Exception):
            engine.ingest_batch("R1", [[99]])

    def test_poisoned_batch_is_split_not_fatal(self):
        engine = self.make_engine()
        letters = engine.enable_dead_lettering(capacity=16)
        engine.ingest_batch("R1", [[1], [99], [float("nan")], [5], [1, 2]])
        assert engine.relations["R1"].count == 2
        assert letters.total == 3
        reasons = sorted(l.reason for l in letters)
        assert reasons == sorted([REASON_ARITY, REASON_NON_FINITE, REASON_OUT_OF_DOMAIN])

    def test_metrics_labelled_per_relation_and_reason(self):
        engine = self.make_engine()
        engine.enable_dead_lettering()
        engine.ingest_batch("R1", [[99], [98]])
        engine.ingest_batch("R2", [[float("inf")]])
        counter = engine.telemetry.registry.counter(
            "repro_ingest_dead_letters_total",
            "Rows rejected into the dead-letter buffer.",
            labelnames=("relation", "reason"),
        )
        assert counter.labels("R1", REASON_OUT_OF_DOMAIN).value == 2
        assert counter.labels("R2", REASON_NON_FINITE).value == 1

    def test_synopses_only_see_clean_rows(self):
        engine = self.make_engine()
        engine.enable_dead_lettering()
        control = self.make_engine()
        engine.ingest_batch("R1", [[1], [99], [2]])
        engine.ingest_batch("R2", [[1], [2], [float("nan")]])
        control.ingest_batch("R1", [[1], [2]])
        control.ingest_batch("R2", [[1], [2]])
        assert engine.answer("q") == pytest.approx(control.answer("q"))

    def test_fully_clean_batch_records_nothing(self):
        engine = self.make_engine()
        letters = engine.enable_dead_lettering()
        engine.ingest_batch("R1", [[1], [2]])
        assert letters.total == 0
        assert engine.relations["R1"].count == 2


class TestReplay:
    def make_engine(self, size=10):
        engine = StreamEngine(seed=0)
        engine.create_relation("R1", ["A"], [Domain.of_size(size)])
        engine.create_relation("R2", ["A"], [Domain.of_size(size)])
        return engine

    def test_replay_into_a_corrected_engine_partial_success(self):
        """Rows parked for a too-narrow domain ingest once it is widened."""
        narrow = self.make_engine(size=10)
        narrow.enable_dead_lettering()
        narrow.ingest_batch("R1", [[99], [12], [float("nan")]])
        narrow.ingest_batch("R2", [[55]])
        assert narrow.dead_letters.total == 4

        wide = self.make_engine(size=100)
        wide.enable_dead_lettering()
        report = narrow.dead_letters.replay(wide)

        assert report.attempted == 4
        assert report.ingested == 3  # 99, 12, 55 fit the wide domain
        assert report.still_dead == 1  # NaN is bad in any domain
        assert report.by_relation == {"R1": 2, "R2": 1}
        assert wide.relations["R1"].count == 2
        assert wide.relations["R2"].count == 1
        # the still-bad row re-parked in the *target's* buffer...
        assert len(wide.dead_letters) == 1
        assert next(iter(wide.dead_letters)).reason == REASON_NON_FINITE
        # ...and the source buffer was drained
        assert len(narrow.dead_letters) == 0

    def test_replay_preserves_ingest_order_within_a_relation(self):
        narrow = self.make_engine(size=5)
        narrow.enable_dead_lettering()
        narrow.ingest_batch("R1", [[7], [8]])
        narrow.ingest_batch("R2", [[9]])
        narrow.ingest_batch("R1", [[6]])

        wide = self.make_engine(size=100)
        wide.enable_dead_lettering()
        control = self.make_engine(size=100)
        control.ingest_batch("R1", [[7], [8]])
        control.ingest_batch("R2", [[9]])
        control.ingest_batch("R1", [[6]])

        report = narrow.dead_letters.replay(wide)
        assert report.ingested == 4 and report.still_dead == 0
        assert wide.relations["R1"].counts.tolist() == (
            control.relations["R1"].counts.tolist()
        )

    def test_replay_of_empty_buffer_reports_zeroes(self):
        engine = self.make_engine()
        buffer = engine.enable_dead_lettering()
        report = buffer.replay(engine)
        assert report.as_dict() == {
            "attempted": 0,
            "ingested": 0,
            "still_dead": 0,
            "by_relation": {},
        }

    def test_replay_refuses_an_unguarded_target(self):
        engine = self.make_engine()
        engine.enable_dead_lettering()
        engine.ingest_batch("R1", [[99]])
        unguarded = self.make_engine(size=100)
        with pytest.raises(ValueError, match="dead-lettering"):
            engine.dead_letters.replay(unguarded)

    def test_self_replay_reparks_rows_that_are_still_bad(self):
        engine = self.make_engine(size=10)
        buffer = engine.enable_dead_lettering()
        engine.ingest_batch("R1", [[99]])
        report = buffer.replay(engine)
        assert report.attempted == 1 and report.still_dead == 1
        assert len(buffer) == 1  # back in the ring for the next attempt
        assert buffer.total == 2  # the re-rejection counts like any other

    def test_sharded_engine_replay_entry_point(self):
        from repro.sharding import ShardedStreamEngine

        fleet = ShardedStreamEngine(num_shards=2, seed=1)
        fleet.create_relation("R1", ["A"], [Domain.of_size(10)])
        fleet.enable_dead_lettering()
        fleet.ingest_batch("R1", [[1], [99]])
        assert fleet.dead_letters.total == 1
        report = fleet.replay_dead_letters()
        assert report.attempted == 1 and report.still_dead == 1
        fleet.close()

    def test_sharded_engine_replay_requires_enablement(self):
        from repro.sharding import ShardedStreamEngine

        fleet = ShardedStreamEngine(num_shards=2, seed=1)
        with pytest.raises(ValueError, match="not enabled"):
            fleet.replay_dead_letters()
        fleet.close()
