"""Checkpoint file format, integrity checking, rotation, and write retries."""

import json

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.resilience.chaos import FailingFilesystem
from repro.resilience.checkpoint import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    CheckpointStore,
    domain_from_spec,
    domain_to_spec,
    iter_payload_arrays,
    payload_nbytes,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.errors import CheckpointError, CheckpointIntegrityError
from repro.resilience.retry import RetryPolicy


def sample_payload() -> dict:
    return {
        "engine": {"seed": 7},
        "arrays": [np.arange(10, dtype=np.int64), np.eye(3)],
        "nested": {"text": "hello"},
    }


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.ckpt"
        size = write_checkpoint(path, sample_payload())
        assert path.stat().st_size == size
        restored = read_checkpoint(path)
        assert restored["engine"] == {"seed": 7}
        np.testing.assert_array_equal(restored["arrays"][0], np.arange(10))
        np.testing.assert_array_equal(restored["arrays"][1], np.eye(3))

    def test_header_is_ascii_json_first_line(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, sample_payload())
        header = json.loads(path.read_bytes().split(b"\n", 1)[0])
        assert header["magic"] == FORMAT_MAGIC
        assert header["version"] == FORMAT_VERSION
        assert len(header["sha256"]) == 64

    def test_overwrite_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, {"v": 1})
        write_checkpoint(path, {"v": 2})
        assert read_checkpoint(path)["v"] == 2
        assert [p.name for p in tmp_path.iterdir()] == ["x.ckpt"]

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "absent.ckpt")

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"this is not a checkpoint\n\x00\x01")
        with pytest.raises(CheckpointIntegrityError):
            read_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, sample_payload())
        header_line, blob = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["magic"] = "other-format"
        path.write_bytes(json.dumps(header).encode() + b"\n" + blob)
        with pytest.raises(CheckpointIntegrityError, match="bad magic"):
            read_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, sample_payload())
        header_line, blob = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["version"] = FORMAT_VERSION + 1
        path.write_bytes(json.dumps(header).encode() + b"\n" + blob)
        with pytest.raises(CheckpointIntegrityError, match="unsupported"):
            read_checkpoint(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, sample_payload())
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        with pytest.raises(CheckpointIntegrityError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_payload_byte_fails_sha256(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, sample_payload())
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointIntegrityError, match="SHA-256"):
            read_checkpoint(path)


class TestWriteRetries:
    def test_transient_rename_failure_is_absorbed(self, tmp_path):
        path = tmp_path / "x.ckpt"
        with FailingFilesystem(fail_replaces=2) as fs:
            write_checkpoint(
                path,
                sample_payload(),
                retry=RetryPolicy(attempts=4, base_delay=0.01),
                sleep=lambda s: None,
            )
        assert fs.replace_calls == 3
        assert read_checkpoint(path)["engine"]["seed"] == 7

    def test_persistent_failure_raises_and_cleans_temp(self, tmp_path):
        path = tmp_path / "x.ckpt"
        with FailingFilesystem(fail_replaces=99):
            with pytest.raises(OSError, match="injected rename"):
                write_checkpoint(
                    path, sample_payload(), retry=RetryPolicy(attempts=2), sleep=lambda s: None
                )
        assert list(tmp_path.iterdir()) == []


class TestCheckpointStore:
    class _FakeEngine:
        def __init__(self):
            self.saves = 0

        def save_checkpoint(self, path, **options):
            self.saves += 1
            return write_checkpoint(path, {"save": self.saves}, **options)

    def test_sequential_naming_and_latest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts", keep=5)
        engine = self._FakeEngine()
        assert store.latest() is None
        first = store.save(engine)
        second = store.save(engine)
        assert first.name == "checkpoint-00000001.ckpt"
        assert second.name == "checkpoint-00000002.ckpt"
        assert store.latest() == second

    def test_rotation_keeps_newest_k(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        engine = self._FakeEngine()
        for _ in range(5):
            store.save(engine)
        names = [p.name for p in store.paths()]
        assert names == ["checkpoint-00000004.ckpt", "checkpoint-00000005.ckpt"]
        assert read_checkpoint(store.latest())["save"] == 5

    def test_sequence_continues_across_store_instances(self, tmp_path):
        engine = self._FakeEngine()
        CheckpointStore(tmp_path, keep=3).save(engine)
        path = CheckpointStore(tmp_path, keep=3).save(engine)
        assert path.name == "checkpoint-00000002.ckpt"

    def test_ignores_foreign_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("not a checkpoint")
        (tmp_path / "checkpoint-bad.ckpt").write_text("bad name")
        store = CheckpointStore(tmp_path, keep=3)
        assert store.paths() == []
        assert store.next_path().name == "checkpoint-00000001.ckpt"

    def test_rejects_keep_below_one(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)


class TestDomainSpecs:
    def test_integer_range_round_trip(self):
        domain = Domain.integer_range(5, 42)
        restored = domain_from_spec(domain_to_spec(domain))
        assert restored.low == domain.low
        assert restored.size == domain.size

    def test_categorical_round_trip(self):
        domain = Domain.categorical(["red", "green", "blue"])
        restored = domain_from_spec(domain_to_spec(domain))
        assert restored.is_categorical
        assert restored.index_of("blue") == domain.index_of("blue")


class TestPayloadDiagnostics:
    def test_payload_nbytes_counts_array_bytes(self):
        payload = {"a": np.zeros(100, dtype=np.int64)}
        assert payload_nbytes(payload) >= 800

    def test_iter_payload_arrays_finds_nested_arrays(self):
        found = list(iter_payload_arrays(sample_payload()))
        assert len(found) == 2
