"""Tests for the basic AGMS sketch."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.sketches.basic import (
    AGMSSketch,
    estimate_join_size,
    estimate_join_size_with_spread,
    estimate_multijoin_size,
    estimate_self_join_size,
    make_sketch_families,
    median_of_means,
    slice_sketch,
    split_budget,
)
from repro.sketches.hashing import SignFamily


@pytest.fixture
def family():
    return SignFamily(200, 60, seed=21)


class TestSplitBudget:
    def test_default_geometry(self):
        s1, s2 = split_budget(500)
        assert (s1, s2) == (100, 5)

    def test_small_budgets_fewer_medians(self):
        assert split_budget(20)[1] == 1
        assert split_budget(50)[1] == 3
        assert split_budget(100)[1] == 5

    def test_explicit_medians_forced_odd(self):
        s1, s2 = split_budget(100, num_medians=4)
        assert s2 == 3

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            split_budget(0)
        with pytest.raises(ValueError):
            split_budget(10, num_medians=11)


class TestMaintenance:
    def test_update_stream_equals_from_counts(self, family, rng):
        values = rng.integers(0, 200, size=150)
        streamed = AGMSSketch(family, 20, 3)
        for v in values:
            streamed.update(int(v))
        counts = np.bincount(values, minlength=200).astype(float)
        batch = AGMSSketch.from_counts(family, counts, 20, 3)
        np.testing.assert_array_equal(streamed.atoms, batch.atoms)
        assert streamed.count == batch.count == 150

    def test_update_batch_equals_loop(self, family, rng):
        values = rng.integers(0, 200, size=100)
        a = AGMSSketch(family, 20, 3)
        a.update_batch(values, chunk=7)
        b = AGMSSketch(family, 20, 3)
        for v in values:
            b.update(int(v))
        np.testing.assert_array_equal(a.atoms, b.atoms)

    def test_deletion_is_negative_update(self, family):
        sk = AGMSSketch(family, 20, 3)
        sk.update(5)
        sk.update(9)
        sk.update(5, weight=-1)
        only_nine = AGMSSketch(family, 20, 3)
        only_nine.update(9)
        np.testing.assert_array_equal(sk.atoms, only_nine.atoms)
        assert sk.count == 1

    def test_two_dimensional_stream_equals_batch(self, rng):
        fa = SignFamily(30, 45, seed=1)
        fb = SignFamily(20, 45, seed=2)
        rows = np.stack(
            [rng.integers(0, 30, size=80), rng.integers(0, 20, size=80)], axis=1
        )
        streamed = AGMSSketch([fa, fb], 15, 3)
        streamed.update_batch(rows)
        counts = np.zeros((30, 20))
        np.add.at(counts, (rows[:, 0], rows[:, 1]), 1.0)
        batch = AGMSSketch.from_counts([fa, fb], counts, 15, 3)
        np.testing.assert_array_equal(streamed.atoms, batch.atoms)

    def test_three_dimensional_from_counts(self, rng):
        fams = [SignFamily(6, 9, seed=i) for i in range(3)]
        counts = rng.integers(0, 4, size=(6, 6, 6)).astype(float)
        sk = AGMSSketch.from_counts(fams, counts, 3, 3)
        # cross-check one atomic sketch by brute force
        s0 = [f.sign_matrix().astype(float)[0] for f in fams]
        expected = np.einsum("abc,a,b,c->", counts, *s0)
        assert sk.atoms[0] == pytest.approx(expected)

    def test_family_size_mismatch_rejected(self, family):
        with pytest.raises(ValueError, match="functions"):
            AGMSSketch(family, 10, 3)  # 30 != 60

    def test_wrong_arity_rejected(self, family):
        sk = AGMSSketch(family, 20, 3)
        with pytest.raises(ValueError, match="attribute indices"):
            sk.update([1, 2])


class TestEstimation:
    def test_median_of_means_geometry(self):
        products = np.arange(12, dtype=float)
        est = median_of_means(products, num_means=4, num_medians=3)
        # groups [0..3],[4..7],[8..11] -> means 1.5, 5.5, 9.5 -> median 5.5
        assert est == 5.5

    def test_median_of_means_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            median_of_means(np.arange(10.0), 4, 3)

    def test_join_estimate_unbiased(self, rng):
        # Average over many independent sketch draws approaches the truth.
        n = 100
        c1 = rng.integers(0, 10, n).astype(float)
        c2 = rng.integers(0, 10, n).astype(float)
        actual = float(c1 @ c2)
        estimates = []
        for seed in range(60):
            fam = SignFamily(n, 64, seed=seed)
            s1 = AGMSSketch.from_counts(fam, c1, 64, 1)
            s2 = AGMSSketch.from_counts(fam, c2, 64, 1)
            estimates.append(estimate_join_size(s1, s2))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.15)

    def test_self_join_estimate_unbiased(self, rng):
        n = 80
        c = rng.integers(0, 10, n).astype(float)
        actual = float(c @ c)
        estimates = []
        for seed in range(60):
            fam = SignFamily(n, 64, seed=seed)
            sk = AGMSSketch.from_counts(fam, c, 64, 1)
            estimates.append(estimate_self_join_size(sk))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.1)

    def test_single_value_stream_exact(self):
        # Section 4.3.2: the sketch's best case — one distinct value — is
        # estimated exactly by every atomic sketch (X = +-N, X1*X2 = N^2).
        fam = SignFamily(50, 15, seed=3)
        counts = np.zeros(50)
        counts[7] = 1000.0
        s1 = AGMSSketch.from_counts(fam, counts, 5, 3)
        s2 = AGMSSketch.from_counts(fam, counts, 5, 3)
        assert estimate_join_size(s1, s2) == pytest.approx(1e6)

    def test_incompatible_families_rejected(self, rng):
        c = rng.integers(0, 5, 40).astype(float)
        s1 = AGMSSketch.from_counts(SignFamily(40, 15, seed=1), c, 5, 3)
        s2 = AGMSSketch.from_counts(SignFamily(40, 15, seed=2), c, 5, 3)
        with pytest.raises(ValueError, match="share a sign family"):
            estimate_join_size(s1, s2)

    def test_multijoin_chain_unbiased(self, rng):
        n = 40
        t1 = rng.integers(0, 5, n).astype(float)
        t2 = rng.integers(0, 3, (n, n)).astype(float)
        t3 = rng.integers(0, 5, n).astype(float)
        actual = float(np.einsum("a,ab,b->", t1, t2, t3))
        estimates = []
        for seed in range(40):
            fa = SignFamily(n, 100, seed=seed * 2)
            fb = SignFamily(n, 100, seed=seed * 2 + 1)
            s1 = AGMSSketch.from_counts(fa, t1, 100, 1)
            s2 = AGMSSketch.from_counts([fa, fb], t2, 100, 1)
            s3 = AGMSSketch.from_counts(fb, t3, 100, 1)
            estimates.append(estimate_multijoin_size([s1, s2, s3]))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.25)

    def test_multijoin_geometry_mismatch_rejected(self, rng):
        fam = SignFamily(20, 15, seed=1)
        c = rng.integers(0, 5, 20).astype(float)
        a = AGMSSketch.from_counts(fam, c, 5, 3)
        fam2 = SignFamily(20, 15, seed=1)
        b = AGMSSketch.from_counts(fam2, c, 15, 1)
        with pytest.raises(ValueError, match="geometry"):
            estimate_multijoin_size([a, b])

    def test_multijoin_needs_two_sketches(self, family, rng):
        sk = AGMSSketch.from_counts(family, rng.integers(0, 5, 200).astype(float), 20, 3)
        with pytest.raises(ValueError, match="at least two"):
            estimate_multijoin_size([sk])


class TestSlicing:
    def test_slice_matches_fresh_small_sketch(self, rng):
        n = 150
        counts = rng.integers(0, 9, n).astype(float)
        fam_big = SignFamily(n, 60, seed=5)
        big = AGMSSketch.from_counts(fam_big, counts, 20, 3)
        sliced = slice_sketch(big, 5, 3)
        fam_small = SignFamily(n, 15, seed=5)
        fresh = AGMSSketch.from_counts(fam_small, counts, 5, 3)
        np.testing.assert_array_equal(sliced.atoms, fresh.atoms)
        assert sliced.count == big.count

    def test_slice_cannot_grow(self, family, rng):
        sk = AGMSSketch.from_counts(family, rng.integers(0, 5, 200).astype(float), 20, 3)
        with pytest.raises(ValueError, match="grow"):
            slice_sketch(sk, 30, 3)


class TestFamilyHelper:
    def test_make_sketch_families(self):
        families, s1, s2 = make_sketch_families(
            [Domain.of_size(10), Domain.of_size(20)], budget=100, seed=4
        )
        assert set(families) == {0, 1}
        assert families[0].num_functions == s1 * s2
        assert families[0].domain_size == 10
        assert families[1].domain_size == 20


class TestSpread:
    def test_estimate_matches_plain_median_of_means(self, rng):
        n = 100
        c1 = rng.integers(0, 10, n).astype(float)
        c2 = rng.integers(0, 10, n).astype(float)
        fam = SignFamily(n, 60, seed=4)
        a = AGMSSketch.from_counts(fam, c1, 20, 3)
        b = AGMSSketch.from_counts(fam, c2, 20, 3)
        estimate, spread = estimate_join_size_with_spread(a, b)
        assert estimate == pytest.approx(estimate_join_size(a, b))
        assert spread >= 0

    def test_spread_zero_on_single_value_streams(self):
        # the sketch's best case: every atomic sketch agrees exactly
        n = 50
        counts = np.zeros(n)
        counts[7] = 500.0
        fam = SignFamily(n, 15, seed=5)
        a = AGMSSketch.from_counts(fam, counts, 5, 3)
        b = AGMSSketch.from_counts(fam, counts, 5, 3)
        estimate, spread = estimate_join_size_with_spread(a, b)
        assert estimate == pytest.approx(500.0**2)
        assert spread == pytest.approx(0.0, abs=1e-9)

    def test_spread_flags_hard_regimes(self, rng):
        # uniform data (the sketch worst case): spread is a large fraction
        # of the estimate, warning the caller
        n = 2_000
        counts = np.full(n, 10.0)
        fam = SignFamily(n, 60, seed=6)
        a = AGMSSketch.from_counts(fam, counts, 20, 3)
        b = AGMSSketch.from_counts(fam, counts, 20, 3)
        estimate, spread = estimate_join_size_with_spread(a, b)
        assert spread > 0.02 * abs(estimate)

    def test_incompatible_rejected(self, rng):
        c = rng.integers(0, 5, 30).astype(float)
        a = AGMSSketch.from_counts(SignFamily(30, 15, seed=1), c, 5, 3)
        b = AGMSSketch.from_counts(SignFamily(30, 15, seed=2), c, 5, 3)
        with pytest.raises(ValueError, match="share"):
            estimate_join_size_with_spread(a, b)
