"""Hypothesis property tests on sketch invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.basic import AGMSSketch, median_of_means, slice_sketch
from repro.sketches.hashing import SignFamily
from repro.sketches.partitioned import equi_mass_partition


@st.composite
def counts_vector(draw, n_max=60):
    n = draw(st.integers(min_value=2, max_value=n_max))
    values = draw(st.lists(st.integers(0, 12), min_size=n, max_size=n))
    return np.array(values, dtype=float)


class TestSketchLinearity:
    @settings(max_examples=25, deadline=None)
    @given(counts=counts_vector(), seed=st.integers(0, 2**31 - 1))
    def test_atoms_are_linear_in_counts(self, counts, seed):
        # sketch(a + b) == sketch(a) + sketch(b), coordinatewise: the
        # foundation of both deletion support and mergeability.
        n = len(counts)
        fam = SignFamily(n, 12, seed=seed)
        r = np.random.default_rng(seed)
        other = r.integers(0, 12, n).astype(float)
        s_sum = AGMSSketch.from_counts(fam, counts + other, 4, 3)
        s_a = AGMSSketch.from_counts(fam, counts, 4, 3)
        s_b = AGMSSketch.from_counts(fam, other, 4, 3)
        np.testing.assert_allclose(s_sum.atoms, s_a.atoms + s_b.atoms, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(counts=counts_vector(), seed=st.integers(0, 2**31 - 1))
    def test_order_invariance(self, counts, seed):
        n = len(counts)
        fam = SignFamily(n, 12, seed=seed)
        values = np.repeat(np.arange(n), counts.astype(int))
        if values.size == 0:
            return
        r = np.random.default_rng(seed)
        a = AGMSSketch(fam, 4, 3)
        a.update_batch(values)
        b = AGMSSketch(fam, 4, 3)
        b.update_batch(r.permutation(values))
        np.testing.assert_allclose(a.atoms, b.atoms, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        counts=counts_vector(),
        seed=st.integers(0, 2**31 - 1),
        s1=st.integers(1, 6),
        s2=st.sampled_from([1, 3, 5]),
    )
    def test_slicing_tower(self, counts, seed, s1, s2):
        # any slice of a slice equals the direct slice
        n = len(counts)
        fam = SignFamily(n, 60, seed=seed)
        big = AGMSSketch.from_counts(fam, counts, 20, 3)
        if s1 * s2 > 60:
            return
        direct = slice_sketch(big, s1, s2)
        mid_size = max(s1 * s2, 30)
        via = slice_sketch(slice_sketch(big, mid_size, 1), s1, s2)
        np.testing.assert_allclose(direct.atoms, via.atoms, atol=1e-12)


class TestMedianOfMeansProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        s1=st.integers(1, 8),
        s2=st.sampled_from([1, 3, 5]),
        scale=st.floats(0.1, 100.0),
    )
    def test_scale_equivariance(self, seed, s1, s2, scale):
        r = np.random.default_rng(seed)
        products = r.normal(size=s1 * s2)
        assert median_of_means(products * scale, s1, s2) == pytest.approx(
            median_of_means(products, s1, s2) * scale, rel=1e-9, abs=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), s1=st.integers(1, 8))
    def test_single_group_is_plain_mean(self, seed, s1):
        r = np.random.default_rng(seed)
        products = r.normal(size=s1)
        assert median_of_means(products, s1, 1) == pytest.approx(products.mean())


class TestPartitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(counts=counts_vector(), k=st.integers(1, 8))
    def test_boundaries_well_formed(self, counts, k):
        k = min(k, len(counts))
        boundaries = equi_mass_partition(counts, k)
        assert boundaries[0] == 0
        assert boundaries[-1] == len(counts)
        assert np.all(np.diff(boundaries) >= 1) or boundaries[-1] == len(counts)

    @settings(max_examples=40, deadline=None)
    @given(counts=counts_vector(), k=st.integers(1, 6))
    def test_partitions_cover_domain_disjointly(self, counts, k):
        k = min(k, len(counts))
        boundaries = equi_mass_partition(counts, k)
        covered = []
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            covered.extend(range(lo, hi))
        assert covered == list(range(len(counts)))
