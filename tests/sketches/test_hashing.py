"""Tests for the 4-wise independent sign families."""

import numpy as np
import pytest

from repro.sketches.hashing import MERSENNE_P, SignFamily


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SignFamily(0, 10, seed=1)
        with pytest.raises(ValueError):
            SignFamily(10, 0, seed=1)
        with pytest.raises(ValueError):
            SignFamily(int(MERSENNE_P), 10, seed=1)

    def test_deterministic_given_seed(self):
        a = SignFamily(100, 20, seed=7)
        b = SignFamily(100, 20, seed=7)
        np.testing.assert_array_equal(a.sign_matrix(), b.sign_matrix())

    def test_different_seeds_differ(self):
        a = SignFamily(100, 20, seed=7)
        b = SignFamily(100, 20, seed=8)
        assert not np.array_equal(a.sign_matrix(), b.sign_matrix())

    def test_prefix_stability(self):
        # The experiment harness slices big sketches into smaller ones; the
        # first S' functions of a family must be exactly the functions of a
        # smaller family with the same seed.
        big = SignFamily(64, 50, seed=3)
        small = SignFamily(64, 12, seed=3)
        np.testing.assert_array_equal(big.sign_matrix()[:12], small.sign_matrix())

    def test_compatible_with(self):
        a = SignFamily(50, 10, seed=1)
        assert a.compatible_with(SignFamily(50, 10, seed=1))
        assert not a.compatible_with(SignFamily(50, 10, seed=2))
        assert not a.compatible_with(SignFamily(51, 10, seed=1))
        assert not a.compatible_with(SignFamily(50, 11, seed=1))


class TestSignProperties:
    def test_signs_are_plus_minus_one(self):
        fam = SignFamily(200, 30, seed=5)
        signs = fam.sign_matrix()
        assert set(np.unique(signs)) == {-1, 1}

    def test_signs_shape(self):
        fam = SignFamily(100, 8, seed=5)
        assert fam.signs(np.array([0, 5, 99])).shape == (8, 3)

    def test_out_of_domain_rejected(self):
        fam = SignFamily(10, 4, seed=5)
        with pytest.raises(ValueError, match="outside"):
            fam.signs(np.array([10]))
        with pytest.raises(ValueError, match="outside"):
            fam.signs(np.array([-1]))

    def test_sign_matrix_chunking_consistent(self):
        fam = SignFamily(1000, 6, seed=9)
        np.testing.assert_array_equal(fam.sign_matrix(chunk=64), fam.sign_matrix(chunk=10_000))

    def test_signs_roughly_balanced(self):
        # Each function's mean sign over a large domain should be near 0.
        fam = SignFamily(20_000, 10, seed=11)
        means = fam.sign_matrix().astype(float).mean(axis=1)
        assert np.all(np.abs(means) < 0.05)

    def test_pairwise_decorrelated(self):
        # E[xi(u) xi(v)] ~ 0 for u != v, averaged over many functions.
        fam = SignFamily(50, 4000, seed=13)
        signs = fam.sign_matrix().astype(float)
        corr = (signs[:, 3] * signs[:, 17]).mean()
        assert abs(corr) < 0.08

    def test_fourth_moment_close_to_independent(self):
        # 4-wise independence: E[xi(a)xi(b)xi(c)xi(d)] ~ 0 for distinct values.
        fam = SignFamily(50, 4000, seed=17)
        signs = fam.sign_matrix().astype(float)
        moment = (signs[:, 1] * signs[:, 5] * signs[:, 23] * signs[:, 40]).mean()
        assert abs(moment) < 0.08

    def test_hash_values_below_prime(self):
        fam = SignFamily(1000, 5, seed=19)
        values = fam.hash_values(np.arange(1000))
        assert values.max() < int(MERSENNE_P)
