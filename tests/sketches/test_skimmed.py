"""Tests for the skimmed sketch."""

import numpy as np
import pytest

from repro.sketches.basic import AGMSSketch, estimate_join_size
from repro.sketches.hashing import SignFamily
from repro.sketches.skimmed import (
    estimate_frequencies,
    estimate_join_size_skimmed,
    estimate_multijoin_size_skimmed,
    skim_dense_frequencies,
    skim_threshold,
)


def make_pair(counts_a, counts_b, size=100, s1=20, s2=5, seed=31):
    n = len(counts_a)
    fam = SignFamily(n, s1 * s2, seed=seed)
    a = AGMSSketch.from_counts(fam, np.asarray(counts_a, dtype=float), s1, s2)
    b = AGMSSketch.from_counts(fam, np.asarray(counts_b, dtype=float), s1, s2)
    return a, b, fam


class TestFrequencyEstimation:
    def test_heavy_hitter_recovered(self, rng):
        n = 200
        counts = rng.integers(0, 5, n).astype(float)
        counts[42] = 5000.0
        fam = SignFamily(n, 100, seed=1)
        sk = AGMSSketch.from_counts(fam, counts, 20, 5)
        f_hat = estimate_frequencies(sk, fam.sign_matrix().astype(float))
        assert f_hat[42] == pytest.approx(5000.0, rel=0.2)
        assert np.argmax(f_hat) == 42

    def test_requires_single_attribute(self, rng):
        fams = [SignFamily(10, 15, seed=i) for i in range(2)]
        sk = AGMSSketch.from_counts(fams, rng.integers(0, 3, (10, 10)).astype(float), 5, 3)
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_frequencies(sk, fams[0].sign_matrix().astype(float))


class TestSkimming:
    def test_threshold_scales_with_noise_floor(self, rng):
        n = 300
        counts = rng.integers(0, 5, n).astype(float)
        fam = SignFamily(n, 200, seed=2)
        narrow = AGMSSketch.from_counts(fam, counts, 40, 5)
        wide_fam = SignFamily(n, 500, seed=2)
        wide = AGMSSketch.from_counts(wide_fam, counts, 100, 5)
        # More averaging -> lower noise floor -> lower threshold.
        assert skim_threshold(wide) < skim_threshold(narrow)

    def test_dense_values_skimmed_residual_small(self, rng):
        n = 150
        counts = rng.integers(0, 4, n).astype(float)
        counts[[10, 99]] = [8000.0, 6000.0]
        fam = SignFamily(n, 125, seed=3)
        sk = AGMSSketch.from_counts(fam, counts, 25, 5)
        signs = fam.sign_matrix().astype(float)
        dense, residual = skim_dense_frequencies(sk, signs)
        assert dense[10] > 0 and dense[99] > 0
        # residual atoms should be far smaller than the original atoms
        assert np.abs(residual).max() < np.abs(sk.atoms).max() * 0.25

    def test_no_dense_values_leaves_sketch_unchanged(self, rng):
        n = 400
        counts = rng.integers(0, 3, n).astype(float)
        fam = SignFamily(n, 125, seed=4)
        sk = AGMSSketch.from_counts(fam, counts, 25, 5)
        signs = fam.sign_matrix().astype(float)
        dense, residual = skim_dense_frequencies(sk, signs, threshold=1e12)
        assert np.count_nonzero(dense) == 0
        np.testing.assert_array_equal(residual, sk.atoms)


class TestSkimmedJoin:
    def test_reduces_to_basic_without_dense_values(self, rng):
        n = 300
        c1 = rng.integers(0, 3, n).astype(float)
        c2 = rng.integers(0, 3, n).astype(float)
        a, b, _ = make_pair(c1, c2, seed=5)
        skim = estimate_join_size_skimmed(a, b, threshold_factor=1e9)
        basic = estimate_join_size(a, b)
        assert skim.estimate == pytest.approx(basic, rel=1e-9)
        assert skim.extra_dense_space == 0

    def test_beats_basic_on_heavy_hitters(self, rng):
        # The skimmed sketch's raison d'etre: dense frequencies no longer
        # contribute variance.  Compare mean absolute error over seeds.
        n = 200
        c1 = rng.integers(0, 4, n).astype(float)
        c2 = rng.integers(0, 4, n).astype(float)
        c1[13] = 20_000.0
        c2[77] = 15_000.0
        actual = float(c1 @ c2)
        basic_err, skim_err = [], []
        for seed in range(25):
            a, b, _ = make_pair(c1, c2, seed=seed)
            basic_err.append(abs(estimate_join_size(a, b) - actual))
            skim_err.append(abs(estimate_join_size_skimmed(a, b).estimate - actual))
        assert np.mean(skim_err) < np.mean(basic_err)

    def test_decomposition_sums_to_estimate(self, rng):
        n = 150
        c1 = rng.integers(0, 4, n).astype(float)
        c1[5] = 9000.0
        c2 = rng.integers(0, 4, n).astype(float)
        c2[5] = 7000.0
        a, b, _ = make_pair(c1, c2, seed=6)
        r = estimate_join_size_skimmed(a, b)
        assert r.estimate == pytest.approx(
            r.dense_dense + r.dense_residual + r.residual_dense + r.residual_residual
        )
        assert r.dense_values_a >= 1 and r.dense_values_b >= 1

    def test_dense_dense_term_dominant_for_aligned_heavy_hitters(self, rng):
        n = 150
        c1 = np.ones(n)
        c2 = np.ones(n)
        c1[50] = 50_000.0
        c2[50] = 40_000.0
        a, b, _ = make_pair(c1, c2, seed=7)
        r = estimate_join_size_skimmed(a, b)
        assert r.dense_dense > 0.9 * r.estimate

    def test_incompatible_sketches_rejected(self, rng):
        n = 60
        c = rng.integers(0, 4, n).astype(float)
        a = AGMSSketch.from_counts(SignFamily(n, 15, seed=1), c, 5, 3)
        b = AGMSSketch.from_counts(SignFamily(n, 15, seed=2), c, 5, 3)
        with pytest.raises(ValueError, match="share a sign family"):
            estimate_join_size_skimmed(a, b)

    def test_multiattribute_rejected(self, rng):
        fams = [SignFamily(10, 15, seed=i) for i in range(2)]
        two_d = AGMSSketch.from_counts(
            fams, rng.integers(0, 3, (10, 10)).astype(float), 5, 3
        )
        with pytest.raises(ValueError, match="single-attribute"):
            estimate_join_size_skimmed(two_d, two_d)


class TestTinyBudgetFallback:
    def test_small_sketch_falls_back_to_basic(self, rng):
        # Below MIN_MEANS_FOR_SKIMMING the frequency estimates are noise;
        # the estimator must degrade to the basic AGMS estimate.
        n = 100
        c1 = rng.integers(0, 5, n).astype(float)
        c1[3] = 5000.0
        c2 = rng.integers(0, 5, n).astype(float)
        c2[3] = 5000.0
        fam = SignFamily(n, 10, seed=9)
        a = AGMSSketch.from_counts(fam, c1, 10, 1)
        b = AGMSSketch.from_counts(fam, c2, 10, 1)
        result = estimate_join_size_skimmed(a, b)
        assert result.estimate == pytest.approx(estimate_join_size(a, b))
        assert result.extra_dense_space == 0

    def test_small_chain_falls_back_to_basic(self, rng):
        from repro.sketches.basic import estimate_multijoin_size

        n = 50
        t1 = rng.integers(0, 5, n).astype(float)
        t2 = rng.integers(0, 2, (n, n)).astype(float)
        t3 = rng.integers(0, 5, n).astype(float)
        fa = SignFamily(n, 10, seed=1)
        fb = SignFamily(n, 10, seed=2)
        sketches = [
            AGMSSketch.from_counts(fa, t1, 10, 1),
            AGMSSketch.from_counts([fa, fb], t2, 10, 1),
            AGMSSketch.from_counts(fb, t3, 10, 1),
        ]
        assert estimate_multijoin_size_skimmed(sketches) == pytest.approx(
            estimate_multijoin_size(sketches)
        )


class TestSkimmedMultiJoin:
    def _chain(self, rng, seed, heavy=False):
        n = 60
        t1 = rng.integers(0, 4, n).astype(float)
        t2 = rng.integers(0, 2, (n, n)).astype(float)
        t3 = rng.integers(0, 4, n).astype(float)
        if heavy:
            t1[7] = 5000.0
            t3[9] = 4000.0
        fa = SignFamily(n, 100, seed=seed * 2)
        fb = SignFamily(n, 100, seed=seed * 2 + 1)
        sketches = [
            AGMSSketch.from_counts(fa, t1, 20, 5),
            AGMSSketch.from_counts([fa, fb], t2, 20, 5),
            AGMSSketch.from_counts(fb, t3, 20, 5),
        ]
        actual = float(np.einsum("a,ab,b->", t1, t2, t3))
        return sketches, actual

    def test_two_relation_chain_delegates_to_single_join(self, rng):
        n = 80
        c1 = rng.integers(0, 4, n).astype(float)
        c2 = rng.integers(0, 4, n).astype(float)
        a, b, _ = make_pair(c1, c2, seed=8)
        assert estimate_multijoin_size_skimmed([a, b]) == pytest.approx(
            estimate_join_size_skimmed(a, b).estimate
        )

    def test_chain_skim_no_worse_than_basic_with_heavy_ends(self, rng):
        # Chain sketch estimates are high-variance by nature; the claim to
        # check is comparative: skimming the heavy end relations should not
        # lose to the basic estimator on median relative error.
        from repro.sketches.basic import estimate_multijoin_size

        skim_errs, basic_errs = [], []
        for seed in range(15):
            sketches, actual = self._chain(rng, seed, heavy=True)
            skim = estimate_multijoin_size_skimmed(sketches)
            basic = estimate_multijoin_size(sketches)
            skim_errs.append(abs(skim - actual) / actual)
            basic_errs.append(abs(basic - actual) / actual)
        assert np.median(skim_errs) <= np.median(basic_errs) * 1.5

    def test_chain_without_dense_matches_basic(self, rng):
        from repro.sketches.basic import estimate_multijoin_size

        sketches, _ = self._chain(rng, 3, heavy=False)
        skim = estimate_multijoin_size_skimmed(sketches, threshold_factor=1e9)
        basic = estimate_multijoin_size(sketches)
        assert skim == pytest.approx(basic, rel=1e-9)

    def test_multiattribute_ends_rejected(self, rng):
        fams = [SignFamily(10, 15, seed=i) for i in range(2)]
        two_d = AGMSSketch.from_counts(
            fams, rng.integers(0, 3, (10, 10)).astype(float), 5, 3
        )
        with pytest.raises(ValueError, match="end relations"):
            estimate_multijoin_size_skimmed([two_d, two_d, two_d])

    def test_needs_two_sketches(self, rng):
        a, _, _ = make_pair(rng.integers(0, 3, 50).astype(float),
                            rng.integers(0, 3, 50).astype(float))
        with pytest.raises(ValueError, match="at least two"):
            estimate_multijoin_size_skimmed([a])
