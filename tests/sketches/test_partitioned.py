"""Tests for Dobra-style domain-partitioned sketches."""

import numpy as np
import pytest

from repro.sketches.basic import AGMSSketch
from repro.sketches.basic import estimate_join_size as basic_join
from repro.sketches.hashing import SignFamily
from repro.sketches.partitioned import (
    PartitionedSketch,
    equi_mass_partition,
    estimate_join_size,
)


class TestEquiMassPartition:
    def test_uniform_pilot_gives_equal_widths(self):
        boundaries = equi_mass_partition(np.full(100, 3.0), 4)
        np.testing.assert_array_equal(boundaries, [0, 25, 50, 75, 100])

    def test_skewed_pilot_gives_narrow_heavy_partitions(self):
        counts = np.ones(100)
        counts[:10] = 100.0
        boundaries = equi_mass_partition(counts, 4)
        widths = np.diff(boundaries)
        # the heavy head should be cut into narrow partitions
        assert widths[0] < widths[-1]

    def test_boundaries_strictly_increase(self, rng):
        counts = np.zeros(50)
        counts[7] = 1_000_000.0  # a single dominant value
        boundaries = equi_mass_partition(counts, 5)
        assert np.all(np.diff(boundaries) > 0) or boundaries[-1] == 50

    def test_single_partition(self):
        np.testing.assert_array_equal(equi_mass_partition(np.ones(10), 1), [0, 10])

    def test_zero_pilot_falls_back_to_equi_width(self):
        boundaries = equi_mass_partition(np.zeros(12), 3)
        np.testing.assert_array_equal(boundaries, [0, 4, 8, 12])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            equi_mass_partition(np.ones((2, 2)), 2)
        with pytest.raises(ValueError):
            equi_mass_partition(np.ones(4), 0)
        with pytest.raises(ValueError):
            equi_mass_partition(np.ones(4), 5)


class TestPartitionedSketch:
    def test_streaming_matches_from_counts(self, rng):
        counts = rng.integers(0, 9, 60).astype(float)
        boundaries = [0, 20, 45, 60]
        streamed = PartitionedSketch(boundaries, budget=90, seed=3)
        values = np.repeat(np.arange(60), counts.astype(int))
        streamed.update_batch(rng.permutation(values))
        batch = PartitionedSketch.from_counts(counts, boundaries, budget=90, seed=3)
        for s, b in zip(streamed.sketches, batch.sketches):
            np.testing.assert_array_equal(s.atoms, b.atoms)
        assert streamed.count == batch.count == int(counts.sum())

    def test_partition_routing(self):
        sketch = PartitionedSketch([0, 10, 30], budget=20, seed=1)
        assert sketch.partition_of(0) == 0
        assert sketch.partition_of(9) == 0
        assert sketch.partition_of(10) == 1
        assert sketch.partition_of(29) == 1
        with pytest.raises(ValueError):
            sketch.partition_of(30)

    def test_deletion(self, rng):
        sketch = PartitionedSketch([0, 10, 20], budget=20, seed=1)
        sketch.update(5)
        sketch.update(15)
        sketch.update(5, weight=-1)
        assert sketch.count == 1

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError, match="increase"):
            PartitionedSketch([0, 10, 10], budget=20, seed=1)
        with pytest.raises(ValueError, match="start at 0"):
            PartitionedSketch([1, 10], budget=20, seed=1)
        with pytest.raises(ValueError, match="budget"):
            PartitionedSketch([0, 5, 10], budget=1, seed=1)

    def test_space_accounting(self):
        sketch = PartitionedSketch([0, 10, 20, 30], budget=99, seed=1)
        assert sketch.num_atomic_sketches <= 99


class TestEstimation:
    def test_exact_on_single_value_per_partition(self):
        counts = np.zeros(40)
        counts[[5, 25]] = [100.0, 200.0]
        boundaries = [0, 20, 40]
        a = PartitionedSketch.from_counts(counts, boundaries, budget=30, seed=2)
        b = PartitionedSketch.from_counts(counts, boundaries, budget=30, seed=2)
        # one distinct value per partition: each partition sketch is exact
        assert estimate_join_size(a, b) == pytest.approx(100.0**2 + 200.0**2)

    def test_unbiased(self, rng):
        n = 80
        c1 = rng.integers(0, 10, n).astype(float)
        c2 = rng.integers(0, 10, n).astype(float)
        actual = float(c1 @ c2)
        boundaries = equi_mass_partition(c1 + c2, 4)
        estimates = []
        for seed in range(50):
            a = PartitionedSketch.from_counts(c1, boundaries, budget=256, seed=seed)
            b = PartitionedSketch.from_counts(c2, boundaries, budget=256, seed=seed)
            estimates.append(estimate_join_size(a, b))
        assert np.mean(estimates) == pytest.approx(actual, rel=0.15)

    def test_good_partition_beats_basic_on_skewed_data(self, rng):
        # Dobra's claim: with a priori distribution knowledge, partitioning
        # isolates the heavy values and tightens the estimate.
        n = 200
        c1 = rng.integers(0, 3, n).astype(float)
        c2 = rng.integers(0, 3, n).astype(float)
        c1[:4] = [3000, 2500, 2000, 1500]
        c2[:4] = [2800, 2600, 1900, 1600]
        actual = float(c1 @ c2)
        boundaries = equi_mass_partition(c1 + c2, 8)
        part_errs, basic_errs = [], []
        for seed in range(20):
            pa = PartitionedSketch.from_counts(c1, boundaries, budget=64, seed=seed)
            pb = PartitionedSketch.from_counts(c2, boundaries, budget=64, seed=seed)
            part_errs.append(abs(estimate_join_size(pa, pb) - actual) / actual)
            fam = SignFamily(n, 64, seed=seed)
            ba = AGMSSketch.from_counts(fam, c1, 64, 1)
            bb = AGMSSketch.from_counts(fam, c2, 64, 1)
            basic_errs.append(abs(basic_join(ba, bb) - actual) / actual)
        assert np.median(part_errs) < np.median(basic_errs)

    def test_incompatible_sketches_rejected(self, rng):
        counts = rng.integers(0, 5, 20).astype(float)
        a = PartitionedSketch.from_counts(counts, [0, 10, 20], budget=20, seed=1)
        b = PartitionedSketch.from_counts(counts, [0, 10, 20], budget=20, seed=2)
        with pytest.raises(ValueError, match="share"):
            estimate_join_size(a, b)
        c = PartitionedSketch.from_counts(counts, [0, 5, 20], budget=20, seed=1)
        with pytest.raises(ValueError, match="share"):
            estimate_join_size(a, c)
