"""REP005: observer batch protocol and read-path purity."""

from .conftest import findings_for


class TestBatchProtocol:
    def test_on_ops_without_on_op_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.streams import StreamObserver

                    class BatchOnly(StreamObserver):
                        def on_ops(self, relation, rows, kind):
                            pass
                ''',
            }
        )
        findings = findings_for(root, "REP005")
        assert len(findings) == 1
        assert "on_op" in findings[0].message

    def test_both_hooks_defined_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.streams import StreamObserver

                    class Both(StreamObserver):
                        def on_op(self, relation, op):
                            pass

                        def on_ops(self, relation, rows, kind):
                            pass
                ''',
            }
        )
        assert findings_for(root, "REP005") == []

    def test_on_op_only_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.streams import StreamObserver

                    class PerOp(StreamObserver):
                        def on_op(self, relation, op):
                            pass
                ''',
            }
        )
        assert findings_for(root, "REP005") == []

    def test_unrelated_classes_are_out_of_scope(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class NotAnObserver:
                        def on_ops(self, rows):
                            pass

                        def answer(self):
                            self.cache = 1
                            return self.cache
                ''',
            }
        )
        assert findings_for(root, "REP005") == []


class TestReadOnlyMethods:
    def test_attribute_store_in_answer_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Cached(StreamObserver):
                        def on_op(self, relation, op):
                            pass

                        def answer(self):
                            self.cache = 42
                            return self.cache
                ''',
            }
        )
        findings = findings_for(root, "REP005")
        assert len(findings) == 1
        assert "mutates self" in findings[0].message

    def test_augmented_store_in_estimate_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Counting(StreamObserver):
                        def on_op(self, relation, op):
                            pass

                        def estimate(self):
                            self.calls += 1
                            return 0.0
                ''',
            }
        )
        assert len(findings_for(root, "REP005")) == 1

    def test_subscript_store_in_state_dict_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Slicing(StreamObserver):
                        def on_op(self, relation, op):
                            pass

                        def state_dict(self):
                            self.buckets[0] = 0
                            return {"buckets": self.buckets}
                ''',
            }
        )
        assert len(findings_for(root, "REP005")) == 1

    def test_pure_reads_and_locals_are_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Pure(StreamObserver):
                        def on_op(self, relation, op):
                            self.total += op.weight

                        def answer(self):
                            total = self.total
                            scaled = total * 2
                            return scaled
                ''',
            }
        )
        assert findings_for(root, "REP005") == []
