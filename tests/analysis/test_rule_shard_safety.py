"""REP003: process-dispatch pickling, module state, determinism."""

from .conftest import findings_for

OPTIONS = {"shard-safety": {"deterministic-paths": ["src/pkg"]}}


class TestModuleMutableState:
    def test_lowercase_module_dict_is_flagged(self, project):
        root = project({"src/pkg/a.py": "cache = {}\n"})
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1
        assert "module-level mutable 'cache'" in findings[0].message

    def test_upper_constant_and_dunder_are_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    __all__ = ["f"]
                    BACKENDS = {"serial": None}

                    def f():
                        return BACKENDS
                ''',
            }
        )
        assert findings_for(root, "REP003", **OPTIONS) == []


class TestMutableDefaults:
    def test_mutable_default_argument_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def merge(values, seen=[]):
                        seen.extend(values)
                        return seen
                ''',
            }
        )
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1
        assert "mutable default argument in merge()" in findings[0].message

    def test_none_default_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def merge(values, seen=None):
                        seen = list(seen or ())
                        seen.extend(values)
                        return seen
                ''',
            }
        )
        assert findings_for(root, "REP003", **OPTIONS) == []


class TestDispatchPickling:
    def test_lambda_submitted_to_executor_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def run(pool, shard):
                        return pool.submit(lambda: shard.answer())
                ''',
            }
        )
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1
        assert "lambda crosses the process-dispatch boundary" in findings[0].message

    def test_lambda_process_target_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import multiprocessing

                    def run(q):
                        return multiprocessing.Process(target=lambda: q.put(1))
                ''',
            }
        )
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1

    def test_top_level_function_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def work(shard):
                        return shard.answer()

                    def run(pool, shard):
                        return pool.submit(work, shard)
                ''',
            }
        )
        assert findings_for(root, "REP003", **OPTIONS) == []


class TestDeterminism:
    def test_global_rng_is_flagged_in_deterministic_paths(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import random

                    def jitter():
                        return random.random()
                ''',
            }
        )
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1
        assert "unseeded global RNG" in findings[0].message

    def test_wall_clock_is_flagged_in_deterministic_paths(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import time

                    def stamp():
                        return time.time()
                ''',
            }
        )
        findings = findings_for(root, "REP003", **OPTIONS)
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_seeded_generators_are_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import random

                    import numpy as np

                    def make(seed):
                        return random.Random(seed), np.random.default_rng(seed)
                ''',
            }
        )
        assert findings_for(root, "REP003", **OPTIONS) == []

    def test_wall_clock_outside_scope_is_fine(self, project):
        root = project(
            {
                "src/other/a.py": '''
                    import time

                    def stamp():
                        return time.time()
                ''',
            }
        )
        assert findings_for(root, "REP003", **OPTIONS) == []
