"""The runtime lock-order sanitizer: seeded inversions must be caught.

The fixture-level counterpart of REP008's static lock-order check: an
ABBA pattern planted under the sanitizer must surface as an inversion
even though no schedule actually deadlocks, and disciplined code —
consistent order, reentrancy, condition waits — must stay silent.
"""

import threading

import pytest

from tests.analysis.sanitizer import LockOrderError, lock_order_sanitizer


class TestSeededInversion:
    def test_abba_on_one_thread_is_caught(self):
        with lock_order_sanitizer() as sanitizer:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        inversions = sanitizer.inversions()
        assert len(inversions) == 1
        assert "test_sanitizer.py" in inversions[0].forward_site
        with pytest.raises(LockOrderError, match="1 lock-order inversion"):
            sanitizer.assert_no_inversions()

    def test_abba_across_threads_is_caught_without_deadlocking(self):
        with lock_order_sanitizer() as sanitizer:
            a = threading.Lock()
            b = threading.Lock()
            gate = threading.Semaphore(1)  # serialize: detect, don't hang

            def forward():
                with gate:
                    with a:
                        with b:
                            pass

            def reverse():
                with gate:
                    with b:
                        with a:
                            pass

            threads = [
                threading.Thread(target=forward),
                threading.Thread(target=reverse),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(sanitizer.inversions()) == 1

    def test_seeded_supervisor_style_regression(self):
        """The exact shape REP008 guards: shard lock vs registry lock."""
        with lock_order_sanitizer() as sanitizer:

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge_under_shard(self, shard_lock):
                    with shard_lock:  # supervisor path: shard then registry
                        with self._lock:
                            pass

                def snapshot_then_shard(self, shard_lock):
                    with self._lock:  # regression: registry then shard
                        with shard_lock:
                            pass

            registry = Registry()
            shard_lock = threading.Lock()
            registry.merge_under_shard(shard_lock)
            registry.snapshot_then_shard(shard_lock)
        assert len(sanitizer.inversions()) == 1


class TestDisciplinedCodeIsSilent:
    def test_consistent_order_is_clean(self):
        with lock_order_sanitizer() as sanitizer:
            a = threading.Lock()
            b = threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert sanitizer.edge_count() == 1
        sanitizer.assert_no_inversions()

    def test_rlock_reentrancy_adds_no_ordering_fact(self):
        with lock_order_sanitizer() as sanitizer:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
            assert sanitizer.edge_count() == 0
        sanitizer.assert_no_inversions()

    def test_condition_wait_releases_the_held_set(self):
        """A lock given up inside wait() must not order later acquires."""
        with lock_order_sanitizer() as sanitizer:
            other = threading.Lock()
            cond = threading.Condition(threading.RLock())
            done = threading.Event()

            def waiter():
                with cond:
                    cond.wait(timeout=5)
                done.set()

            thread = threading.Thread(target=waiter)
            thread.start()
            # While the waiter sleeps inside wait() (condition lock
            # released), take other -> cond; the waiter re-acquires cond
            # while *we* are not holding anything.  No inversion.
            with other:
                with cond:
                    cond.notify_all()
            thread.join()
            assert done.is_set()
        sanitizer.assert_no_inversions()

    def test_nonblocking_failure_records_nothing(self):
        with lock_order_sanitizer() as sanitizer:
            a = threading.Lock()
            b = threading.Lock()
            with b:
                with a:
                    assert b.locked()
                    # a is held; a failed try-acquire of an already-held
                    # lock must not invent an edge
                    assert not b.acquire(blocking=False)
        assert sanitizer.inversions() == []

    def test_patch_is_reverted_on_exit(self):
        original = threading.Lock
        with lock_order_sanitizer():
            assert threading.Lock is not original
        assert threading.Lock is original
