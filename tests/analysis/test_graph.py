"""ProjectGraph: the indexes every cross-module rule stands on."""

from pathlib import Path

from repro.analysis.core import SourceTree
from repro.analysis.graph import ProjectGraph, module_name_for


def build(project, files):
    root = project(files)
    tree = SourceTree.load(root, [root / "src"])
    return ProjectGraph.build(tree)


class TestModuleNaming:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/obs/metrics.py") == "repro.obs.metrics"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"


class TestImportResolution:
    def test_absolute_and_aliased_imports(self, project):
        graph = build(
            project,
            {
                "src/pkg/a.py": """
                    import threading
                    from threading import Lock as TLock
                """,
            },
        )
        assert graph.resolve("pkg.a", "threading.Lock") == "threading.Lock"
        assert graph.resolve("pkg.a", "TLock") == "threading.Lock"

    def test_relative_import_climbs_packages(self, project):
        graph = build(
            project,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/sub/__init__.py": "",
                "src/pkg/base.py": "class Base:\n    pass\n",
                "src/pkg/sub/mod.py": "from ..base import Base\n",
            },
        )
        assert graph.resolve("pkg.sub.mod", "Base") == "pkg.base.Base"


class TestHierarchy:
    FILES = {
        "src/pkg/__init__.py": "",
        "src/pkg/base.py": """
            class Base:
                def __init__(self):
                    self.x = 0

                def hello(self):
                    return "base"
        """,
        "src/pkg/child.py": """
            from .base import Base

            class Child(Base):
                def __init__(self):
                    super().__init__()
                    self.y = 1
        """,
    }

    def test_mro_crosses_modules(self, project):
        graph = build(project, self.FILES)
        child = graph.classes["pkg.child.Child"]
        assert [c.qualname for c in graph.mro(child)] == [
            "pkg.child.Child",
            "pkg.base.Base",
        ]

    def test_method_owner_walks_the_mro(self, project):
        graph = build(project, self.FILES)
        child = graph.classes["pkg.child.Child"]
        owner = graph.method_owner(child, "hello")
        assert owner is not None and owner.qualname == "pkg.base.Base"

    def test_subclasses_of_matches_bare_base_names(self, project):
        graph = build(project, self.FILES)
        subs = {cls.qualname for cls in graph.subclasses_of(["Base"])}
        assert "pkg.child.Child" in subs


class TestCallResolution:
    def test_self_call_and_attribute_receiver(self, project):
        graph = build(
            project,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/engine.py": """
                    from .sink import Sink

                    class Engine:
                        def __init__(self):
                            self.sink = Sink()

                        def run(self):
                            self.step()
                            self.sink.write()

                        def step(self):
                            pass
                """,
                "src/pkg/sink.py": """
                    class Sink:
                        def write(self):
                            pass
                """,
            },
        )
        run = graph.functions["pkg.engine.Engine.run"]
        targets = {target for _, target in graph.callees(run)}
        assert "pkg.engine.Engine.step" in targets
        assert "pkg.sink.Sink.write" in targets

    def test_nested_function_is_a_graph_node(self, project):
        graph = build(
            project,
            {
                "src/pkg/loop.py": """
                    class Loop:
                        def start(self):
                            def run():
                                self.tick()
                            return run

                        def tick(self):
                            pass
                """,
            },
        )
        nested = graph.functions["pkg.loop.Loop.start.run"]
        targets = {target for _, target in graph.callees(nested)}
        assert "pkg.loop.Loop.tick" in targets

    def test_reachable_closure(self, project):
        graph = build(
            project,
            {
                "src/pkg/chain.py": """
                    def a():
                        b()

                    def b():
                        c()

                    def c():
                        pass

                    def unrelated():
                        pass
                """,
            },
        )
        closure = graph.reachable([graph.functions["pkg.chain.a"]])
        assert set(closure) == {"pkg.chain.a", "pkg.chain.b", "pkg.chain.c"}
