"""REP006: allocation-heavy idioms in per-tuple hot paths."""

from .conftest import findings_for

OPTIONS = {"hot-path": {"paths": ["src/pkg"]}}


class TestAllocationsAreFlagged:
    def test_list_copy_in_on_op(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            snapshot = list(self.values)
                            return snapshot
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "list(...) copies per tuple in per-tuple on_op()" in findings[0].message

    def test_comprehension_in_process(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def process(ops):
                        return [op.weight for op in ops]
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "comprehension allocates" in findings[0].message

    def test_fstring_in_on_op(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            self.last = f"{relation}:{op}"
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "f-string allocates" in findings[0].message

    def test_flagged_call_does_not_double_report_inner_fstring(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            self.keys = sorted(f"{op}")
                ''',
            }
        )
        # sorted() is flagged; the f-string inside it is not reported again.
        assert len(findings_for(root, "REP006", **OPTIONS)) == 1


class TestExemptions:
    def test_raise_subtree_is_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            if op.weight < 0:
                                raise ValueError(f"negative weight on {relation}")
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_nested_def_is_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            def debug():
                                return list(self.values)
                            self.debug = debug
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_cold_functions_are_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def state_dict(self):
                            return {"values": list(self.values)}
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_out_of_path_files_are_exempt(self, project):
        root = project(
            {
                "src/other/a.py": '''
                    def process(ops):
                        return [op.weight for op in ops]
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_inline_noqa_suppresses(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            snapshot = list(self.values)  # repro: noqa[REP006]
                            return snapshot
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []
