"""REP006: allocation-heavy idioms in per-tuple hot paths."""

from .conftest import findings_for

OPTIONS = {"hot-path": {"paths": ["src/pkg"], "kernel-paths": []}}
SEAM_OPTIONS = {
    "hot-path": {
        "paths": [],
        "kernel-paths": ["src/pkg"],
        "kernel-seam": ["src/pkg/fastpath"],
    }
}


class TestAllocationsAreFlagged:
    def test_list_copy_in_on_op(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            snapshot = list(self.values)
                            return snapshot
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "list(...) copies per tuple in per-tuple on_op()" in findings[0].message

    def test_comprehension_in_process(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def process(ops):
                        return [op.weight for op in ops]
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "comprehension allocates" in findings[0].message

    def test_fstring_in_on_op(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            self.last = f"{relation}:{op}"
                ''',
            }
        )
        findings = findings_for(root, "REP006", **OPTIONS)
        assert len(findings) == 1
        assert "f-string allocates" in findings[0].message

    def test_flagged_call_does_not_double_report_inner_fstring(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            self.keys = sorted(f"{op}")
                ''',
            }
        )
        # sorted() is flagged; the f-string inside it is not reported again.
        assert len(findings_for(root, "REP006", **OPTIONS)) == 1


class TestExemptions:
    def test_raise_subtree_is_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            if op.weight < 0:
                                raise ValueError(f"negative weight on {relation}")
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_nested_def_is_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            def debug():
                                return list(self.values)
                            self.debug = debug
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_cold_functions_are_exempt(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def state_dict(self):
                            return {"values": list(self.values)}
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_out_of_path_files_are_exempt(self, project):
        root = project(
            {
                "src/other/a.py": '''
                    def process(ops):
                        return [op.weight for op in ops]
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []

    def test_inline_noqa_suppresses(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class Obs:
                        def on_op(self, relation, op):
                            snapshot = list(self.values)  # repro: noqa[REP006]
                            return snapshot
                ''',
            }
        )
        assert findings_for(root, "REP006", **OPTIONS) == []


class TestFastpathSeam:
    def test_basis_matrix_call_in_kernel_path_is_flagged(self, project):
        root = project(
            {
                "src/pkg/synopsis.py": '''
                    from .basis import basis_matrix

                    def contributions(order, positions):
                        return basis_matrix(order, positions)
                ''',
            }
        )
        findings = findings_for(root, "REP006", **SEAM_OPTIONS)
        assert len(findings) == 1
        assert "basis_matrix(...) bypasses the repro.fastpath seam" in findings[0].message
        assert "phi_block" in findings[0].message

    def test_direct_np_cos_in_kernel_path_is_flagged(self, project):
        root = project(
            {
                "src/pkg/synopsis.py": '''
                    import numpy as np

                    def contributions(order, positions):
                        return np.cos(np.pi * positions)
                ''',
            }
        )
        findings = findings_for(root, "REP006", **SEAM_OPTIONS)
        assert len(findings) == 1
        assert "np.cos(...)" in findings[0].message

    def test_seam_package_itself_is_exempt(self, project):
        root = project(
            {
                "src/pkg/fastpath/recurrence.py": '''
                    import numpy as np

                    def phi_block_numpy(order, positions, out):
                        np.cos(out, out=out)
                        return out
                ''',
            }
        )
        assert findings_for(root, "REP006", **SEAM_OPTIONS) == []

    def test_files_outside_kernel_paths_are_exempt(self, project):
        root = project(
            {
                "src/other/basis.py": '''
                    import numpy as np

                    def basis_matrix(order, positions):
                        return np.cos(order * positions)
                ''',
            }
        )
        assert findings_for(root, "REP006", **SEAM_OPTIONS) == []

    def test_noqa_suppresses_seam_finding(self, project):
        root = project(
            {
                "src/pkg/synopsis.py": '''
                    import numpy as np

                    def contributions(order, positions):
                        return np.cos(positions)  # repro: noqa[REP006]
                ''',
            }
        )
        assert findings_for(root, "REP006", **SEAM_OPTIONS) == []

    def test_phi_block_call_is_not_flagged(self, project):
        root = project(
            {
                "src/pkg/synopsis.py": '''
                    from .fastpath import phi_block

                    def contributions(order, positions):
                        return phi_block(order, positions)
                ''',
            }
        )
        assert findings_for(root, "REP006", **SEAM_OPTIONS) == []
