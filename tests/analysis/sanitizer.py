"""Runtime lock-order sanitizer: the dynamic half of REP008.

REP008 proves statically that the two-lock modules never acquire locks
in inverted orders; this harness confirms it dynamically.  Inside
:func:`lock_order_sanitizer`, ``threading.Lock`` and ``threading.RLock``
hand out tracked proxies.  Every acquisition is recorded against the
set of locks the acquiring thread already holds, building a runtime
lock-order graph; two locks observed in both orders — on any threads,
at any time during the run — are reported as an inversion, the exact
precondition of an ABBA deadlock, without needing the unlucky schedule
that would actually hang.

The fleet-chaos suite runs entirely under this sanitizer (an autouse
fixture in ``tests/fleet/conftest.py``), so every SIGKILL/revival path
through the supervisor, the metrics registry, and the OTel push loop
re-validates the acquisition order on each run.

Locks are tracked by *instance* (a monotonic serial), not by creation
site, so two shard locks built by one comprehension never alias; the
creation site is kept only for human-readable reports.
"""

from __future__ import annotations

import _thread
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["Inversion", "LockOrderError", "LockOrderSanitizer", "lock_order_sanitizer"]

_THIS_FILE = __file__


class LockOrderError(AssertionError):
    """Two locks were acquired in both orders during the sanitized run."""


@dataclass(frozen=True)
class Inversion:
    """One lock pair seen in both orders, with the observing call sites."""

    first: str  # creation site of the lock acquired first (forward order)
    second: str
    forward_site: str  # call site where first -> second was observed
    reverse_site: str

    def describe(self) -> str:
        return (
            f"lock({self.first}) and lock({self.second}) acquired in both "
            f"orders: forward at {self.forward_site}, reverse at {self.reverse_site}"
        )


def _caller_site() -> str:
    """First frame outside this module: where the user code acquired."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class LockOrderSanitizer:
    """Records the runtime lock-order graph for tracked locks."""

    def __init__(self) -> None:
        # A raw, untracked leaf lock: held only while touching _edges,
        # never while acquiring a tracked lock, so it cannot deadlock
        # with (or pollute) the graph it guards.
        self._guard = _thread.allocate_lock()
        self._serial = 0
        self._sites: dict[int, str] = {}  # serial -> creation site
        # (held_serial, acquired_serial) -> call site of the acquisition
        self._edges: dict[tuple[int, int], str] = {}
        self._tls = threading.local()

    # -- factory side -------------------------------------------------

    def _new_serial(self, site: str) -> int:
        with self._guard:
            self._serial += 1
            self._sites[self._serial] = site
            return self._serial

    # -- proxy callbacks ----------------------------------------------

    def _held(self) -> dict[int, int]:  # serial -> recursion count
        held = getattr(self._tls, "held", None)
        if held is None:
            held = {}
            self._tls.held = held
        return held

    def note_acquired(self, serial: int, site: str) -> None:
        held = self._held()
        if serial in held:  # reentrant re-acquire: no new ordering fact
            held[serial] += 1
            return
        others = list(held)
        held[serial] = 1
        if others:
            with self._guard:
                for other in others:
                    self._edges.setdefault((other, serial), site)

    def note_released(self, serial: int, *, full: bool = False) -> None:
        held = self._held()
        count = held.get(serial)
        if count is None:
            return
        if full or count <= 1:
            del held[serial]
        else:
            held[serial] = count - 1

    # -- reporting ----------------------------------------------------

    def inversions(self) -> list[Inversion]:
        """Every lock pair observed in both acquisition orders."""
        with self._guard:
            edges = dict(self._edges)
            sites = dict(self._sites)
        found = []
        for (a, b), forward_site in sorted(edges.items()):
            if a < b and (b, a) in edges:
                found.append(
                    Inversion(
                        first=sites[a],
                        second=sites[b],
                        forward_site=forward_site,
                        reverse_site=edges[(b, a)],
                    )
                )
        return found

    def edge_count(self) -> int:
        with self._guard:
            return len(self._edges)

    def assert_no_inversions(self) -> None:
        found = self.inversions()
        if found:
            details = "\n  ".join(inv.describe() for inv in found)
            raise LockOrderError(
                f"{len(found)} lock-order inversion(s) observed at runtime:\n  {details}"
            )


class _TrackedLock:
    """Proxy over a plain ``threading.Lock`` reporting to the sanitizer."""

    __slots__ = ("_san", "_inner", "serial", "site")

    def __init__(self, san: LockOrderSanitizer, inner: Any, site: str) -> None:
        self._san = san
        self._inner = inner
        self.site = site
        self.serial = san._new_serial(site)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san.note_acquired(self.serial, _caller_site())
        return got

    def release(self) -> None:
        self._inner.release()
        self._san.note_released(self.serial)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<tracked {self._inner!r} from {self.site}>"


class _TrackedRLock:
    """Proxy over ``threading.RLock``, Condition-compatible.

    ``_is_owned`` / ``_release_save`` / ``_acquire_restore`` are defined
    here (and only here — a plain-Lock proxy must *not* grow them, or
    ``threading.Condition`` would take its RLock fast path against a
    non-reentrant inner lock) so Conditions built on tracked RLocks keep
    the held-set accurate across ``wait()``.
    """

    __slots__ = ("_san", "_inner", "serial", "site")

    def __init__(self, san: LockOrderSanitizer, inner: Any, site: str) -> None:
        self._san = san
        self._inner = inner
        self.site = site
        self.serial = san._new_serial(site)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._san.note_acquired(self.serial, _caller_site())
        return got

    def release(self) -> None:
        self._inner.release()
        self._san.note_released(self.serial)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self) -> Any:
        state = self._inner._release_save()
        self._san.note_released(self.serial, full=True)
        return state

    def _acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)
        self._san.note_acquired(self.serial, "<condition-reacquire>")

    def __repr__(self) -> str:
        return f"<tracked {self._inner!r} from {self.site}>"


@contextmanager
def lock_order_sanitizer() -> Iterator[LockOrderSanitizer]:
    """Patch ``threading.Lock``/``RLock`` to tracked proxies.

    Locks created *inside* the context are tracked; locks created before
    (stdlib module-level locks, already-built engines) are not.  Proxies
    keep working after the context exits, so threads that outlive the
    patch window stay correct — they just stop contributing new facts
    once the test asserts.
    """
    sanitizer = LockOrderSanitizer()
    orig_lock, orig_rlock = threading.Lock, threading.RLock

    def tracked_lock() -> _TrackedLock:
        return _TrackedLock(sanitizer, orig_lock(), _caller_site())

    def tracked_rlock() -> _TrackedRLock:
        return _TrackedRLock(sanitizer, orig_rlock(), _caller_site())

    threading.Lock = tracked_lock  # type: ignore[assignment]
    threading.RLock = tracked_rlock  # type: ignore[assignment]
    try:
        yield sanitizer
    finally:
        threading.Lock = orig_lock  # type: ignore[assignment]
        threading.RLock = orig_rlock  # type: ignore[assignment]
