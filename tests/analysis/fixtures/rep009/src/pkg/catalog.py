"""Stand-in for the generated metric catalog (REP009 fixture)."""

METRIC_CATALOG = {
    "repro_good_total": {
        "kind": "counter",
        "labels": [],
        "shard_suffix": False,
        "help": "a catalogued metric",
    },
}
