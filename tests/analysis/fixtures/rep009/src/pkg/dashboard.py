"""Metric names referenced far from their registration (REP009 fixture)."""

GOOD = "repro_good_total"
GHOST = "repro_ghost_total"
QUIET = "repro_unlisted_total"  # repro: noqa[REP009]


def lookup(registry) -> object:
    return registry.get("repro_good_total")
