"""The checkpoint-protocol base the subclasses inherit from (REP010 fixture)."""


class Synopsis:
    def __init__(self) -> None:
        self.weights: list[float] = []

    def state_dict(self) -> dict:
        return {"weights": list(self.weights)}

    def load_state(self, state: dict) -> None:
        self.weights = list(state["weights"])
