"""Subclasses in another module than their serialization (REP010 fixture)."""

from .base import Synopsis


class Drifted(Synopsis):
    """Seeded regression: adds state the inherited state_dict never saves."""

    def __init__(self) -> None:
        super().__init__()
        self.offset = 0.0


class Quiet(Synopsis):
    def __init__(self) -> None:
        super().__init__()
        self.scratch = 0.0  # repro: noqa[REP010]


class Exempted(Synopsis):
    _checkpoint_exempt = ("cache",)

    def __init__(self) -> None:
        super().__init__()
        self.cache = 0.0


class Covered(Synopsis):
    """Clean: overrides state_dict to cover the added attribute."""

    def __init__(self) -> None:
        super().__init__()
        self.scale = 1.0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["scale"] = self.scale
        return state
