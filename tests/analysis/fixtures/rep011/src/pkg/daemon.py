"""Coroutines with and without blocking calls (REP011 fixture)."""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor


def warm_up() -> None:
    time.sleep(0.01)


class Daemon:
    def __init__(self) -> None:
        self._pool = ThreadPoolExecutor(max_workers=1)

    async def tick(self) -> None:
        time.sleep(0.01)

    async def relay(self) -> None:
        warm_up()

    async def drain(self) -> None:
        self._pool.shutdown(wait=True)

    async def quiet(self) -> None:
        time.sleep(0.01)  # repro: noqa[REP011]

    async def clean(self) -> None:
        await asyncio.sleep(0.01)
        await asyncio.get_running_loop().run_in_executor(self._pool, warm_up)
