"""Thread entry point in a different module from the state it reaches."""

import threading

from .state import SharedCounter


class Runner:
    def __init__(self) -> None:
        self.counter = SharedCounter()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        self.counter.bump()
        self.counter.bump_safely()
        self.counter.bump_quietly()
