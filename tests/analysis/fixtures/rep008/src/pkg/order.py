"""A two-lock class acquiring its locks in both orders (REP008 fixture)."""

import threading


class Pair:
    def __init__(self) -> None:
        self._first = threading.Lock()
        self._second = threading.Lock()
        self.forwarded = 0
        self.reversed = 0

    def forward(self) -> None:
        with self._first:
            with self._second:
                self.forwarded += 1

    def backward(self) -> None:
        with self._second:
            with self._first:
                self.reversed += 1
