"""Shared state mutated from another module's thread (REP008 fixture)."""

import threading


class SharedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0
        self.safe_total = 0
        self.quiet_total = 0

    def bump(self) -> None:
        # Seeded regression: unguarded mutation on a thread path.
        self.total += 1

    def bump_safely(self) -> None:
        with self._lock:
            self.safe_total += 1

    def bump_quietly(self) -> None:
        self.quiet_total += 1  # repro: noqa[REP008]
