"""REP007: executor protocol conformance and dispatch containment."""

from .conftest import findings_for


class TestRequiredMethods:
    def test_missing_required_method_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.sharding.executor import ShardExecutor

                    class Half(ShardExecutor):
                        def start(self, num_shards, seed, telemetry=True):
                            pass

                        def call(self, shard, method, *args, **kwargs):
                            pass
                ''',
            }
        )
        findings = findings_for(root, "REP007")
        assert len(findings) == 1
        assert "scatter" in findings[0].message

    def test_full_implementation_is_clean(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.sharding.executor import ShardExecutor

                    class Full(ShardExecutor):
                        def start(self, num_shards, seed, telemetry=True):
                            pass

                        def call(self, shard, method, *args, **kwargs):
                            pass

                        def scatter(self, method, per_shard):
                            pass
                ''',
            }
        )
        assert findings_for(root, "REP007") == []

    def test_attribute_base_reference_is_matched(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import repro.sharding.executor as ex

                    class Bare(ex.ShardExecutor):
                        def start(self, num_shards, seed, telemetry=True):
                            pass
                ''',
            }
        )
        findings = findings_for(root, "REP007")
        assert {("call" in f.message, "scatter" in f.message) for f in findings} == {
            (True, False),
            (False, True),
        }

    def test_unrelated_classes_are_out_of_scope(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    class NotAnExecutor:
                        def call(self, anything):
                            pass
                ''',
            }
        )
        assert findings_for(root, "REP007") == []


class TestSignatureDrift:
    def test_renamed_parameter_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.sharding.executor import ShardExecutor

                    class Drifted(ShardExecutor):
                        def start(self, n, seed, telemetry=True):
                            pass

                        def call(self, shard, method, *args, **kwargs):
                            pass

                        def scatter(self, method, per_shard):
                            pass
                ''',
            }
        )
        findings = findings_for(root, "REP007")
        assert len(findings) == 1
        assert "drifts from the executor protocol" in findings[0].message
        assert "start" in findings[0].message

    def test_dropped_kwargs_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.sharding.executor import ShardExecutor

                    class NoKwargs(ShardExecutor):
                        def start(self, num_shards, seed, telemetry=True):
                            pass

                        def call(self, shard, method, *args):
                            pass

                        def scatter(self, method, per_shard):
                            pass
                ''',
            }
        )
        findings = findings_for(root, "REP007")
        assert len(findings) == 1
        assert "call" in findings[0].message

    def test_vararg_names_do_not_matter(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    from repro.sharding.executor import ShardExecutor

                    class Renamed(ShardExecutor):
                        def start(self, num_shards, seed, telemetry=True):
                            pass

                        def call(self, shard, method, *a, **kw):
                            pass

                        def scatter(self, method, per_shard):
                            pass
                ''',
            }
        )
        assert findings_for(root, "REP007") == []


class TestDispatchContainment:
    def test_bare_dispatch_outside_allowed_paths_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def peek(engine):
                        return engine._executor.call(0, "stats_dict")
                ''',
            }
        )
        findings = findings_for(root, "REP007")
        assert len(findings) == 1
        assert "bare executor dispatch" in findings[0].message

    def test_dispatch_inside_allowed_paths_is_clean(self, project):
        root = project(
            {
                "src/repro/sharding/a.py": '''
                    def merge(self):
                        return self._executor.broadcast("state_dict")
                ''',
                "src/repro/fleet/b.py": '''
                    def stats(fleet):
                        return fleet._executor.call(0, "stats_dict")
                ''',
            }
        )
        assert findings_for(root, "REP007") == []

    def test_non_executor_receivers_are_ignored(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def use(pool, fn):
                        return pool.call(fn), pool.broadcast(fn)
                ''',
            }
        )
        assert findings_for(root, "REP007") == []
