"""REP004: float equality and bare except."""

from .conftest import findings_for


class TestFloatEquality:
    def test_float_literal_comparison_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def check(x):
                        return x == 0.5
                ''',
            }
        )
        findings = findings_for(root, "REP004")
        assert len(findings) == 1
        assert "float equality" in findings[0].message

    def test_math_inf_comparison_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import math

                    def check(x):
                        return x == math.inf
                ''',
            }
        )
        assert len(findings_for(root, "REP004")) == 1

    def test_int_cast_roundness_idiom_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def check(value):
                        return value == int(value)
                ''',
            }
        )
        assert len(findings_for(root, "REP004")) == 1

    def test_division_comparison_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def check(a, b, c):
                        return a / b != c
                ''',
            }
        )
        assert len(findings_for(root, "REP004")) == 1

    def test_integer_and_string_comparisons_are_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def check(n, s, xs):
                        return n == 3 and s != "done" and n == len(xs)
                ''',
            }
        )
        assert findings_for(root, "REP004") == []

    def test_ordering_comparisons_are_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def check(x):
                        return x < 0.5 or x >= 1.0
                ''',
            }
        )
        assert findings_for(root, "REP004") == []

    def test_isclose_replacement_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    import math

                    def check(x, y):
                        return math.isclose(x, y) or math.isinf(x) or x.is_integer()
                ''',
            }
        )
        assert findings_for(root, "REP004") == []


class TestBareExcept:
    def test_bare_except_is_flagged(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def risky(f):
                        try:
                            return f()
                        except:
                            return None
                ''',
            }
        )
        findings = findings_for(root, "REP004")
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_typed_except_is_fine(self, project):
        root = project(
            {
                "src/pkg/a.py": '''
                    def risky(f):
                        try:
                            return f()
                        except Exception:
                            return None
                ''',
            }
        )
        assert findings_for(root, "REP004") == []
