"""Fixtures for the repro.analysis test suite.

``project`` builds a throwaway project rooted at ``tmp_path``: a
``pyproject.toml`` (so :func:`repro.analysis.core.project_root_for`
anchors there) plus any fixture source files, written with dedent so
tests can inline readable snippets.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.runner import run_analysis

MINIMAL_PYPROJECT = '[project]\nname = "fixture"\nversion = "0.0.0"\n'


@pytest.fixture
def project(tmp_path):
    def build(files: dict[str, str], pyproject: str = MINIMAL_PYPROJECT) -> Path:
        (tmp_path / "pyproject.toml").write_text(pyproject, encoding="utf-8")
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(dedent(text), encoding="utf-8")
        return tmp_path

    return build


def findings_for(root: Path, code: str, **overrides):
    """Run one rule over a fixture project and return its findings."""
    report = run_analysis(root, overrides={"select": [code], **overrides})
    return report.findings
