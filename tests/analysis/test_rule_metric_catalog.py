"""REP001: metric registrations vs the generated catalog."""

from repro.analysis.config import load_config
from repro.analysis.core import SourceTree
from repro.analysis.generate import update_metric_catalog

from .conftest import findings_for

CATALOG = '''
METRIC_CATALOG = {
    'repro_ops_total': {
        "kind": 'counter',
        "labels": ('relation',),
        "shard_suffix": True,
        "help": 'Ops.',
    },
    'repro_latency_seconds': {
        "kind": 'histogram',
        "labels": (),
        "shard_suffix": False,
        "help": 'Latency.',
    },
}
'''

OPTIONS = {"metric-catalog": {"catalog": "src/pkg/catalog.py"}}


class TestConformingSites:
    def test_exact_labels_match(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("relation",))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        assert findings_for(root, "REP001", **OPTIONS) == []

    def test_star_suffix_idiom_matches_shard_suffix_entry(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry, shard):
                        extra = ("shard",) if shard is not None else ()
                        registry.counter("repro_ops_total", "Ops.", ("relation", *extra))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        assert findings_for(root, "REP001", **OPTIONS) == []

    def test_explicit_shard_label_matches_shard_suffix_entry(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("relation", "shard"))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        assert findings_for(root, "REP001", **OPTIONS) == []

    def test_non_repro_names_are_out_of_scope(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("other_ops_total", "Not ours.")
                        registry.counter("repro_ops_total", "Ops.", ("relation",))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        assert findings_for(root, "REP001", **OPTIONS) == []


class TestViolations:
    def test_unknown_metric_name(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("relation",))
                        registry.counter("repro_surprise_total", "New.")
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "repro_surprise_total" in findings[0].message

    def test_kind_mismatch(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.gauge("repro_ops_total", "Ops.", ("relation",))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "counter" in findings[0].message and "gauge" in findings[0].message

    def test_label_mismatch(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("query",))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "labels" in findings[0].message

    def test_unresolvable_labelnames(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry, labels):
                        registry.counter("repro_ops_total", "Ops.", labels)
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "not a literal" in findings[0].message

    def test_stale_catalog_entry(self, project):
        root = project(
            {
                "src/pkg/catalog.py": CATALOG,
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("relation",))
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "repro_latency_seconds" in findings[0].message
        assert findings[0].path == "src/pkg/catalog.py"

    def test_missing_catalog_flags_every_site(self, project):
        root = project(
            {
                "src/pkg/app.py": '''
                    def setup(registry):
                        registry.counter("repro_ops_total", "Ops.", ("relation",))
                ''',
            }
        )
        findings = findings_for(root, "REP001", **OPTIONS)
        assert len(findings) == 1
        assert "missing" in findings[0].message


class TestGenerator:
    def test_update_then_clean(self, project):
        root = project(
            {
                "src/pkg/app.py": '''
                    def setup(registry, shard):
                        extra = ("shard",) if shard is not None else ()
                        registry.counter("repro_ops_total", "Ops.", ("relation", *extra))
                        registry.histogram("repro_latency_seconds", "Latency.")
                ''',
            }
        )
        config = load_config(root, {"metric-catalog": {"catalog": "src/pkg/catalog.py"}})
        tree = SourceTree.load(root, [root / "src"])
        path = update_metric_catalog(root, tree, config)
        assert path == root / "src/pkg/catalog.py"
        assert findings_for(root, "REP001", **OPTIONS) == []
        # Regeneration is idempotent.
        before = path.read_text()
        update_metric_catalog(root, SourceTree.load(root, [root / "src"]), config)
        assert path.read_text() == before
