"""REP008–REP011: the whole-program rules against on-disk fixtures.

Each fixture project under ``fixtures/`` seeds one true positive (the
regression the rule exists to catch), one noqa'd case, and one clean
case, with the violation and its cause split across modules so the
rules' cross-module reach is what is actually under test.
"""

from pathlib import Path

from repro.analysis.runner import run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def report_for(name: str, code: str, **options):
    root = FIXTURES / name
    return run_analysis(root, overrides={"select": [code], **options})


class TestConcurrencyDiscipline:
    def test_cross_module_unguarded_mutation_is_caught(self):
        report = report_for("rep008", "REP008")
        mutations = [f for f in report.findings if "SharedCounter.total" in f.message]
        assert len(mutations) == 1
        finding = mutations[0]
        assert finding.path == "src/pkg/state.py"
        # The evidence points back at the thread spawn in the other module.
        assert finding.related
        assert finding.related[0].path == "src/pkg/worker.py"

    def test_lock_guard_and_noqa_and_clean(self):
        report = report_for(
            "rep008",
            "REP008",
            **{"concurrency-discipline": {"lock-order-modules": ["src/pkg/order.py"]}},
        )
        messages = " ".join(f.message for f in report.findings)
        assert "safe_total" not in messages  # held lock: clean
        assert "quiet_total" not in messages  # suppressed inline
        assert report.suppressed >= 1

    def test_lock_order_inversion_is_caught(self):
        report = report_for(
            "rep008",
            "REP008",
            **{"concurrency-discipline": {"lock-order-modules": ["src/pkg/order.py"]}},
        )
        inversions = [f for f in report.findings if "inversion" in f.message]
        assert len(inversions) == 1
        assert inversions[0].path == "src/pkg/order.py"
        assert inversions[0].related, "the opposing acquisition site must be attached"

    def test_inversion_outside_configured_modules_is_ignored(self):
        report = report_for(
            "rep008",
            "REP008",
            **{"concurrency-discipline": {"lock-order-modules": ["src/pkg/elsewhere.py"]}},
        )
        assert not [f for f in report.findings if "inversion" in f.message]


class TestMetricDrift:
    def test_ghost_reference_noqa_and_clean(self):
        report = report_for(
            "rep009",
            "REP009",
            **{"metric-drift": {"catalog": "src/pkg/catalog.py"}},
        )
        assert len(report.findings) == 1
        assert "repro_ghost_total" in report.findings[0].message
        assert report.findings[0].path == "src/pkg/dashboard.py"
        assert report.suppressed == 1  # the noqa'd unlisted name

    def test_allow_list_clears_the_finding(self):
        report = report_for(
            "rep009",
            "REP009",
            **{
                "metric-drift": {
                    "catalog": "src/pkg/catalog.py",
                    "allow": ["repro_ghost_total"],
                }
            },
        )
        assert report.findings == []


class TestCheckpointCompleteness:
    def test_drifted_subclass_is_caught_across_modules(self):
        report = report_for("rep010", "REP010")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "Drifted.offset" in finding.message
        assert finding.path == "src/pkg/child.py"
        # Evidence: the inherited state_dict lives in the base module.
        assert finding.related
        assert finding.related[0].path == "src/pkg/base.py"

    def test_exempt_override_and_noqa_are_clean(self):
        report = report_for("rep010", "REP010")
        messages = " ".join(f.message for f in report.findings)
        assert "cache" not in messages  # _checkpoint_exempt honoured via MRO
        assert "scale" not in messages  # overriding state_dict covers it
        assert "scratch" not in messages  # suppressed inline
        assert report.suppressed == 1


class TestAsyncSafety:
    def _report(self):
        return report_for("rep011", "REP011", **{"async-safety": {"paths": ["src"]}})

    def test_blocking_sleep_is_caught(self):
        report = self._report()
        ticks = [f for f in report.findings if "time.sleep" in f.message and f.line]
        assert any("tick" in f.message for f in ticks)

    def test_blocking_through_sync_helper_is_caught_with_evidence(self):
        report = self._report()
        relays = [f for f in report.findings if "warm_up" in f.message]
        assert len(relays) == 1
        assert relays[0].related
        assert relays[0].related[0].note.startswith("blocking time.sleep")

    def test_waiting_pool_shutdown_is_caught(self):
        report = self._report()
        assert any("shutdown" in f.message for f in report.findings)

    def test_noqa_and_clean_coroutine(self):
        report = self._report()
        assert report.suppressed == 1
        lines = {f.line for f in report.findings}
        # clean(): asyncio.sleep and run_in_executor produce nothing.
        clean_src = (FIXTURES / "rep011/src/pkg/daemon.py").read_text().splitlines()
        clean_start = next(
            i for i, line in enumerate(clean_src, start=1) if "async def clean" in line
        )
        assert all(line < clean_start for line in lines)
