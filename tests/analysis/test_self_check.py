"""The repository must pass its own static analysis.

This is the test-suite twin of the CI ``analyze`` job: if a change
introduces a finding, this fails locally before CI does.  The generator
idempotency tests guard the checked-in artifacts (the metric catalog and
the state manifest): regenerating them from the current tree must be a
no-op, i.e. the artifacts are in sync with the code.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.config import load_config
from repro.analysis.core import SourceTree
from repro.analysis.generate import update_metric_catalog, update_state_manifest
from repro.analysis.runner import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_tree_is_clean():
    report = run_analysis(REPO_ROOT, [REPO_ROOT / "src" / "repro"])
    rendered = "\n".join(f"{f.location()}: {f.code} {f.message}" for f in report.findings)
    assert report.findings == [], f"repo fails its own analysis:\n{rendered}"
    assert report.rules_run == (
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
        "REP009",
        "REP010",
        "REP011",
    )
    assert report.files_scanned > 50


def test_repo_baseline_is_empty():
    report = run_analysis(REPO_ROOT, [REPO_ROOT / "src" / "repro"])
    assert report.baselined == []
    assert report.stale_baseline == []


@pytest.fixture
def repo_copy(tmp_path):
    """A disposable copy of the source tree, so generators never touch the repo."""
    shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")
    shutil.copytree(
        REPO_ROOT / "src",
        tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return tmp_path


def test_metric_catalog_is_in_sync(repo_copy):
    config = load_config(repo_copy)
    path = repo_copy / "src/repro/obs/catalog.py"
    before = path.read_text()
    update_metric_catalog(repo_copy, SourceTree.load(repo_copy, [repo_copy / "src"]), config)
    assert path.read_text() == before, (
        "src/repro/obs/catalog.py is stale; regenerate with "
        "`python -m repro.analysis --update-metric-catalog`"
    )


def test_state_manifest_is_in_sync(repo_copy):
    config = load_config(repo_copy)
    path = repo_copy / "src/repro/resilience/state_manifest.py"
    before = path.read_text()
    update_state_manifest(repo_copy, SourceTree.load(repo_copy, [repo_copy / "src"]), config)
    assert path.read_text() == before, (
        "src/repro/resilience/state_manifest.py is stale; regenerate with "
        "`python -m repro.analysis --update-state-manifest`"
    )
