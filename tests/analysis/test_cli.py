"""The CLI exit-code contract and baseline maintenance flags.

The contract CI keys off (documented in ``repro.analysis.cli``):

* ``0`` — clean run (or maintenance flag succeeded);
* ``1`` — the *code under analysis* has violations;
* ``2`` — usage error, generation error, or the *analyzer itself*
  failed, so the run must not be trusted as clean.
"""

import json

from repro.analysis.cli import main

from .conftest import MINIMAL_PYPROJECT

PYPROJECT = MINIMAL_PYPROJECT + '\n[tool.repro-analysis]\nselect = ["REP003"]\n'
DIRTY = "cache = {}\n"  # one REP003 finding
CLEAN = "CACHE = {}\n"


def dirty_project(project):
    return project({"src/pkg/app.py": DIRTY}, pyproject=PYPROJECT)


class TestExitCodeContract:
    def test_clean_is_zero(self, project, capsys):
        root = project({"src/pkg/app.py": CLEAN}, pyproject=PYPROJECT)
        assert main([str(root / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violations_are_one(self, project, capsys):
        root = dirty_project(project)
        assert main([str(root / "src")]) == 1
        assert "REP003" in capsys.readouterr().out

    def test_corrupt_baseline_is_an_internal_error(self, project, capsys):
        root = dirty_project(project)
        (root / "analysis-baseline.json").write_text("{not json", encoding="utf-8")
        assert main([str(root / "src")]) == 2
        err = capsys.readouterr().err
        assert "internal analyzer error" in err

    def test_wrong_baseline_version_is_an_internal_error(self, project, capsys):
        root = dirty_project(project)
        (root / "analysis-baseline.json").write_text(
            '{"version": 99, "findings": {}}', encoding="utf-8"
        )
        assert main([str(root / "src")]) == 2
        assert "version-1" in capsys.readouterr().err

    def test_internal_error_is_not_mistaken_for_clean(self, project, capsys):
        # Even a tree with zero findings must exit 2 when the analyzer
        # cannot complete — a crashed run is not a clean run.
        root = project({"src/pkg/app.py": CLEAN}, pyproject=PYPROJECT)
        (root / "analysis-baseline.json").write_text("[]", encoding="utf-8")
        assert main([str(root / "src")]) == 2
        capsys.readouterr()


class TestPruneBaseline:
    def stale_project(self, project):
        """Baseline the finding, then fix it, leaving one stale entry."""
        root = dirty_project(project)
        assert main([str(root / "src"), "--write-baseline"]) == 0
        (root / "src/pkg/app.py").write_text(CLEAN, encoding="utf-8")
        return root

    def test_stale_entry_warns_until_pruned(self, project, capsys):
        root = self.stale_project(project)
        capsys.readouterr()
        assert main([str(root / "src")]) == 0
        assert "no longer matches any finding" in capsys.readouterr().out

    def test_prune_removes_stale_entries(self, project, capsys):
        root = self.stale_project(project)
        capsys.readouterr()
        assert main([str(root / "src"), "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale entry" in out
        assert "no longer matches any finding" not in out

        data = json.loads((root / "analysis-baseline.json").read_text())
        assert data["findings"] == {}

        # The next plain run is quiet: nothing left to warn about.
        assert main([str(root / "src")]) == 0
        assert "no longer matches any finding" not in capsys.readouterr().out

    def test_prune_keeps_live_entries(self, project, capsys):
        root = project(
            {"src/pkg/app.py": DIRTY, "src/pkg/other.py": "state = {}\n"},
            pyproject=PYPROJECT,
        )
        assert main([str(root / "src"), "--write-baseline"]) == 0
        (root / "src/pkg/other.py").write_text("STATE = {}\n", encoding="utf-8")
        capsys.readouterr()
        assert main([str(root / "src"), "--prune-baseline"]) == 0
        assert "(1 kept)" in capsys.readouterr().out
        data = json.loads((root / "analysis-baseline.json").read_text())
        assert len(data["findings"]) == 1

    def test_prune_on_fresh_tree_is_a_no_op(self, project, capsys):
        root = project({"src/pkg/app.py": CLEAN}, pyproject=PYPROJECT)
        assert main([str(root / "src"), "--prune-baseline"]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out
