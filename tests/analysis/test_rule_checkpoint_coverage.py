"""REP002: checkpoint state coverage and the versioned manifest."""

import pytest

from repro.analysis.config import load_config
from repro.analysis.core import SourceTree
from repro.analysis.generate import GenerationError, update_state_manifest

from .conftest import findings_for

OPTIONS = {
    "checkpoint-coverage": {
        "manifest": "src/pkg/state_manifest.py",
        "format-source": "src/pkg/checkpoint.py",
    }
}

CHECKPOINT = "FORMAT_VERSION = 1\n"

COVERED = '''
class Synopsis:
    def __init__(self, spec):
        self.spec = spec
        self.sums = [0.0]

    def state_dict(self):
        return {"spec": self.spec, "sums": self.sums}

    def load_state(self, state):
        self.sums = state["sums"]
'''

# COVERED with ``sums`` dropped from the state shape entirely.
SLIM = '''
class Synopsis:
    def __init__(self, spec):
        self.spec = spec

    def state_dict(self):
        return {"spec": self.spec}

    def load_state(self, state):
        self.spec = state["spec"]
'''


def regenerate(root):
    config = load_config(
        root,
        {
            "checkpoint-coverage": {
                "manifest": "src/pkg/state_manifest.py",
                "format-source": "src/pkg/checkpoint.py",
            }
        },
    )
    return update_state_manifest(root, SourceTree.load(root, [root / "src"]), config)


class TestCoverage:
    def test_fully_serialized_class_is_clean(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        assert findings_for(root, "REP002", **OPTIONS) == []

    def test_unserialized_attribute_is_flagged_at_its_assignment(self, project):
        root = project(
            {
                "src/pkg/checkpoint.py": CHECKPOINT,
                "src/pkg/a.py": '''
                    class Synopsis:
                        def __init__(self, spec):
                            self.spec = spec
                            self.sums = [0.0]

                        def state_dict(self):
                            return {"sums": self.sums}

                        def load_state(self, state):
                            self.sums = state["sums"]
                ''',
            }
        )
        regenerate(root)
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "Synopsis.spec" in findings[0].message
        offending = (root / "src/pkg/a.py").read_text().splitlines()[findings[0].line - 1]
        assert offending.strip() == "self.spec = spec"

    def test_exempt_attribute_is_accepted(self, project):
        root = project(
            {
                "src/pkg/checkpoint.py": CHECKPOINT,
                "src/pkg/a.py": '''
                    class Synopsis:
                        _checkpoint_exempt = ("spec",)

                        def __init__(self, spec):
                            self.spec = spec
                            self.sums = [0.0]

                        def state_dict(self):
                            return {"sums": self.sums}

                        def load_state(self, state):
                            self.sums = state["sums"]
                ''',
            }
        )
        regenerate(root)
        assert findings_for(root, "REP002", **OPTIONS) == []

    def test_stale_exemption_is_flagged(self, project):
        root = project(
            {
                "src/pkg/checkpoint.py": CHECKPOINT,
                "src/pkg/a.py": '''
                    class Synopsis:
                        _checkpoint_exempt = ("ghost",)

                        def __init__(self, spec):
                            self.spec = spec

                        def state_dict(self):
                            return {"spec": self.spec}

                        def load_state(self, state):
                            self.spec = state["spec"]
                ''',
            }
        )
        regenerate(root)
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "ghost" in findings[0].message and "never assigned" in findings[0].message

    def test_exempt_but_serialized_is_flagged(self, project):
        root = project(
            {
                "src/pkg/checkpoint.py": CHECKPOINT,
                "src/pkg/a.py": '''
                    class Synopsis:
                        _checkpoint_exempt = ("spec",)

                        def __init__(self, spec):
                            self.spec = spec

                        def state_dict(self):
                            return {"spec": self.spec}

                        def load_state(self, state):
                            self.spec = state["spec"]
                ''',
            }
        )
        regenerate(root)
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "drop the stale exemption" in findings[0].message

    def test_non_protocol_classes_are_out_of_scope(self, project):
        root = project(
            {
                "src/pkg/checkpoint.py": CHECKPOINT,
                "src/pkg/a.py": '''
                    class Plain:
                        def __init__(self):
                            self.anything = 1
                ''',
            }
        )
        assert findings_for(root, "REP002", **OPTIONS) == []


class TestManifest:
    def test_missing_manifest_is_flagged(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "no state manifest" in findings[0].message

    def test_state_shape_drift_is_flagged(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/a.py").write_text(
            COVERED.replace(
                'return {"spec": self.spec, "sums": self.sums}',
                'return {"spec": self.spec, "sums": self.sums, "extra": self.extra}',
            )
        )
        findings = findings_for(root, "REP002", **OPTIONS)
        assert any("state shape changed" in f.message for f in findings)

    def test_version_mismatch_is_flagged(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/checkpoint.py").write_text("FORMAT_VERSION = 2\n")
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "FORMAT_VERSION" in findings[0].message

    def test_stale_manifest_entry_is_flagged(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/a.py").write_text("x = 1\n")
        findings = findings_for(root, "REP002", **OPTIONS)
        assert len(findings) == 1
        assert "matches no checkpoint-protocol class" in findings[0].message


class TestGeneratorVersionGate:
    def test_shape_change_without_bump_is_refused(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/a.py").write_text(SLIM)
        with pytest.raises(GenerationError, match="bump it"):
            regenerate(root)

    def test_shape_change_with_bump_regenerates(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/a.py").write_text(SLIM)
        (root / "src/pkg/checkpoint.py").write_text("FORMAT_VERSION = 2\n")
        path = regenerate(root)
        assert "FORMAT_VERSION = 2" in path.read_text()
        assert findings_for(root, "REP002", **OPTIONS) == []

    def test_new_class_regenerates_without_bump(self, project):
        root = project({"src/pkg/checkpoint.py": CHECKPOINT, "src/pkg/a.py": COVERED})
        regenerate(root)
        (root / "src/pkg/b.py").write_text(COVERED.replace("Synopsis", "Other"))
        path = regenerate(root)  # no GenerationError
        assert "Other" in path.read_text()
