"""The driver and CLI: partitioning, baseline, selection, exit codes, goldens."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import BASELINE_VERSION, Baseline
from repro.analysis.cli import main
from repro.analysis.runner import run_analysis

from .conftest import MINIMAL_PYPROJECT

GOLDENS = Path(__file__).parent / "goldens"

# Fixed fixture behind the golden-file tests: one REP003 finding (line 1)
# and one REP004 finding (line 5).  Selection is pinned in pyproject so
# the goldens also exercise [tool.repro-analysis] loading.
GOLDEN_PYPROJECT = (
    MINIMAL_PYPROJECT + '\n[tool.repro-analysis]\nselect = ["REP003", "REP004"]\n'
)
GOLDEN_APP = 'cache = {}\n\n\ndef check(x):\n    return x == 0.5\n'


def golden_project(project):
    return project({"src/pkg/app.py": GOLDEN_APP}, pyproject=GOLDEN_PYPROJECT)


class TestPartitioning:
    def test_inline_noqa_is_counted_not_reported(self, project):
        root = project({"src/pkg/a.py": "cache = {}  # repro: noqa[REP003]\n"})
        report = run_analysis(root, overrides={"select": ["REP003"]})
        assert report.findings == []
        assert report.suppressed == 1

    def test_blanket_noqa_suppresses_every_rule(self, project):
        root = project({"src/pkg/a.py": "cache = {}  # repro: noqa\n"})
        report = run_analysis(root, overrides={"select": ["REP003"]})
        assert report.findings == []
        assert report.suppressed == 1

    def test_noqa_for_another_code_does_not_suppress(self, project):
        root = project({"src/pkg/a.py": "cache = {}  # repro: noqa[REP004]\n"})
        report = run_analysis(root, overrides={"select": ["REP003"]})
        assert len(report.findings) == 1
        assert report.suppressed == 0

    def test_findings_sort_by_location(self, project):
        root = project(
            {
                "src/pkg/b.py": "cache = {}\n",
                "src/pkg/a.py": "state = []\n\ndef f(x):\n    return x == 0.5\n",
            }
        )
        report = run_analysis(root, overrides={"select": ["REP003", "REP004"]})
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)


class TestSelection:
    def test_select_by_kebab_name(self, project):
        root = golden_project(project)
        report = run_analysis(root, overrides={"select": ["shard-safety"]})
        assert [f.code for f in report.findings] == ["REP003"]

    def test_ignore_removes_a_rule(self, project):
        root = golden_project(project)
        report = run_analysis(root, overrides={"ignore": ["REP004"]})
        assert [f.code for f in report.findings] == ["REP003"]

    def test_pyproject_select_is_honoured(self, project):
        root = golden_project(project)
        report = run_analysis(root)
        assert report.rules_run == ("REP003", "REP004")

    def test_cli_select_accepts_comma_lists(self, project, capsys):
        root = golden_project(project)
        rc = main([str(root / "src"), "--select", "REP003,REP004"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REP003" in out and "REP004" in out


class TestBaseline:
    def test_write_baseline_then_clean_run(self, project, capsys):
        root = golden_project(project)
        assert main([str(root / "src"), "--write-baseline"]) == 0
        baseline_path = root / "analysis-baseline.json"
        assert baseline_path.is_file()
        data = json.loads(baseline_path.read_text())
        assert data["version"] == BASELINE_VERSION
        assert len(data["findings"]) == 2

        capsys.readouterr()
        assert main([str(root / "src")]) == 0
        report = run_analysis(root)
        assert report.findings == [] and len(report.baselined) == 2

    def test_fixed_finding_goes_stale(self, project):
        root = golden_project(project)
        assert main([str(root / "src"), "--write-baseline"]) == 0
        (root / "src/pkg/app.py").write_text("CACHE = {}\n\n\ndef check(x):\n    return x == 0.5\n")
        report = run_analysis(root)
        assert len(report.baselined) == 1
        assert len(report.stale_baseline) == 1

    def test_stale_entries_warn_in_text_output(self, project, capsys):
        root = golden_project(project)
        assert main([str(root / "src"), "--write-baseline"]) == 0
        (root / "src/pkg/app.py").write_text("x = 1\n")
        capsys.readouterr()
        assert main([str(root / "src")]) == 0
        assert "no longer matches any finding" in capsys.readouterr().out

    def test_wrong_version_is_rejected(self, project):
        root = golden_project(project)
        path = root / "analysis-baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError, match="version-1"):
            Baseline.load(path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        root = project({"src/pkg/a.py": "X = 1\n"}, pyproject=GOLDEN_PYPROJECT)
        assert main([str(root / "src")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, project, capsys):
        root = golden_project(project)
        assert main([str(root / "src")]) == 1
        out = capsys.readouterr().out
        assert "src/pkg/app.py:1:0: REP003" in out
        assert "2 findings" in out

    def test_generation_error_exits_two(self, project, capsys):
        gate_pyproject = MINIMAL_PYPROJECT + (
            "\n[tool.repro-analysis.checkpoint-coverage]\n"
            'manifest = "src/pkg/state_manifest.py"\n'
            'format-source = "src/pkg/checkpoint.py"\n'
        )
        covered = (
            "class Synopsis:\n"
            "    def __init__(self, spec):\n"
            "        self.spec = spec\n"
            "    def state_dict(self):\n"
            '        return {"spec": self.spec}\n'
            "    def load_state(self, state):\n"
            '        self.spec = state["spec"]\n'
        )
        root = project(
            {"src/pkg/checkpoint.py": "FORMAT_VERSION = 1\n", "src/pkg/a.py": covered},
            pyproject=gate_pyproject,
        )
        assert main([str(root / "src"), "--update-state-manifest"]) == 0
        (root / "src/pkg/a.py").write_text(
            covered.replace(
                "self.spec = spec\n", "self.spec = spec\n        self.extra = spec\n"
            ).replace('"spec": self.spec}', '"spec": self.spec, "extra": self.extra}')
        )
        assert main([str(root / "src"), "--update-state-manifest"]) == 2
        assert "bump it" in capsys.readouterr().err

    def test_bad_format_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--format", "yaml"])
        assert exc.value.code == 2


class TestCliSurface:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out

    def test_output_file(self, project, tmp_path):
        root = golden_project(project)
        out = root / "report.txt"
        assert main([str(root / "src"), "--output", str(out)]) == 1
        assert "2 findings" in out.read_text()


class TestGoldens:
    """Byte-exact machine output; regenerate with scripts/refresh_goldens.py."""

    def render(self, project, fmt):
        root = golden_project(project)
        out = root / f"report.{fmt}"
        assert main([str(root / "src"), "--format", fmt, "--output", str(out)]) == 1
        return out.read_text()

    def test_json_golden(self, project):
        assert self.render(project, "json") == (GOLDENS / "report.json").read_text()

    def test_sarif_golden(self, project):
        assert self.render(project, "sarif") == (GOLDENS / "report.sarif").read_text()

    def test_sarif_is_wellformed(self, project):
        log = json.loads(self.render(project, "sarif"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        assert len(run["results"]) == 2
        for result in run["results"]:
            assert result["partialFingerprints"]["reproAnalysis/v1"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
