"""OTLP exporters: file/stdout output, retry/drop accounting, push loop."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.otel.encode import (
    encode_metrics,
    validate_metrics_payload,
    validate_traces_payload,
)
from repro.obs.otel.export import OtelPushLoop, OtlpJsonFileExporter
from repro.obs.tracing import Tracer
from repro.resilience.retry import RetryPolicy


class FlakyExporter(OtlpJsonFileExporter):
    """File exporter whose first ``fail_times`` sends raise ``OSError``."""

    def __init__(self, path, fail_times=0, **kwargs):
        super().__init__(path, **kwargs)
        self.fail_times = fail_times
        self.attempts = 0

    def _send(self, signal, data):
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise OSError("collector unreachable")
        super()._send(signal, data)


def make_registry():
    registry = MetricsRegistry()
    registry.counter("repro_test_ops_total", "ops").inc(10)
    return registry


def make_spans():
    tracer = Tracer()
    tracer.emit("ingest_batch", 0.001, count=32, relation="R1")
    tracer.emit("estimate", 0.0002, query="q0")
    return tracer.drain()


class TestFileExporter:
    def test_appends_one_validating_payload_per_line(self, tmp_path):
        out = tmp_path / "otel.jsonl"
        exporter = OtlpJsonFileExporter(out)
        assert exporter.export("metrics", encode_metrics(make_registry()))
        assert exporter.export("metrics", encode_metrics(make_registry()))
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert validate_metrics_payload(json.loads(line)) == []
        assert exporter.exports == 2
        assert exporter.drops == 0

    def test_dash_path_writes_stdout(self, capsys):
        exporter = OtlpJsonFileExporter("-")
        assert exporter.export("metrics", encode_metrics(make_registry()))
        line = capsys.readouterr().out.strip()
        assert validate_metrics_payload(json.loads(line)) == []

    def test_unwritable_path_drops_not_raises(self, tmp_path):
        exporter = OtlpJsonFileExporter(
            tmp_path / "missing" / "dir" / "otel.jsonl",
            retry=RetryPolicy(attempts=2, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert exporter.export("metrics", encode_metrics(make_registry())) is False
        assert exporter.drops == 1
        assert exporter.retries == 1  # one failed attempt was retried


class TestRetryAccounting:
    def test_transient_failure_retries_then_lands(self, tmp_path):
        sleeps = []
        exporter = FlakyExporter(
            tmp_path / "otel.jsonl",
            fail_times=2,
            retry=RetryPolicy(attempts=4, base_delay=0.01),
            sleep=sleeps.append,
        )
        assert exporter.export("traces", {"resourceSpans": []})
        assert exporter.attempts == 3
        assert exporter.retries == 2
        assert exporter.exports == 1
        assert exporter.drops == 0
        assert len(sleeps) == 2  # backed off between the failed attempts

    def test_exhausted_retries_become_a_drop(self, tmp_path):
        exporter = FlakyExporter(
            tmp_path / "otel.jsonl",
            fail_times=99,
            retry=RetryPolicy(attempts=3, base_delay=0.0),
            sleep=lambda _s: None,
        )
        assert exporter.export("traces", {"resourceSpans": []}) is False
        assert exporter.attempts == 3
        assert exporter.retries == 2
        assert exporter.drops == 1
        assert exporter.exports == 0
        assert not (tmp_path / "otel.jsonl").exists()

    def test_self_metrics_land_in_registry_by_signal(self, tmp_path):
        registry = make_registry()
        exporter = FlakyExporter(
            tmp_path / "otel.jsonl",
            fail_times=1,
            retry=RetryPolicy(attempts=2, base_delay=0.0),
            registry=registry,
            sleep=lambda _s: None,
        )
        exporter.export("traces", {"resourceSpans": []})
        exporter.export("metrics", encode_metrics(registry))
        snapshot = registry.snapshot()
        assert snapshot["repro_otel_exports_total"]["values"] == {"traces": 1, "metrics": 1}
        assert snapshot["repro_otel_export_retries_total"]["values"] == {"traces": 1}
        assert snapshot["repro_otel_export_drops_total"]["values"] == {}  # nothing dropped


class TestPushLoop:
    def test_push_now_exports_both_signals(self, tmp_path):
        out = tmp_path / "otel.jsonl"
        tracer = Tracer()
        tracer.emit("ingest_batch", 0.001)
        loop = OtelPushLoop(
            OtlpJsonFileExporter(out),
            metrics=make_registry(),
            spans=lambda: [({"shard": "0"}, tracer.drain())],
        )
        result = loop.push_now()
        assert result == {"spans": 1, "payloads": 2}
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        traces = [p for p in lines if "resourceSpans" in p]
        metrics = [p for p in lines if "resourceMetrics" in p]
        assert len(traces) == 1 and len(metrics) == 1
        assert validate_traces_payload(traces[0]) == []
        assert validate_metrics_payload(metrics[0]) == []

    def test_drained_spans_export_exactly_once(self, tmp_path):
        out = tmp_path / "otel.jsonl"
        tracer = Tracer()
        tracer.emit("ingest_batch", 0.001)
        loop = OtelPushLoop(
            OtlpJsonFileExporter(out),
            spans=lambda: [({}, tracer.drain())],
        )
        assert loop.push_now()["spans"] == 1
        assert loop.push_now()["spans"] == 0  # nothing left; no trace payload
        payloads = [json.loads(line) for line in out.read_text().splitlines()]
        assert sum(1 for p in payloads if "resourceSpans" in p) == 1

    def test_metrics_push_every_time_even_without_spans(self, tmp_path):
        out = tmp_path / "otel.jsonl"
        loop = OtelPushLoop(OtlpJsonFileExporter(out), metrics=make_registry())
        loop.push_now()
        loop.push_now()
        payloads = [json.loads(line) for line in out.read_text().splitlines()]
        assert all("resourceMetrics" in p for p in payloads)
        assert len(payloads) == 2

    def test_maybe_push_rate_limits(self, tmp_path):
        loop = OtelPushLoop(
            OtlpJsonFileExporter(tmp_path / "otel.jsonl"),
            metrics=make_registry(),
            every_s=60.0,
        )
        assert loop.maybe_push() is True  # first call always pushes
        assert loop.maybe_push() is False  # interval not elapsed
        loop._last_push -= 61.0
        assert loop.maybe_push() is True

    def test_registry_metrics_gain_backend_gauge_and_export_counters(self, tmp_path):
        registry = make_registry()
        loop = OtelPushLoop(OtlpJsonFileExporter(tmp_path / "otel.jsonl"), metrics=registry)
        loop.push_now()
        snapshot = registry.snapshot()
        assert snapshot["repro_otel_backend"]["values"]["stdlib"] == 1
        assert snapshot["repro_otel_exports_total"]["values"]["metrics"] == 1

    def test_callable_source_never_binds_self_metrics_implicitly(self, tmp_path):
        registry = make_registry()
        exporter = OtlpJsonFileExporter(tmp_path / "otel.jsonl")
        loop = OtelPushLoop(exporter, metrics=lambda: registry)
        loop.push_now()
        assert exporter.exports == 1
        assert "repro_otel_exports_total" not in registry.snapshot()

    def test_explicit_registry_hosts_self_metrics_for_callable_source(self, tmp_path):
        merged = make_registry()
        stable = MetricsRegistry()
        loop = OtelPushLoop(
            OtlpJsonFileExporter(tmp_path / "otel.jsonl"),
            metrics=lambda: merged,
            registry=stable,
        )
        loop.push_now()
        assert stable.snapshot()["repro_otel_exports_total"]["values"]["metrics"] == 1

    def test_start_requires_interval(self, tmp_path):
        loop = OtelPushLoop(OtlpJsonFileExporter(tmp_path / "otel.jsonl"))
        with pytest.raises(ValueError, match="every_s"):
            loop.start()

    def test_non_positive_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            OtelPushLoop(OtlpJsonFileExporter(tmp_path / "otel.jsonl"), every_s=0.0)

    def test_stop_flushes_buffered_spans(self, tmp_path):
        out = tmp_path / "otel.jsonl"
        tracer = Tracer()
        loop = OtelPushLoop(
            OtlpJsonFileExporter(out),
            spans=lambda: [({}, tracer.drain())],
            every_s=3600.0,
        )
        loop.start()
        with pytest.raises(RuntimeError, match="already started"):
            loop.start()
        tracer.emit("ingest_batch", 0.001)
        loop.stop()  # final push delivers the span recorded mid-run
        payloads = [json.loads(line) for line in out.read_text().splitlines()]
        assert sum(1 for p in payloads if "resourceSpans" in p) == 1
