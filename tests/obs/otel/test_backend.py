"""Backend selection: env override, sdk gating, backend gauge."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.otel import backend


@pytest.fixture(autouse=True)
def restore_backend():
    """Leave the module-global backend exactly as the suite found it."""
    before = backend.backend_name()
    gauges = list(backend._GAUGE_FAMILIES)
    yield
    backend.set_backend(before)
    backend._GAUGE_FAMILIES[:] = gauges


class TestInitialBackend:
    def test_defaults_to_stdlib_without_sdk(self, monkeypatch):
        monkeypatch.delenv("REPRO_OTEL", raising=False)
        if not backend.HAVE_SDK:
            assert backend._initial_backend() == "stdlib"

    def test_auto_and_empty_keep_automatic_choice(self, monkeypatch):
        automatic = "sdk" if backend.HAVE_SDK else "stdlib"
        for value in ("", "auto", "AUTO", " auto "):
            monkeypatch.setenv("REPRO_OTEL", value)
            assert backend._initial_backend() == automatic

    def test_explicit_stdlib_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_OTEL", "stdlib")
        assert backend._initial_backend() == "stdlib"

    def test_sdk_request_without_sdk_falls_back(self, monkeypatch):
        if backend.HAVE_SDK:
            pytest.skip("opentelemetry-sdk installed; fallback unreachable")
        monkeypatch.setenv("REPRO_OTEL", "sdk")
        assert backend._initial_backend() == "stdlib"

    def test_unknown_value_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_OTEL", "jaeger")
        with pytest.raises(ValueError, match="jaeger"):
            backend._initial_backend()


class TestSetBackend:
    def test_returns_previous(self):
        previous = backend.backend_name()
        assert backend.set_backend("stdlib") == previous
        assert backend.backend_name() == "stdlib"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend.set_backend("zipkin")

    def test_explicit_sdk_without_sdk_raises(self):
        if backend.HAVE_SDK:
            pytest.skip("opentelemetry-sdk installed; gate unreachable")
        with pytest.raises(RuntimeError, match="not importable"):
            backend.set_backend("sdk")

    def test_available_backends_subset_of_known(self):
        available = backend.available_backends()
        assert set(available) <= set(backend.BACKENDS)
        assert "stdlib" in available


class TestBackendGauge:
    def test_gauge_marks_active_backend(self):
        registry = MetricsRegistry()
        backend.set_backend("stdlib")
        backend.register_backend_gauge(registry)
        values = registry.snapshot()["repro_otel_backend"]["values"]
        assert values["stdlib"] == 1
        assert values.get("sdk", 0) == 0

    def test_registering_twice_keeps_one_family(self):
        registry = MetricsRegistry()
        before = len(backend._GAUGE_FAMILIES)
        backend.register_backend_gauge(registry)
        backend.register_backend_gauge(registry)
        assert len(backend._GAUGE_FAMILIES) == before + 1


class TestReplayAndDescribe:
    def test_replay_is_noop_on_stdlib(self):
        backend.set_backend("stdlib")
        assert backend.replay_spans_via_sdk([], {}) is False

    def test_describe_is_json_compatible(self):
        info = backend.describe()
        assert info["backend"] in backend.BACKENDS
        assert info["sdk_importable"] is backend.HAVE_SDK
        assert set(info["available"]) <= set(backend.BACKENDS)
