"""OTLP/JSON encoding: round-trips, proto3 conventions, validators."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.otel.encode import (
    SCOPE_NAME,
    default_resource,
    encode_metrics,
    encode_span_groups,
    encode_spans,
    epoch_anchor_ns,
    metrics_from_otlp,
    spans_from_otlp,
    validate_metrics_payload,
    validate_traces_payload,
)
from repro.obs.tracing import SpanEvent, TraceContext, Tracer


def make_events(n=3):
    """A batch of fully-identified span events from one tracer."""
    tracer = Tracer()
    for i in range(n):
        tracer.emit("ingest_batch", 0.002 * (i + 1), count=64, relation=f"R{i}")
    return tracer.drain()


class TestSpanEncoding:
    def test_payload_validates(self):
        payload = encode_spans(make_events())
        assert validate_traces_payload(payload) == []

    def test_json_serializable(self):
        payload = encode_spans(make_events())
        assert json.loads(json.dumps(payload)) == payload

    def test_round_trip_preserves_events(self):
        events = make_events()
        payload = encode_spans(events, anchor_ns=0)
        decoded = [event for _, event in spans_from_otlp(payload, anchor_ns=0)]
        assert len(decoded) == len(events)
        for original, back in zip(events, decoded):
            assert back.name == original.name
            assert back.count == original.count
            assert back.attrs == original.attrs
            assert back.trace_id == original.trace_id
            assert back.span_id == original.span_id
            assert back.parent_span_id == original.parent_span_id
            assert back.start == pytest.approx(original.start, abs=1e-8)
            assert back.duration == pytest.approx(original.duration, abs=1e-8)

    def test_ids_encoded_as_hex_strings(self):
        events = make_events(1)
        span = encode_spans(events)["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert span["traceId"] == events[0].trace_id
        assert span["spanId"] == events[0].span_id
        assert span["parentSpanId"] == events[0].parent_span_id
        assert len(span["traceId"]) == 32
        assert len(span["spanId"]) == 16

    def test_timestamps_are_uint64_strings_in_order(self):
        span = encode_spans(make_events(1))["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        start, end = span["startTimeUnixNano"], span["endTimeUnixNano"]
        assert isinstance(start, str) and start.isdigit()
        assert isinstance(end, str) and end.isdigit()
        assert int(start) <= int(end)

    def test_anchor_maps_monotonic_onto_epoch(self):
        event = SpanEvent(
            "estimate", start=10.0, duration=0.5,
            trace_id="ab" * 16, span_id="cd" * 8,
        )
        payload = encode_spans([event], anchor_ns=1_000_000_000)
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert span["startTimeUnixNano"] == str(1_000_000_000 + 10_000_000_000)
        assert span["endTimeUnixNano"] == str(1_000_000_000 + 10_500_000_000)

    def test_epoch_anchor_is_stable(self):
        first, second = epoch_anchor_ns(), epoch_anchor_ns()
        assert abs(first - second) < 50_000_000  # same clock pair, <50ms jitter

    def test_legacy_events_get_minted_identity(self):
        legacy = SpanEvent("ingest_batch", start=0.0, duration=0.001)
        payload = encode_spans([legacy])
        assert validate_traces_payload(payload) == []
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert len(span["traceId"]) == 32
        assert "parentSpanId" not in span

    def test_groups_become_per_resource_entries(self):
        groups = [
            ({"shard": "0"}, make_events(1)),
            ({"shard": "1"}, make_events(2)),
            ({"shard": "2"}, []),  # empty group omitted
        ]
        payload = encode_span_groups(groups)
        assert len(payload["resourceSpans"]) == 2
        decoded = spans_from_otlp(payload)
        shards = {resource["shard"] for resource, _ in decoded}
        assert shards == {"0", "1"}
        base = decoded[0][0]
        assert base["service.name"] == "repro"

    def test_scope_names_the_library(self):
        payload = encode_spans(make_events(1))
        scope = payload["resourceSpans"][0]["scopeSpans"][0]["scope"]
        assert scope["name"] == SCOPE_NAME
        assert scope["version"]

    def test_count_travels_as_int_attribute(self):
        span = encode_spans(make_events(1))["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        by_key = {entry["key"]: entry["value"] for entry in span["attributes"]}
        assert by_key["count"] == {"intValue": "64"}
        assert by_key["relation"] == {"stringValue": "R0"}


class TestTraceValidation:
    def test_flags_zero_trace_id(self):
        payload = encode_spans(make_events(1))
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        span["traceId"] = "0" * 32
        assert any("traceId" in p for p in validate_traces_payload(payload))

    def test_flags_short_span_id(self):
        payload = encode_spans(make_events(1))
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        span["spanId"] = "abc"
        assert any("spanId" in p for p in validate_traces_payload(payload))

    def test_flags_integer_timestamps(self):
        payload = encode_spans(make_events(1))
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        span["startTimeUnixNano"] = int(span["startTimeUnixNano"])
        assert any("uint64-as-string" in p for p in validate_traces_payload(payload))

    def test_flags_reversed_timestamps(self):
        payload = encode_spans(make_events(1))
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        span["startTimeUnixNano"], span["endTimeUnixNano"] = (
            span["endTimeUnixNano"],
            str(int(span["startTimeUnixNano"]) - 1),
        )
        assert any("after" in p for p in validate_traces_payload(payload))

    def test_flags_double_typed_attribute(self):
        payload = encode_spans(make_events(1))
        span = payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        span["attributes"][0]["value"] = {"stringValue": "x", "intValue": "1"}
        assert any("exactly one AnyValue" in p for p in validate_traces_payload(payload))

    def test_flags_missing_resource_spans(self):
        assert validate_traces_payload({}) == ["payload must have a 'resourceSpans' list"]


def make_registry():
    registry = MetricsRegistry()
    registry.counter("repro_test_ops_total", "ops").inc(41)
    registry.counter("repro_test_ops_total", "ops").inc(1)
    registry.gauge("repro_test_depth", "depth").set(2.5)
    family = registry.counter(
        "repro_test_by_relation_total", "per relation", labelnames=("relation",)
    )
    family.labels(relation="R1").inc(7)
    family.labels(relation="R2").inc(9)
    hist = registry.histogram(
        "repro_test_latency_seconds", "latency", buckets=(0.001, 0.01, 0.1)
    )
    for value in (0.0005, 0.004, 0.05, 2.0):
        hist.observe(value)
    return registry


class TestMetricEncoding:
    def test_payload_validates(self):
        assert validate_metrics_payload(encode_metrics(make_registry())) == []

    def test_json_serializable(self):
        payload = encode_metrics(make_registry())
        assert json.loads(json.dumps(payload)) == payload

    def test_round_trip_preserves_values(self):
        registry = make_registry()
        back = metrics_from_otlp(encode_metrics(registry))
        assert back.counter("repro_test_ops_total", "").value == 42
        assert back.gauge("repro_test_depth", "").value == 2.5
        family = back.counter("repro_test_by_relation_total", "", labelnames=("relation",))
        assert family.labels(relation="R1").value == 7
        assert family.labels(relation="R2").value == 9
        hist = back.histogram(
            "repro_test_latency_seconds", "", buckets=(0.001, 0.01, 0.1)
        )
        original = registry.get("repro_test_latency_seconds")
        assert hist.count == original.count
        assert hist.sum == pytest.approx(original.sum)
        assert hist.bucket_counts == original.bucket_counts
        assert hist.min == original.min
        assert hist.max == original.max

    def test_integral_values_use_as_int(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "t").inc(5)
        payload = encode_metrics(registry)
        metric = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]
        point = metric["sum"]["dataPoints"][0]
        assert point["asInt"] == "5"
        assert "asDouble" not in point

    def test_counter_sum_is_cumulative_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "t").inc()
        metric = encode_metrics(registry)["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]
        assert metric["sum"]["aggregationTemporality"] == 2
        assert metric["sum"]["isMonotonic"] is True

    def test_histogram_buckets_follow_proto_shape(self):
        registry = make_registry()
        payload = encode_metrics(registry)
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        hist = next(m for m in metrics if m["name"] == "repro_test_latency_seconds")
        point = hist["histogram"]["dataPoints"][0]
        assert len(point["bucketCounts"]) == len(point["explicitBounds"]) + 1
        assert sum(int(c) for c in point["bucketCounts"]) == int(point["count"])
        assert point["min"] == 0.0005
        assert point["max"] == 2.0

    def test_empty_families_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_by_q_total", "t", labelnames=("q",))
        payload = encode_metrics(registry)
        assert payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"] == []
        assert validate_metrics_payload(payload) == []

    def test_resource_attributes_override_defaults(self):
        payload = encode_metrics(make_registry(), resource={"service.name": "fleet"})
        attrs = payload["resourceMetrics"][0]["resource"]["attributes"]
        by_key = {e["key"]: e["value"] for e in attrs}
        assert by_key["service.name"] == {"stringValue": "fleet"}

    def test_default_resource_names_service(self):
        resource = default_resource()
        assert resource["service.name"] == "repro"
        assert resource["telemetry.sdk.language"] == "python"


class TestMetricValidation:
    def test_flags_delta_temporality(self):
        payload = encode_metrics(make_registry())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        counter = next(m for m in metrics if "sum" in m)
        counter["sum"]["aggregationTemporality"] = 1
        assert any("cumulative" in p for p in validate_metrics_payload(payload))

    def test_flags_bucket_count_mismatch(self):
        payload = encode_metrics(make_registry())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        hist = next(m for m in metrics if "histogram" in m)
        hist["histogram"]["dataPoints"][0]["bucketCounts"].append("0")
        assert any("len(explicitBounds)" in p for p in validate_metrics_payload(payload))

    def test_flags_counts_not_summing(self):
        payload = encode_metrics(make_registry())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        hist = next(m for m in metrics if "histogram" in m)
        hist["histogram"]["dataPoints"][0]["count"] = "999"
        assert any("sum to count" in p for p in validate_metrics_payload(payload))

    def test_flags_both_number_encodings(self):
        payload = encode_metrics(make_registry())
        metrics = payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        counter = next(m for m in metrics if "sum" in m)
        counter["sum"]["dataPoints"][0]["asDouble"] = 1.0
        assert any("exactly one of asInt/asDouble" in p for p in validate_metrics_payload(payload))

    def test_flags_missing_resource_metrics(self):
        assert validate_metrics_payload({}) == ["payload must have a 'resourceMetrics' list"]


class TestAnyValueTyping:
    def test_bool_wins_over_int(self):
        payload = encode_spans(make_events(1), resource={"flag": True, "n": 3, "x": 1.5})
        resource, _ = spans_from_otlp(payload)[0]
        assert resource["flag"] is True
        assert resource["n"] == 3
        assert resource["x"] == 1.5
