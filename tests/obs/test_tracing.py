"""Tracing: span recording, ring-buffer bounds, and engine integration."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import Telemetry, TraceContext, Tracer
from repro.streams import JoinQuery, StreamEngine


def make_engine(**telemetry_kwargs) -> StreamEngine:
    engine = StreamEngine(seed=0, telemetry=Telemetry(**telemetry_kwargs))
    domain = Domain.of_size(32)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=16)
    return engine


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", count=7, relation="R1"):
            pass
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.count == 7
        assert event.attrs == {"relation": "R1"}
        assert event.duration >= 0
        assert event.start > 0

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [e.name for e in tracer.events()] == ["boom"]

    def test_emit_uses_caller_duration(self):
        tracer = Tracer()
        tracer.emit("observer_update", 0.125, count=3, method="cosine")
        (event,) = tracer.events()
        assert event.duration == 0.125
        assert event.attrs["method"] == "cosine"

    def test_ring_buffer_bounded_with_drop_accounting(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(f"e{i}", 0.0)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e.name for e in tracer.events()] == ["e6", "e7", "e8", "e9"]

    def test_filter_and_tail(self):
        tracer = Tracer()
        for name in ("a", "b", "a", "b", "a"):
            tracer.emit(name, 0.0)
        assert len(tracer.events("a")) == 3
        assert [e.name for e in tracer.tail(2)] == ["b", "a"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            pass
        tracer.emit("work", 0.1)
        assert tracer.events() == [] and tracer.emitted == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("a", 0.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_event_as_dict_flattens_attrs(self):
        tracer = Tracer()
        tracer.emit("x", 0.5, count=2, relation="R1")
        d = tracer.events()[0].as_dict()
        assert d["name"] == "x" and d["relation"] == "R1" and d["count"] == 2

    def test_snapshot_is_json_compatible(self):
        import json

        tracer = Tracer(capacity=8)
        tracer.emit("x", 0.5)
        payload = json.loads(json.dumps(tracer.snapshot()))
        assert payload["buffered"] == 1 and payload["recent"][0]["name"] == "x"


class TestTraceContext:
    def test_generate_makes_wellformed_ids(self):
        context = TraceContext.generate()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        assert context.sampled is True
        assert context.trace_id != "0" * 32 and context.span_id != "0" * 16

    def test_generated_contexts_are_distinct(self):
        contexts = [TraceContext.generate() for _ in range(32)]
        assert len({c.trace_id for c in contexts}) == 32
        assert len({c.span_id for c in contexts}) == 32

    def test_child_keeps_trace_changes_span(self):
        parent = TraceContext.generate()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert parent.child("ab" * 8).span_id == "ab" * 8

    def test_traceparent_round_trip(self):
        context = TraceContext.generate()
        header = context.to_traceparent()
        assert header == f"00-{context.trace_id}-{context.span_id}-01"
        assert TraceContext.from_traceparent(header) == context

    def test_unsampled_flag_round_trips(self):
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8, sampled=False)
        header = context.to_traceparent()
        assert header.endswith("-00")
        assert TraceContext.from_traceparent(header).sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "not-a-traceparent",
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # bad version
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
            "00-" + "xy" * 16 + "-" + "cd" * 8 + "-01",  # non-hex trace id
            "00-" + "ab" * 16 + "-" + "cd" * 8 + "-zz",  # non-hex flags
        ],
    )
    def test_malformed_traceparent_raises(self, header):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(header)

    def test_constructor_validates_widths(self):
        with pytest.raises(ValueError, match="trace_id"):
            TraceContext(trace_id="abc", span_id="cd" * 8)
        with pytest.raises(ValueError, match="span_id"):
            TraceContext(trace_id="ab" * 16, span_id="short")


class TestPropagation:
    def test_spans_carry_tracer_context_identity(self):
        tracer = Tracer()
        tracer.emit("a", 0.0)
        tracer.emit("b", 0.0)
        first, second = tracer.events()
        assert first.trace_id == second.trace_id == tracer.context.trace_id
        assert first.parent_span_id == second.parent_span_id == tracer.context.span_id
        assert first.span_id != second.span_id

    def test_propagated_span_yields_adoptable_header(self):
        coordinator = Tracer()
        worker = Tracer()
        with coordinator.propagated_span("ingest_batch") as traceparent:
            worker.adopt(traceparent)
            worker.emit("shard_ingest", 0.001)
        (parent_event,) = coordinator.events()
        (child_event,) = worker.events()
        assert child_event.trace_id == parent_event.trace_id
        assert child_event.parent_span_id == parent_event.span_id

    def test_propagated_span_yields_none_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.propagated_span("x") as traceparent:
            assert traceparent is None
        assert tracer.events() == []

    def test_propagated_span_yields_none_when_sampled_out(self):
        tracer = Tracer(sample_every=10**9, sample_seed=0)
        tracer.take()  # draw the long gap
        with tracer.propagated_span("x") as traceparent:
            assert traceparent is None

    def test_adopt_none_is_noop(self):
        tracer = Tracer()
        before = tracer.context
        tracer.adopt(None)
        assert tracer.context == before

    def test_adopt_malformed_is_loud(self):
        with pytest.raises(ValueError):
            Tracer().adopt("garbage")

    def test_drain_hands_over_once_and_clears(self):
        tracer = Tracer()
        tracer.emit("a", 0.0)
        tracer.emit("b", 0.0)
        drained = tracer.drain()
        assert [e.name for e in drained] == ["a", "b"]
        assert tracer.events() == [] and tracer.drain() == []
        assert tracer.dropped == 0  # drained events were delivered, not dropped
        assert tracer.emitted == 2

    def test_as_dict_includes_identity(self):
        tracer = Tracer()
        tracer.emit("x", 0.0)
        d = tracer.events()[0].as_dict()
        assert d["trace_id"] == tracer.context.trace_id
        assert d["parent_span_id"] == tracer.context.span_id


class TestEngineTracing:
    def test_batch_ingest_emits_spans(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.arange(10, dtype=np.int64)[:, None] % 32)
        tracer = engine.telemetry.tracer
        (batch_event,) = tracer.events("ingest_batch")
        assert batch_event.count == 10
        assert batch_event.attrs == {"relation": "R1", "kind": "insert"}
        (observer_event,) = tracer.events("observer_update")
        assert observer_event.attrs["method"] == "cosine"
        assert observer_event.count == 10

    def test_answer_emits_estimate_span(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.zeros((5, 1), dtype=np.int64))
        engine.ingest_batch("R2", np.zeros((5, 1), dtype=np.int64))
        engine.answer("q")
        (event,) = engine.telemetry.tracer.events("estimate")
        assert event.attrs == {"query": "q", "method": "cosine"}

    def test_tracing_off_keeps_metrics_on(self):
        engine = make_engine(tracing=False)
        engine.ingest_batch("R1", np.zeros((5, 1), dtype=np.int64))
        assert engine.telemetry.tracer is None
        assert engine.stats().tuples_ingested == 5

    def test_disabled_telemetry_hands_relations_nothing(self):
        engine = make_engine(enabled=False)
        relation = engine.relations["R1"]
        assert relation.stats is None and relation.tracer is None
        engine.ingest_batch("R1", np.zeros((5, 1), dtype=np.int64))
        engine.ingest_batch("R2", np.zeros((5, 1), dtype=np.int64))
        engine.answer("q")
        assert engine.stats().tuples_ingested == 0
        assert engine.stats().estimate_calls == 0

    def test_per_tuple_path_counts_but_does_not_trace_by_default(self):
        """Without sampling, per-tuple process stays span-free (too hot).

        Opting into 1-in-N sampling makes per-tuple spans affordable; see
        ``TestSampling`` for that path.
        """
        engine = make_engine()
        engine.insert("R1", (3,))
        assert engine.stats().per_tuple_ops == 1
        assert engine.telemetry.tracer.events() == []


class TestSampling:
    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)

    def test_sample_every_one_records_everything(self):
        tracer = Tracer(sample_every=1)
        for _ in range(20):
            tracer.emit("x", 0.0)
        assert tracer.emitted == 20 and tracer.sampled_out == 0

    def test_long_run_rate_is_one_in_n(self):
        tracer = Tracer(sample_every=8, sample_seed=0)
        taken = sum(tracer.take() for _ in range(8_000))
        assert taken == pytest.approx(1_000, rel=0.15)
        assert taken + tracer.sampled_out == 8_000

    def test_sampling_is_seeded_and_reproducible(self):
        decisions = [
            [Tracer(sample_every=5, sample_seed=7).take() for _ in range(100)]
            for _ in range(2)
        ]
        assert decisions[0] == decisions[1]

    def test_sampled_out_span_records_nothing(self):
        tracer = Tracer(sample_every=10**9, sample_seed=0)
        tracer.take()  # first take() draws the (astronomically long) gap
        with tracer.span("hot"):
            pass
        tracer.emit("hot", 0.1)
        assert tracer.events("hot") == []
        assert tracer.sampled_out == 2

    def test_record_bypasses_sampling(self):
        tracer = Tracer(sample_every=10**9, sample_seed=0)
        tracer.record("already_sampled", 0.25, relation="R1")
        (event,) = tracer.events()
        assert event.duration == 0.25 and event.attrs["relation"] == "R1"

    def test_clear_resets_sampling_state(self):
        tracer = Tracer(sample_every=50, sample_seed=0)
        for _ in range(200):
            tracer.take()
        tracer.clear()
        assert tracer.sampled_out == 0
        assert tracer.take() is True  # gap reset: next decision records

    def test_snapshot_reports_sampling_accounting(self):
        tracer = Tracer(sample_every=4, sample_seed=1)
        for _ in range(40):
            tracer.emit("x", 0.0)
        snap = tracer.snapshot()
        assert snap["sample_every"] == 4
        assert snap["sampled_out"] == tracer.sampled_out > 0
        assert "sample_every" not in Tracer().snapshot()

    def test_engine_sampling_traces_per_tuple_spans(self):
        engine = make_engine(trace_sample_every=1)
        engine.insert("R1", (3,))
        engine.delete("R1", (3,))
        tracer = engine.telemetry.tracer
        assert tracer.sample_every == 1
        events = tracer.events("process_op")
        assert [e.attrs["kind"] for e in events] == ["insert", "delete"]
        assert all(e.attrs["relation"] == "R1" for e in events)

    def test_engine_sampling_thins_observer_updates(self):
        engine = make_engine(trace_sample_every=64)
        rows = np.arange(512, dtype=np.int64)[:, None] % 32
        for lo in range(0, 512, 16):  # 32 batches -> ~1/64 sampled
            engine.ingest_batch("R1", rows[lo : lo + 16])
        tracer = engine.telemetry.tracer
        assert tracer.sampled_out > 0
        assert len(tracer.events()) < 64  # unsampled would be 64 events
        # Counters remain exact regardless of trace sampling.
        assert engine.stats().tuples_ingested == 512
