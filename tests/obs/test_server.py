"""MetricsServer HTTP endpoint and the runtime catalog conformance check."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, MetricsServer, catalog_mismatches
from repro.obs.server import CONTENT_TYPE


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers["Content-Type"], response.read().decode()


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_ingest_ops_total", "Total operations.").inc(7)
    return reg


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, registry):
        with MetricsServer(registry) as server:
            status, content_type, body = fetch(server.url)
        assert status == 200
        assert content_type == CONTENT_TYPE
        assert "# TYPE repro_ingest_ops_total counter" in body
        assert "repro_ingest_ops_total 7" in body

    def test_root_serves_metrics_too(self, registry):
        with MetricsServer(registry) as server:
            _, _, body = fetch(f"http://{server.host}:{server.port}/")
        assert "repro_ingest_ops_total 7" in body

    def test_healthz(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(f"http://{server.host}:{server.port}/healthz")
        assert status == 200 and body == "ok\n"

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(f"http://{server.host}:{server.port}/nope")
        assert exc.value.code == 404

    def test_head_matches_get_without_body(self, registry):
        with MetricsServer(registry) as server:
            request = urllib.request.Request(server.url, method="HEAD")
            with urllib.request.urlopen(request, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                assert int(response.headers["Content-Length"]) > 0
                assert response.read() == b""

    def test_head_healthz_for_probes(self, registry):
        with MetricsServer(registry) as server:
            request = urllib.request.Request(
                f"http://{server.host}:{server.port}/healthz", method="HEAD"
            )
            with urllib.request.urlopen(request, timeout=5) as response:
                assert response.status == 200
                assert response.read() == b""

    def test_head_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            request = urllib.request.Request(
                f"http://{server.host}:{server.port}/nope", method="HEAD"
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(request, timeout=5)
        assert exc.value.code == 404

    def test_query_string_is_ignored(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(f"{server.url}?format=prometheus")
        assert status == 200
        assert "repro_ingest_ops_total 7" in body

    def test_concurrent_scrapes_all_succeed(self, registry):
        results: list[tuple[int, str, str]] = []
        errors: list[Exception] = []

        def scrape(url):
            try:
                results.append(fetch(url))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        with MetricsServer(registry) as server:
            threads = [
                threading.Thread(target=scrape, args=(server.url,)) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
        assert errors == []
        assert len(results) == 8
        assert all(status == 200 for status, _, _ in results)
        assert all("repro_ingest_ops_total 7" in body for _, _, body in results)

    def test_scrape_during_ingest_sees_consistent_text(self, registry):
        counter = registry.counter("repro_ingest_deletes_total", "Deletes.")
        stop = threading.Event()

        def ingest():
            while not stop.is_set():
                counter.inc()

        writer = threading.Thread(target=ingest)
        with MetricsServer(registry) as server:
            writer.start()
            try:
                bodies = [fetch(server.url)[2] for _ in range(5)]
            finally:
                stop.set()
                writer.join(timeout=10)
        for body in bodies:  # scrapes never observe a torn/partial rendering
            assert "# TYPE repro_ingest_deletes_total counter" in body
            assert "repro_ingest_ops_total 7" in body

    def test_scrape_reflects_live_updates(self, registry):
        counter = registry.counter("repro_ingest_deletes_total", "Deletes.")
        with MetricsServer(registry) as server:
            _, _, before = fetch(server.url)
            counter.inc(3)
            _, _, after = fetch(server.url)
        assert "repro_ingest_deletes_total 0" in before
        assert "repro_ingest_deletes_total 3" in after


class TestLifecycle:
    def test_port_zero_binds_a_free_port(self, registry):
        with MetricsServer(registry, port=0) as a, MetricsServer(registry, port=0) as b:
            assert a.port != 0 and b.port != 0
            assert a.port != b.port

    def test_start_twice_is_an_error(self, registry):
        server = MetricsServer(registry).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_stop_releases_the_port(self, registry):
        server = MetricsServer(registry).start()
        url = server.url
        server.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            fetch(url)

    def test_callable_provider_is_resolved_per_scrape(self):
        registries = []

        def provider():
            reg = MetricsRegistry()
            reg.counter("repro_ingest_ops_total", "Total operations.").inc(len(registries))
            registries.append(reg)
            return reg

        with MetricsServer(provider) as server:
            _, _, first = fetch(server.url)
            _, _, second = fetch(server.url)
        assert "repro_ingest_ops_total 0" in first
        assert "repro_ingest_ops_total 1" in second
        assert len(registries) == 2


class TestCatalogMismatches:
    def test_conformant_registry_is_clean(self, registry):
        registry.counter(
            "repro_relation_ops_total", "Operations.", ("relation", "shard")
        )
        assert catalog_mismatches(registry) == []

    def test_non_repro_metrics_are_ignored(self):
        reg = MetricsRegistry()
        reg.counter("other_ops_total", "Not ours.")
        assert catalog_mismatches(reg) == []

    def test_uncatalogued_metric_is_reported(self):
        reg = MetricsRegistry()
        reg.counter("repro_surprise_total", "New.")
        problems = catalog_mismatches(reg)
        assert problems == ["repro_surprise_total: not in the generated metric catalog"]

    def test_kind_mismatch_is_reported(self):
        reg = MetricsRegistry()
        reg.gauge("repro_ingest_ops_total", "Wrong kind.")
        problems = catalog_mismatches(reg)
        assert len(problems) == 1
        assert "registered as gauge, catalogued as counter" in problems[0]

    def test_label_mismatch_is_reported(self):
        reg = MetricsRegistry()
        reg.counter("repro_relation_ops_total", "Operations.", ("query",))
        problems = catalog_mismatches(reg)
        assert len(problems) == 1
        assert "labels" in problems[0] and "(+ optional shard)" in problems[0]
