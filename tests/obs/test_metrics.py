"""Metric primitives and the registry: counters, gauges, histograms, labels."""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("ops")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_monotonic(self):
        c = Counter("ops")
        with pytest.raises(ValueError, match="decrease"):
            c.inc(-1)

    def test_reset(self):
        c = Counter("ops")
        c.inc(7)
        c.reset()
        assert c.value == 0

    def test_snapshot_integers_stay_integers(self):
        c = Counter("ops")
        c.inc(3)
        assert c.snapshot() == 3 and isinstance(c.snapshot(), int)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("fill")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_can_go_negative(self):
        g = Gauge("delta")
        g.dec(4)
        assert g.value == -4


class TestLatencyHistogram:
    def test_count_sum_mean(self):
        h = LatencyHistogram("lat")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(LatencyHistogram("lat").percentile(50))

    def test_percentiles_ordered_and_bounded(self):
        h = LatencyHistogram("lat")
        values = [i / 1000 for i in range(1, 101)]  # 1ms..100ms
        for v in values:
            h.observe(v)
        p50, p95 = h.percentile(50), h.percentile(95)
        assert min(values) <= p50 <= p95 <= max(values)
        assert p50 == pytest.approx(0.05, rel=0.3)
        assert p95 == pytest.approx(0.095, rel=0.3)

    def test_percentile_clamped_to_observed_extremes(self):
        h = LatencyHistogram("lat")
        h.observe(0.0123)  # single observation: every percentile is it
        assert h.percentile(0) == pytest.approx(0.0123)
        assert h.percentile(100) == pytest.approx(0.0123)

    def test_overflow_bucket(self):
        h = LatencyHistogram("lat", buckets=(0.1, 1.0))
        h.observe(50.0)
        assert h.bucket_counts[-1] == 1
        assert h.percentile(50) == pytest.approx(50.0)

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError, match="0, 100"):
            LatencyHistogram("lat").percentile(101)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            LatencyHistogram("lat", buckets=(1.0, 1.0))

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-6
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


class TestPercentileProperties:
    """Property-based audit of the bucket-edge behavior (hypothesis)."""

    observations = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    )
    percentiles = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

    @given(values=observations, p=percentiles)
    def test_result_within_observed_range(self, values, p):
        h = LatencyHistogram("lat")
        for v in values:
            h.observe(v)
        result = h.percentile(p)
        assert min(values) <= result <= max(values)

    @given(values=observations, lo=percentiles, hi=percentiles)
    def test_monotone_in_p(self, values, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        h = LatencyHistogram("lat")
        for v in values:
            h.observe(v)
        assert h.percentile(lo) <= h.percentile(hi)

    @given(values=observations)
    def test_p0_is_exact_min_and_p100_exact_max(self, values):
        h = LatencyHistogram("lat")
        for v in values:
            h.observe(v)
        assert h.percentile(0) == min(values)
        assert h.percentile(100) == max(values)

    @given(
        value=st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        p=percentiles,
    )
    def test_single_observation_answers_itself(self, value, p):
        h = LatencyHistogram("lat")
        h.observe(value)
        assert h.percentile(p) == value

    @given(values=observations, p=percentiles)
    def test_overflow_bucket_still_bounded(self, values, p):
        h = LatencyHistogram("lat", buckets=(0.001,))  # nearly everything overflows
        for v in values:
            h.observe(v)
        assert min(values) <= h.percentile(p) <= max(values)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_identical_observations_collapse(self, values):
        h = LatencyHistogram("lat")
        for _ in values:
            h.observe(values[0])
        for p in (0, 25, 50, 75, 100):
            assert h.percentile(p) == values[0]


class TestLabels:
    def test_children_cached_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("method",))
        assert family.labels(method="cosine") is family.labels("cosine")
        family.labels("cosine").inc(3)
        family.labels("sketch").inc(1)
        assert family.as_value_dict() == {"cosine": 3, "sketch": 1}

    def test_multi_label(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("relation", "method"))
        family.labels(relation="R1", method="cosine").inc()
        assert family.as_value_dict() == {"R1,cosine": 1}

    def test_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("method",))
        with pytest.raises(ValueError, match="missing label"):
            family.labels(relation="R1")
        with pytest.raises(ValueError, match="unknown labels"):
            family.labels(method="x", extra="y")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels("a", "b")

    def test_reset_forgets_children(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("method",))
        family.labels("cosine").inc(5)
        family.reset()
        assert family.as_value_dict() == {}


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("a", labelnames=("method",))

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a", labelnames=("method",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("a", labelnames=("relation",))

    def test_reset_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(9)
        registry.reset()
        assert registry.counter("a") is counter
        assert counter.value == 0

    def test_snapshot_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(4)
        registry.gauge("fill").set(0.5)
        registry.histogram("lat").observe(0.002)
        registry.counter("by_method", labelnames=("method",)).labels("cosine").inc()
        payload = json.loads(json.dumps(registry.snapshot()))
        assert payload["ops"] == {"type": "counter", "value": 4}
        assert payload["fill"]["value"] == 0.5
        assert payload["lat"]["count"] == 1
        assert payload["lat"]["p50"] == pytest.approx(0.002)
        assert payload["by_method"]["values"] == {"cosine": 1}

    def test_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert len(registry) == 1 and "a" in registry and "b" not in registry
