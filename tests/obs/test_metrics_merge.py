"""MetricsRegistry.merge: counter sums, gauge last-write, histogram adds."""

import pickle

import pytest

from repro.obs.metrics import LatencyHistogram, MetricsRegistry


def registry_with(counter=0.0, gauge=None, observations=()):
    r = MetricsRegistry()
    r.counter("ops_total", "ops").inc(counter)
    if gauge is not None:
        r.gauge("fill", "fill").set(gauge)
    h = r.histogram("latency", "lat")
    for value in observations:
        h.observe(value)
    return r


class TestScalarMerge:
    def test_counters_sum(self):
        a = registry_with(counter=3)
        b = registry_with(counter=4)
        a.merge(b)
        assert a.counter("ops_total").value == 7
        assert b.counter("ops_total").value == 4  # source untouched

    def test_gauges_take_last_write(self):
        a = registry_with(gauge=10)
        b = registry_with(gauge=2)
        a.merge(b)
        assert a.gauge("fill").value == 2

    def test_missing_metrics_are_created(self):
        a = MetricsRegistry()
        b = registry_with(counter=5, gauge=1, observations=[0.1])
        a.merge(b)
        assert a.counter("ops_total").value == 5
        assert a.gauge("fill").value == 1
        assert a.histogram("latency").count == 1

    def test_merge_returns_self_for_chaining(self):
        a = MetricsRegistry()
        assert a.merge(registry_with(counter=1)).merge(
            registry_with(counter=2)
        ) is a
        assert a.counter("ops_total").value == 3


class TestHistogramMerge:
    def test_bucket_counts_sum_and_sum_count_add(self):
        a = registry_with(observations=[0.001, 0.5])
        b = registry_with(observations=[0.001, 2.0, 9.0])
        a.merge(b)
        h = a.histogram("latency")
        assert h.count == 5
        assert h.sum == pytest.approx(0.001 + 0.5 + 0.001 + 2.0 + 9.0)
        reference = LatencyHistogram("ref")
        for value in (0.001, 0.5, 0.001, 2.0, 9.0):
            reference.observe(value)
        assert h.bucket_counts == reference.bucket_counts
        assert h.percentile(50) == reference.percentile(50)

    def test_min_max_combine(self):
        a = registry_with(observations=[0.5])
        b = registry_with(observations=[0.001, 9.0])
        a.merge(b)
        snap = a.histogram("latency").snapshot()
        assert snap["min"] == 0.001 and snap["max"] == 9.0

    def test_different_bounds_rejected(self):
        a = MetricsRegistry()
        a.histogram("latency", buckets=[1.0, 2.0])
        b = registry_with(observations=[0.1])
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)


class TestFamilyMerge:
    def test_disjoint_label_values_collect_side_by_side(self):
        a = MetricsRegistry()
        a.counter("rel_ops", labelnames=("relation", "shard")).labels("R", "0").inc(2)
        b = MetricsRegistry()
        b.counter("rel_ops", labelnames=("relation", "shard")).labels("R", "1").inc(5)
        a.merge(b)
        family = a.counter("rel_ops", labelnames=("relation", "shard"))
        assert {k: c.value for k, c in family.items()} == {
            ("R", "0"): 2.0,
            ("R", "1"): 5.0,
        }

    def test_colliding_label_tuples_combine_by_kind(self):
        a = MetricsRegistry()
        a.counter("rel_ops", labelnames=("relation",)).labels("R").inc(2)
        b = MetricsRegistry()
        b.counter("rel_ops", labelnames=("relation",)).labels("R").inc(3)
        a.merge(b)
        assert a.counter("rel_ops", labelnames=("relation",)).labels("R").value == 5

    def test_histogram_families_merge_children(self):
        a = MetricsRegistry()
        a.histogram("lat", labelnames=("q",)).labels("q1").observe(0.1)
        b = MetricsRegistry()
        b.histogram("lat", labelnames=("q",)).labels("q1").observe(0.2)
        b.histogram("lat", labelnames=("q",)).labels("q2").observe(0.3)
        a.merge(b)
        family = a.histogram("lat", labelnames=("q",))
        assert family.labels("q1").count == 2
        assert family.labels("q2").count == 1

    def test_label_name_collision_rejected(self):
        a = MetricsRegistry()
        a.counter("rel_ops", labelnames=("relation",)).labels("R").inc()
        b = MetricsRegistry()
        b.counter("rel_ops", labelnames=("relation", "shard")).labels("R", "0").inc()
        with pytest.raises(ValueError, match="kind/labels differ"):
            a.merge(b)

    def test_labelled_vs_unlabelled_collision_rejected(self):
        a = MetricsRegistry()
        a.counter("ops")
        b = MetricsRegistry()
        b.counter("ops", labelnames=("shard",)).labels("0").inc()
        with pytest.raises(ValueError, match="labelled vs unlabelled"):
            a.merge(b)

    def test_kind_collision_rejected(self):
        a = MetricsRegistry()
        a.counter("x")
        b = MetricsRegistry()
        b.gauge("x")
        with pytest.raises(ValueError, match="Counter.*Gauge|vs"):
            a.merge(b)


class TestPicklability:
    """Process-shard registries travel over pipes; every metric must pickle."""

    def test_registry_with_all_kinds_round_trips(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(4)
        r.histogram("h").observe(0.01)
        r.counter("cf", labelnames=("relation", "shard")).labels("R", "0").inc(3)
        r.histogram("hf", labelnames=("q",)).labels("q1").observe(0.5)
        clone = pickle.loads(pickle.dumps(r))
        assert clone.counter("c").value == 2
        assert clone.gauge("g").value == 4
        assert clone.histogram("h").count == 1
        assert clone.counter(
            "cf", labelnames=("relation", "shard")
        ).labels("R", "0").value == 3
        assert clone.histogram("hf", labelnames=("q",)).labels("q1").count == 1

    def test_unpickled_registry_still_merges(self):
        r = MetricsRegistry()
        r.counter("c", labelnames=("shard",)).labels("1").inc(7)
        clone = pickle.loads(pickle.dumps(r))
        merged = MetricsRegistry().merge(clone)
        assert merged.counter("c", labelnames=("shard",)).labels("1").value == 7
        # and new children can still be created through the factory
        merged.counter("c", labelnames=("shard",)).labels("2").inc()
