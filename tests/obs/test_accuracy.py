"""Online accuracy tracking: cadence, aggregates, registry integration."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import Telemetry
from repro.obs.accuracy import relative_error_of
from repro.streams import JoinQuery, StreamEngine

DOMAIN_SIZE = 32


def make_engine(methods=("cosine",)) -> StreamEngine:
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(DOMAIN_SIZE)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    for method in methods:
        engine.register_query(f"q_{method}", query, method=method, budget=DOMAIN_SIZE)
    return engine


def rows(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, DOMAIN_SIZE, size=(n, 1))


class TestRelativeError:
    def test_plain(self):
        assert relative_error_of(110.0, 100.0) == pytest.approx(0.1)

    def test_exact_zero_does_not_divide_by_zero(self):
        assert relative_error_of(3.0, 0.0) == 3.0


class TestSampling:
    def test_sample_now_records_all_queries(self):
        engine = make_engine(methods=("cosine", "basic_sketch"))
        engine.ingest_batch("R1", rows(100))
        engine.ingest_batch("R2", rows(100, seed=1))
        tracker = engine.track_accuracy(every_ops=10_000)
        errors = tracker.sample_now()
        assert set(errors) == {"q_cosine", "q_basic_sketch"}
        report = tracker.report()
        for row in report.values():
            assert row["samples"] == 1
            assert row["last"] == row["mean"] == pytest.approx(row["p50"])

    def test_cosine_at_full_budget_is_near_exact(self):
        """At budget = domain size the cosine estimate is exact — error ~ 0."""
        engine = make_engine()
        engine.ingest_batch("R1", rows(200))
        engine.ingest_batch("R2", rows(200, seed=1))
        tracker = engine.track_accuracy()
        error = tracker.sample_now()["q_cosine"]
        assert error == pytest.approx(0.0, abs=1e-6)

    def test_cadence_respected(self):
        engine = make_engine()
        tracker = engine.track_accuracy(every_ops=100)
        engine.ingest_batch("R1", rows(40))
        assert tracker.report() == {}  # below cadence: no sample yet
        engine.ingest_batch("R2", rows(60, seed=1))
        assert tracker.report()["q_cosine"]["samples"] == 1
        engine.ingest_batch("R1", rows(40, seed=2))
        assert tracker.report()["q_cosine"]["samples"] == 1  # cadence resets
        engine.ingest_batch("R1", rows(60, seed=3))
        assert tracker.report()["q_cosine"]["samples"] == 2

    def test_per_tuple_inserts_trigger_sampling_too(self):
        engine = make_engine()
        engine.ingest_batch("R2", rows(50))  # both sides non-empty for answer()
        tracker = engine.track_accuracy(every_ops=5)
        engine.insert("R1", (3,))  # 51 ops since the tracker's baseline of 0
        assert tracker.report()["q_cosine"]["samples"] == 1

    def test_pinned_query_subset(self):
        engine = make_engine(methods=("cosine", "basic_sketch"))
        engine.ingest_batch("R2", rows(20, seed=1))
        tracker = engine.track_accuracy(every_ops=10, queries=("q_cosine",))
        engine.ingest_batch("R1", rows(20))
        assert set(tracker.report()) == {"q_cosine"}

    def test_unanswerable_query_skipped_not_raised(self):
        """A join whose other side is still empty must not crash ingest."""
        engine = make_engine()
        tracker = engine.track_accuracy(every_ops=10)
        engine.ingest_batch("R1", rows(50))  # R2 empty: q_cosine unanswerable
        assert tracker.report() == {}
        engine.ingest_batch("R2", rows(50, seed=1))  # now answerable
        assert tracker.report()["q_cosine"]["samples"] == 1

    def test_queries_registered_later_are_picked_up(self):
        engine = make_engine()
        engine.ingest_batch("R1", rows(30))
        engine.ingest_batch("R2", rows(30, seed=1))
        tracker = engine.track_accuracy(every_ops=10_000)
        query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
        engine.register_query("late", query, method="basic_sketch", budget=16)
        assert set(tracker.sample_now()) == {"q_cosine", "late"}


class TestAggregates:
    def test_report_statistics_consistent(self):
        engine = make_engine(methods=("basic_sketch",))
        tracker = engine.track_accuracy(every_ops=10_000)
        for seed in range(6):
            engine.ingest_batch("R1", rows(50, seed=seed))
            engine.ingest_batch("R2", rows(50, seed=seed + 100))
            tracker.sample_now()
        row = tracker.report()["q_basic_sketch"]
        assert row["samples"] == 6
        assert 0 <= row["p50"] <= row["p95"]
        assert row["mean"] >= 0

    def test_metrics_live_in_engine_registry(self):
        engine = make_engine()
        engine.ingest_batch("R1", rows(10))
        engine.ingest_batch("R2", rows(10, seed=1))
        tracker = engine.track_accuracy()
        tracker.sample_now()
        snapshot = engine.telemetry.registry.snapshot()
        assert snapshot["repro_accuracy_relative_error"]["values"]["q_cosine"]["count"] == 1
        assert engine.accuracy is tracker

    def test_summary_and_as_dict(self):
        import json

        engine = make_engine()
        engine.ingest_batch("R1", rows(30))
        engine.ingest_batch("R2", rows(30, seed=1))
        tracker = engine.track_accuracy()
        assert "no samples" in tracker.summary()
        tracker.sample_now()
        text = tracker.summary()
        assert "q_cosine" in text and "p95" in text and "%" in text
        payload = json.loads(json.dumps(tracker.as_dict()))
        assert payload["queries"]["q_cosine"]["samples"] == 1

    def test_reset(self):
        engine = make_engine()
        engine.ingest_batch("R1", rows(10))
        engine.ingest_batch("R2", rows(10, seed=1))
        tracker = engine.track_accuracy()
        tracker.sample_now()
        tracker.reset()
        assert tracker.report() == {}


class TestGuards:
    def test_every_ops_validated(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="every_ops"):
            engine.track_accuracy(every_ops=0)

    def test_disabled_telemetry_rejected(self):
        engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
        with pytest.raises(ValueError, match="telemetry"):
            engine.track_accuracy()
