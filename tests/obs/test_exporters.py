"""Exporters: Prometheus text format, JSONL snapshots, dashboard rendering."""

import json
import os

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.obs import (
    JsonlSnapshotWriter,
    MetricsRegistry,
    Telemetry,
    Tracer,
    prometheus_text,
    render_dashboard,
)
from repro.streams import JoinQuery, StreamEngine


def make_engine() -> StreamEngine:
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(32)
    engine.create_relation("R1", ["A"], [domain])
    engine.create_relation("R2", ["A"], [domain])
    query = JoinQuery.parse(["R1", "R2"], ["R1.A = R2.A"])
    engine.register_query("q", query, method="cosine", budget=32)
    return engine


class TestPrometheusText:
    def test_plain_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", "Total ops.").inc(5)
        registry.gauge("repro_fill").set(0.25)
        text = prometheus_text(registry)
        assert "# HELP repro_ops_total Total ops." in text
        assert "# TYPE repro_ops_total counter" in text
        assert "\nrepro_ops_total 5\n" in text
        assert "# TYPE repro_fill gauge" in text
        assert "\nrepro_fill 0.25\n" in text

    def test_labeled_counter(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("method",))
        family.labels("cosine").inc(2)
        assert 'ops{method="cosine"} 2' in prometheus_text(registry)

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = prometheus_text(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5.55" in text

    def test_labeled_histogram_merges_label_and_le(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat", labelnames=("query",), buckets=(1.0,))
        family.labels("q").observe(0.5)
        text = prometheus_text(registry)
        assert 'lat_bucket{query="q",le="1"} 1' in text
        assert 'lat_count{query="q"} 1' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops", labelnames=("name",)).labels('a"b\\c').inc()
        assert 'name="a\\"b\\\\c"' in prometheus_text(registry)

    def test_engine_registry_renders(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.zeros((10, 1), dtype=np.int64))
        engine.ingest_batch("R2", np.zeros((10, 1), dtype=np.int64))
        engine.answer("q")
        text = prometheus_text(engine.telemetry.registry)
        assert "repro_ingest_ops_total 20" in text
        assert 'repro_relation_ops_total{relation="R1"} 10' in text
        assert 'repro_observer_ops_total{method="cosine"} 20' in text
        assert "repro_estimate_latency_seconds_count 1" in text


class TestJsonlSnapshotWriter:
    def test_writes_parseable_timestamped_lines(self, tmp_path):
        writer = JsonlSnapshotWriter(tmp_path / "snap.jsonl")
        writer.write({"a": 1})
        writer.write({"a": 2})
        lines = (tmp_path / "snap.jsonl").read_text().splitlines()
        assert len(lines) == 2 and writer.snapshots_written == 2
        first, second = (json.loads(line) for line in lines)
        assert first["a"] == 1 and second["a"] == 2
        assert "ts" in first and second["ts"] >= first["ts"]

    def test_maybe_write_rate_limited(self, tmp_path):
        writer = JsonlSnapshotWriter(tmp_path / "snap.jsonl", every_s=3600)
        assert writer.maybe_write(lambda: {"n": 1}) is True
        assert writer.maybe_write(lambda: {"n": 2}) is False  # interval not elapsed
        assert writer.snapshots_written == 1

    def test_maybe_write_unlimited_without_interval(self, tmp_path):
        writer = JsonlSnapshotWriter(tmp_path / "snap.jsonl")
        assert writer.maybe_write(lambda: {}) is True
        assert writer.maybe_write(lambda: {}) is True

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match="every_s"):
            JsonlSnapshotWriter(tmp_path / "x.jsonl", every_s=0)


class TestJsonlWriterResilience:
    def test_transient_write_failure_retried_then_lands(self, tmp_path):
        from repro.resilience.retry import RetryPolicy

        path = tmp_path / "snap.jsonl"
        writer = JsonlSnapshotWriter(
            path, retry=RetryPolicy(attempts=3, base_delay=0.01), sleep=lambda s: None
        )
        original_open = os.open
        failures = {"n": 2}

        def flaky_open(p, flags, mode=0o777):
            if failures["n"] > 0:
                failures["n"] -= 1
                raise OSError("injected open failure")
            return original_open(p, flags, mode)

        os.open = flaky_open
        try:
            assert writer.write({"a": 1}) is True
        finally:
            os.open = original_open
        assert writer.drops == 0
        assert json.loads(path.read_text())["a"] == 1

    def test_exhausted_retries_drop_line_and_count(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.resilience.retry import RetryPolicy

        registry = MetricsRegistry()
        # Writing to a directory path fails with OSError (EISDIR) every time.
        writer = JsonlSnapshotWriter(
            tmp_path,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
            registry=registry,
            sleep=lambda s: None,
        )
        assert writer.write({"a": 1}) is False
        assert writer.write({"a": 2}) is False
        assert writer.drops == 2
        assert writer.snapshots_written == 0
        counter = registry.counter(
            "repro_export_drops_total",
            "Snapshot lines dropped after exhausting write retries.",
        )
        assert counter.value == 2

    def test_failed_write_still_advances_rate_limiter(self, tmp_path):
        from repro.resilience.retry import RetryPolicy

        writer = JsonlSnapshotWriter(
            tmp_path,  # a directory: every write fails
            every_s=3600,
            retry=RetryPolicy(attempts=1),
            sleep=lambda s: None,
        )
        assert writer.maybe_write(lambda: {"n": 1}) is True  # attempted, dropped
        assert writer.maybe_write(lambda: {"n": 2}) is False  # rate-limited, no hot loop
        assert writer.drops == 1

    def test_appends_are_single_atomic_lines(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        writer = JsonlSnapshotWriter(path)
        for i in range(20):
            writer.write({"i": i})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["i"] for line in lines] == list(range(20))


class TestRenderDashboard:
    def test_contains_all_sections(self):
        engine = make_engine()
        engine.ingest_batch("R1", np.zeros((50, 1), dtype=np.int64))
        engine.ingest_batch("R2", np.zeros((50, 1), dtype=np.int64))
        tracker = engine.track_accuracy()
        tracker.sample_now()
        text = render_dashboard(
            engine.stats(),
            accuracy=tracker,
            tracer=engine.telemetry.tracer,
            elapsed_s=1.0,
        )
        assert "tuples ingested" in text
        assert "estimate latency:" in text and "p95" in text
        assert "streaming relative error" in text and "q" in text
        assert "recent spans" in text and "ingest_batch" in text
        assert "tuples/s overall" in text

    def test_minimal_stats_only(self):
        engine = make_engine()
        text = render_dashboard(engine.stats())
        assert "engine stats:" in text
        assert "estimate latency" not in text  # no calls yet

    def test_sampling_accounting_shown(self):
        engine = StreamEngine(
            seed=0, telemetry=Telemetry(trace_sample_every=4)
        )
        domain = Domain.of_size(32)
        engine.create_relation("R1", ["A"], [domain])
        rows = np.arange(256, dtype=np.int64)[:, None] % 32
        for lo in range(0, 256, 8):  # 32 batches through the sampled tracer
            engine.ingest_batch("R1", rows[lo : lo + 8])
        tracer = engine.telemetry.tracer
        assert tracer.sampled_out > 0  # precondition: sampling actually thinned
        text = render_dashboard(engine.stats(), tracer=tracer)
        assert "1-in-4 sampling" in text
        assert f"sampled out {tracer.sampled_out:,}," in text

    def test_sampled_out_everything_omits_span_section(self):
        engine = make_engine()
        tracer = Tracer(sample_every=10**9, sample_seed=0)
        tracer.take()  # draw the astronomically long gap
        tracer.emit("hot", 0.001)
        assert len(tracer) == 0
        text = render_dashboard(engine.stats(), tracer=tracer)
        assert "recent spans" not in text

    def test_empty_registry_renders_no_samples(self):
        assert prometheus_text(MetricsRegistry()).strip() == ""

    def test_empty_family_renders_headers_only(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", "Total ops.", labelnames=("method",))
        text = prometheus_text(registry)
        assert "# TYPE repro_ops_total counter" in text
        assert "repro_ops_total{" not in text  # no children, no samples

    def test_dashboard_with_unused_accuracy_tracker(self):
        engine = make_engine()
        tracker = engine.track_accuracy()  # registered, never sampled
        text = render_dashboard(engine.stats(), accuracy=tracker)
        assert "accuracy: no samples yet" in text
