"""Hypothesis property tests on the Haar wavelet baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.wavelets.haar import (
    HaarSynopsis,
    haar_transform,
    inverse_haar_transform,
)


@st.composite
def counts_vector(draw, n_max=48):
    n = draw(st.integers(min_value=1, max_value=n_max))
    values = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    return np.array(values, dtype=float)


class TestTransformProperties:
    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector(), seed=st.integers(0, 2**31 - 1))
    def test_linearity(self, counts, seed):
        other = np.random.default_rng(seed).integers(0, 15, len(counts)).astype(float)
        np.testing.assert_allclose(
            haar_transform(counts + other),
            haar_transform(counts) + haar_transform(other),
            atol=1e-9,
        )

    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector())
    def test_parseval(self, counts):
        coeffs = haar_transform(counts)
        assert float(coeffs @ coeffs) == pytest.approx(
            float(counts @ counts), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(counts=counts_vector(), scale=st.floats(0.1, 50.0))
    def test_scale_equivariance(self, counts, scale):
        np.testing.assert_allclose(
            haar_transform(counts * scale), haar_transform(counts) * scale, atol=1e-7
        )


class TestSynopsisProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        size=st.integers(min_value=1, max_value=80),
    )
    def test_streaming_matches_batch(self, seed, size):
        n = 37  # deliberately not a power of two
        r = np.random.default_rng(seed)
        values = r.integers(0, n, size)
        streamed = HaarSynopsis(Domain.of_size(n), budget=8)
        for v in values:
            streamed.update(int(v))
        batch = HaarSynopsis.from_counts(
            Domain.of_size(n), np.bincount(values, minlength=n).astype(float), 8
        )
        np.testing.assert_allclose(
            streamed._coefficients, batch._coefficients, atol=1e-8
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_insert_delete_cancel(self, seed):
        n = 29
        r = np.random.default_rng(seed)
        syn = HaarSynopsis(Domain.of_size(n), budget=8)
        base = r.integers(0, n, 30)
        for v in base:
            syn.update(int(v))
        snapshot = syn._coefficients.copy()
        extra = r.integers(0, n, 10)
        for v in extra:
            syn.update(int(v))
        for v in extra:
            syn.update(int(v), weight=-1)
        np.testing.assert_allclose(syn._coefficients, snapshot, atol=1e-8)
