"""Tests for the Haar wavelet synopsis baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.wavelets.haar import (
    HaarSynopsis,
    estimate_join_size,
    haar_transform,
    inverse_haar_transform,
)


class TestTransform:
    def test_roundtrip(self, rng):
        values = rng.normal(size=64)
        np.testing.assert_allclose(
            inverse_haar_transform(haar_transform(values)), values, atol=1e-10
        )

    def test_roundtrip_with_padding(self, rng):
        values = rng.normal(size=37)
        out = inverse_haar_transform(haar_transform(values), n=37)
        np.testing.assert_allclose(out, values, atol=1e-10)

    def test_orthonormal_parseval(self, rng):
        values = rng.normal(size=128)
        coeffs = haar_transform(values)
        assert float(coeffs @ coeffs) == pytest.approx(float(values @ values))

    def test_constant_vector_single_coefficient(self):
        coeffs = haar_transform(np.full(32, 5.0))
        assert coeffs[0] == pytest.approx(5.0 * np.sqrt(32))
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)

    def test_known_small_case(self):
        # [a, b] -> [(a+b)/sqrt2, (a-b)/sqrt2]
        np.testing.assert_allclose(
            haar_transform(np.array([3.0, 1.0])),
            [4.0 / np.sqrt(2), 2.0 / np.sqrt(2)],
        )

    def test_non_power_of_two_coefficients_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            inverse_haar_transform(np.ones(6))

    def test_multidim_rejected(self):
        with pytest.raises(ValueError, match="1-d"):
            haar_transform(np.ones((4, 4)))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=70),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_roundtrip_property(self, n, seed):
        values = np.random.default_rng(seed).integers(0, 50, n).astype(float)
        out = inverse_haar_transform(haar_transform(values), n=n)
        np.testing.assert_allclose(out, values, atol=1e-8)


class TestSynopsis:
    def test_streaming_matches_from_counts(self, rng):
        d = Domain.of_size(50)
        values = rng.integers(0, 50, size=300)
        streamed = HaarSynopsis(d, budget=20)
        for v in values:
            streamed.update(int(v))
        batch = HaarSynopsis.from_counts(d, np.bincount(values, minlength=50), 20)
        np.testing.assert_allclose(
            streamed._coefficients, batch._coefficients, atol=1e-9
        )
        assert streamed.count == batch.count

    def test_deletion_inverts_insertion(self, rng):
        d = Domain.of_size(32)
        syn = HaarSynopsis(d, budget=10)
        for v in rng.integers(0, 32, 50):
            syn.update(int(v))
        reference = syn._coefficients.copy()
        syn.update(7)
        syn.update(7, weight=-1)
        np.testing.assert_allclose(syn._coefficients, reference, atol=1e-10)

    def test_reconstruction_exact_with_full_budget(self, rng):
        d = Domain.of_size(64)
        counts = rng.integers(0, 9, 64).astype(float)
        syn = HaarSynopsis.from_counts(d, counts, budget=64)
        np.testing.assert_allclose(syn.reconstruct_counts(), counts, atol=1e-9)

    def test_top_coefficients_count(self, rng):
        d = Domain.of_size(64)
        counts = rng.integers(1, 9, 64).astype(float)
        syn = HaarSynopsis.from_counts(d, counts, budget=5)
        idx, vals = syn.top_coefficients()
        assert len(idx) == len(vals) == 5
        # they really are the largest
        all_coeffs = np.abs(haar_transform(counts))
        assert set(idx) == set(np.argsort(all_coeffs)[::-1][:5])

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            HaarSynopsis(Domain.of_size(8), 0)

    def test_counts_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            HaarSynopsis.from_counts(Domain.of_size(8), np.ones(9), 4)


class TestJoinEstimation:
    def test_exact_with_full_budget(self, rng):
        n = 64
        d = Domain.of_size(n)
        c1 = rng.integers(0, 9, n).astype(float)
        c2 = rng.integers(0, 9, n).astype(float)
        a = HaarSynopsis.from_counts(d, c1, budget=n)
        b = HaarSynopsis.from_counts(d, c2, budget=n)
        assert estimate_join_size(a, b) == pytest.approx(float(c1 @ c2), rel=1e-9)

    def test_smooth_data_few_coefficients(self):
        n = 256
        x = np.arange(n)
        c = 100 * np.exp(-((x - 130) / 40.0) ** 2) + 10
        d = Domain.of_size(n)
        a = HaarSynopsis.from_counts(d, c, budget=40)
        b = HaarSynopsis.from_counts(d, c, budget=40)
        actual = float(c @ c)
        assert estimate_join_size(a, b) == pytest.approx(actual, rel=0.1)

    def test_mismatched_domains_rejected(self, rng):
        a = HaarSynopsis.from_counts(Domain.of_size(8), np.ones(8), 4)
        b = HaarSynopsis.from_counts(Domain.of_size(16), np.ones(16), 4)
        with pytest.raises(ValueError, match="unified"):
            estimate_join_size(a, b)
