"""Tests for CSV loading of stream relations."""

import io

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.data.loaders import counts_from_csv, iter_csv_rows, relation_from_csv

CSV = """age,education,city
25,12,portland
25,12,portland
40,16,austin
99,8,austin
"""


class TestIterRows:
    def test_selected_columns_parsed(self):
        rows = list(iter_csv_rows(io.StringIO(CSV), ["age", "city"]))
        assert rows[0] == (25, "portland")
        assert rows[3] == (99, "austin")

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="not in CSV header"):
            list(iter_csv_rows(io.StringIO(CSV), ["salary"]))

    def test_headerless_file_rejected(self):
        with pytest.raises(ValueError, match="header"):
            list(iter_csv_rows(io.StringIO(""), ["age"]))

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "people.csv"
        path.write_text(CSV)
        rows = list(iter_csv_rows(path, ["education"]))
        assert [r[0] for r in rows] == [12, 12, 16, 8]


class TestCountsFromCsv:
    def test_joint_counts(self):
        counts = counts_from_csv(
            io.StringIO(CSV),
            ["age", "education"],
            [Domain.integer_range(1, 99), Domain.integer_range(1, 46)],
        )
        assert counts.sum() == 4
        assert counts[24, 11] == 2  # age 25, education 12

    def test_categorical_column(self):
        counts = counts_from_csv(
            io.StringIO(CSV),
            ["city"],
            [Domain.categorical(["portland", "austin"])],
        )
        np.testing.assert_array_equal(counts, [2, 2])

    def test_out_of_domain_error(self):
        with pytest.raises(ValueError, match="outside"):
            counts_from_csv(
                io.StringIO(CSV), ["age"], [Domain.integer_range(1, 50)]
            )

    def test_out_of_domain_skip(self):
        counts = counts_from_csv(
            io.StringIO(CSV),
            ["age"],
            [Domain.integer_range(1, 50)],
            out_of_domain="skip",
        )
        assert counts.sum() == 3  # the age-99 row dropped

    def test_out_of_domain_clip(self):
        counts = counts_from_csv(
            io.StringIO(CSV),
            ["age"],
            [Domain.integer_range(1, 50)],
            out_of_domain="clip",
        )
        assert counts.sum() == 4
        assert counts[49] == 1  # 99 clamped to 50

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            counts_from_csv(
                io.StringIO(CSV), ["age"], [Domain.integer_range(1, 99)],
                out_of_domain="ignore",
            )

    def test_domain_arity_mismatch(self):
        with pytest.raises(ValueError, match="one domain per"):
            counts_from_csv(io.StringIO(CSV), ["age"], [])


class TestRelationFromCsv:
    def test_end_to_end_with_engine(self, tmp_path):
        path = tmp_path / "survey.csv"
        path.write_text(CSV)
        relation = relation_from_csv(
            "survey",
            path,
            ["age"],
            [Domain.integer_range(1, 99)],
        )
        assert relation.count == 4

        from repro.streams.engine import ContinuousQueryEngine
        from repro.streams.queries import JoinQuery

        other = relation_from_csv(
            "survey2",
            io.StringIO(CSV),
            ["age"],
            [Domain.integer_range(1, 99)],
        )
        eng = ContinuousQueryEngine()
        eng.add_relation(relation)
        eng.add_relation(other)
        q = JoinQuery.parse(["survey", "survey2"], ["survey.age = survey2.age"])
        eng.register_query("j", q, method="cosine", budget=99)
        # age matches: the two 25s pair both ways (4), 40-40 (1), 99-99 (1)
        assert eng.exact_answer("j") == pytest.approx(6.0)
        assert eng.answer("j") == pytest.approx(6.0, rel=1e-6)
