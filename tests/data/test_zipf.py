"""Tests for Type I Zipfian workload generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.zipf import (
    Correlation,
    TypeIConfig,
    apportion,
    make_type1_pair,
    zipf_counts,
    zipf_probabilities,
)


class TestZipfProbabilities:
    def test_normalized(self):
        assert zipf_probabilities(100, 1.0).sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        np.testing.assert_allclose(zipf_probabilities(10, 0.0), np.full(10, 0.1))

    def test_monotone_decreasing(self):
        p = zipf_probabilities(50, 1.2)
        assert np.all(np.diff(p) <= 0)

    def test_formula(self):
        p = zipf_probabilities(3, 1.0)
        h = 1 + 0.5 + 1 / 3
        np.testing.assert_allclose(p, [1 / h, 0.5 / h, (1 / 3) / h])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.5)


class TestApportion:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 60),
        z=st.floats(0.0, 2.0, allow_nan=False),
        total=st.integers(0, 100_000),
    )
    def test_sums_exactly_to_total(self, n, z, total):
        counts = zipf_counts(n, z, total)
        assert counts.sum() == total
        assert counts.min() >= 0

    def test_largest_remainder_favours_largest_fractions(self):
        counts = apportion(np.array([0.5, 0.3, 0.2]), 4)
        # raw = [2.0, 1.2, 0.8]; the leftover unit goes to the 0.8 cell.
        assert counts.tolist() == [2, 1, 1]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            apportion(np.array([1.0]), -1)


class TestTypeIPairs:
    def config(self, correlation, smooth=False):
        return TypeIConfig(
            domain_size=500,
            relation_size=20_000,
            z1=0.5,
            z2=1.0,
            correlation=correlation,
            smooth=smooth,
        )

    def test_sizes_exact(self, rng):
        c1, c2 = make_type1_pair(self.config(Correlation.INDEPENDENT), rng)
        assert c1.sum() == 20_000 and c2.sum() == 20_000
        assert len(c1) == len(c2) == 500

    def test_strong_positive_aligns_ranks(self, rng):
        c1, c2 = make_type1_pair(self.config(Correlation.STRONG_POSITIVE), rng)
        # rank orders coincide: the largest cells sit at the same positions
        assert np.argmax(c1) == np.argmax(c2)
        # Spearman-like agreement on the top decile
        top1 = set(np.argsort(c1)[-50:])
        top2 = set(np.argsort(c2)[-50:])
        assert len(top1 & top2) > 40

    def test_negative_correlation_inverts_ranks(self, rng):
        c1, c2 = make_type1_pair(self.config(Correlation.NEGATIVE), rng)
        assert c2[np.argmax(c1)] == c2.min() or c2[np.argmax(c1)] <= np.median(c2)
        # the top of one is the bottom of the other
        assert np.argmax(c1) != np.argmax(c2)

    def test_weak_positive_displaces_head(self, rng):
        strong_join = []
        weak_join = []
        for seed in range(5):
            r = np.random.default_rng(seed)
            s1, s2 = make_type1_pair(self.config(Correlation.STRONG_POSITIVE), r)
            strong_join.append(float(s1 @ s2))
            r = np.random.default_rng(seed)
            w1, w2 = make_type1_pair(self.config(Correlation.WEAK_POSITIVE), r)
            weak_join.append(float(w1 @ w2))
        # weak-positive joins are much smaller than strong-positive ones but
        # larger than the independent level N^2/n
        independent = 20_000**2 / 500
        assert np.mean(weak_join) < 0.5 * np.mean(strong_join)
        assert np.mean(weak_join) > 0.5 * independent

    def test_smooth_mapping_is_monotone(self, rng):
        c1, c2 = make_type1_pair(
            self.config(Correlation.STRONG_POSITIVE, smooth=True), rng
        )
        assert np.all(np.diff(c1) <= 0)
        assert np.all(np.diff(c2) <= 0)

    def test_smooth_independent_contradiction_rejected(self, rng):
        with pytest.raises(ValueError, match="contradictory"):
            make_type1_pair(self.config(Correlation.INDEPENDENT, smooth=True), rng)

    def test_rough_mapping_not_monotone(self, rng):
        c1, _ = make_type1_pair(self.config(Correlation.INDEPENDENT), rng)
        assert not np.all(np.diff(c1) <= 0)

    def test_counts_are_permutations_of_each_regime(self, rng):
        # correlation only re-maps values; the multisets of frequencies match
        base1, base2 = make_type1_pair(self.config(Correlation.STRONG_POSITIVE), rng)
        ind1, ind2 = make_type1_pair(self.config(Correlation.INDEPENDENT), rng)
        assert sorted(base1) == sorted(ind1)
        assert sorted(base2) == sorted(ind2)
