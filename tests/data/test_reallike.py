"""Tests for the real-life-like dataset generators."""

import numpy as np
import pytest

from repro.data.reallike import (
    CPS_MONTH_SIZES,
    SIPP_YEAR_SIZES,
    cps_like,
    sipp_ssuseq,
    sipp_weight_earnings,
    traffic_hosts,
    traffic_pairs,
)


class TestCPS:
    def test_schema_and_domains(self, rng):
        rel = cps_like(1, rng)
        assert rel.attributes == ("Age", "Education")
        assert rel.counts.shape == (99, 46)
        assert rel.domains[0].low == 1 and rel.domains[0].high == 99

    def test_paper_month_sizes(self, rng):
        for month, size in CPS_MONTH_SIZES.items():
            assert cps_like(month, np.random.default_rng(month)).size == size

    def test_scale_parameter(self, rng):
        rel = cps_like(1, rng, scale=0.1)
        assert rel.size == pytest.approx(13_369, abs=1)

    def test_invalid_month_rejected(self, rng):
        with pytest.raises(ValueError):
            cps_like(4, rng)

    def test_months_strongly_positively_correlated(self):
        a = cps_like(1, np.random.default_rng(1)).counts.sum(axis=1)
        b = cps_like(2, np.random.default_rng(2)).counts.sum(axis=1)
        assert np.corrcoef(a, b)[0, 1] > 0.95

    def test_education_correlates_with_age(self, rng):
        rel = cps_like(1, rng)
        ages = np.arange(1, 100)
        mean_edu = (rel.counts * np.arange(1, 47)[None, :]).sum(axis=1) / np.maximum(
            rel.counts.sum(axis=1), 1
        )
        young = mean_edu[(ages >= 5) & (ages <= 15)].mean()
        adult = mean_edu[(ages >= 35) & (ages <= 55)].mean()
        assert adult > young


class TestSIPP:
    def test_paper_year_sizes_scaled(self):
        for year, size in SIPP_YEAR_SIZES.items():
            rel = sipp_ssuseq(year, np.random.default_rng(year), scale=0.1)
            assert rel.size == int(size * 0.1)

    def test_invalid_year_rejected(self, rng):
        with pytest.raises(ValueError):
            sipp_ssuseq(1999, rng)
        with pytest.raises(ValueError):
            sipp_weight_earnings(1999, rng)

    def test_ssuseq_is_smooth_and_near_uniform(self, rng):
        rel = sipp_ssuseq(2001, rng)
        counts = rel.counts.astype(float)
        # no value holds more than a few times the mean: near-uniform
        assert counts.max() < 5 * counts.mean()
        # smoothness: block-averaged curve has tiny relative variation
        blocks = counts.reshape(100, -1).mean(axis=1)
        assert blocks.std() / blocks.mean() < 0.1

    def test_weight_earnings_schema(self, rng):
        rel = sipp_weight_earnings(2001, rng)
        assert rel.attributes == ("WHFNWGT", "THEARN")
        assert rel.counts.ndim == 2

    def test_weight_earnings_no_point_mass(self, rng):
        rel = sipp_weight_earnings(2004, rng)
        marginal = rel.counts.sum(axis=0).astype(float)
        assert marginal.max() / marginal.sum() < 0.12

    def test_years_positively_correlated(self):
        # per-value Poisson noise dominates raw counts; the shared linear
        # attrition structure shows at block granularity
        a = sipp_ssuseq(2001, np.random.default_rng(1)).counts
        b = sipp_ssuseq(2004, np.random.default_rng(2)).counts
        blocks_a = a.reshape(100, -1).mean(axis=1)
        blocks_b = b.reshape(100, -1).mean(axis=1)
        assert np.corrcoef(blocks_a, blocks_b)[0, 1] > 0.3


class TestTraffic:
    def test_pair_schema(self, rng):
        rel = traffic_pairs(1, rng, scale=0.1)
        assert rel.attributes == ("src", "dst")
        assert rel.counts.shape[0] == rel.counts.shape[1]

    def test_udp_domain_larger_than_tcp(self, rng):
        tcp = traffic_pairs(1, rng, scale=0.1)
        udp = traffic_pairs(1, np.random.default_rng(0), udp=True, scale=0.1)
        assert udp.counts.shape[0] > tcp.counts.shape[0]

    def test_hour_weights_order_sizes(self):
        sizes = [
            traffic_pairs(h, np.random.default_rng(h), scale=0.1).size
            for h in (1, 2, 3)
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_invalid_hour_rejected(self, rng):
        with pytest.raises(ValueError):
            traffic_pairs(4, rng)

    def test_hosts_projection_consistent(self):
        # with identical rng state and structure seed, the host projection
        # must equal the pair tensor's marginal
        pairs = traffic_pairs(1, np.random.default_rng(5), scale=0.1, structure_seed=9)
        hosts = traffic_hosts(1, np.random.default_rng(5), "src", scale=0.1, structure_seed=9)
        np.testing.assert_array_equal(hosts.counts, pairs.counts.sum(axis=1))

    def test_invalid_field_rejected(self, rng):
        with pytest.raises(ValueError, match="src.*dst|'src' or 'dst'"):
            traffic_hosts(1, rng, field="port")

    def test_shared_structure_correlates_hours(self):
        a = traffic_hosts(1, np.random.default_rng(1), "src", scale=0.1, structure_seed=3)
        b = traffic_hosts(2, np.random.default_rng(2), "src", scale=0.1, structure_seed=3)
        assert np.corrcoef(a.counts, b.counts)[0, 1] > 0.15

    def test_different_structure_seeds_decorrelate(self):
        a = traffic_hosts(1, np.random.default_rng(1), "src", scale=0.1, structure_seed=3)
        b = traffic_hosts(2, np.random.default_rng(2), "src", scale=0.1, structure_seed=4)
        assert np.corrcoef(a.counts, b.counts)[0, 1] < 0.15

    def test_flows_are_transient_across_hours(self):
        # per-hour flow sets differ: the top pair of hour 1 is generally not
        # the top pair of hour 2 (same structure seed)
        a = traffic_pairs(1, np.random.default_rng(10), scale=0.1, structure_seed=3)
        b = traffic_pairs(2, np.random.default_rng(20), scale=0.1, structure_seed=3)
        assert np.argmax(a.counts) != np.argmax(b.counts)
