"""Tests for the Vitter-Dobra clustered correlated generator."""

import numpy as np
import pytest

from repro.data.clustered import (
    ClusteredConfig,
    clustered_counts,
    make_clustered_chain,
)


def small_config(**kw):
    defaults = dict(
        domain_size=128, num_clusters=8, relation_size=20_000, z_intra=0.3
    )
    defaults.update(kw)
    return ClusteredConfig(**defaults)


class TestChainGeneration:
    def test_chain_shapes(self, rng):
        relations = make_clustered_chain(small_config(), 2, rng)
        assert [r.ndim for r in relations] == [1, 2, 1]
        assert all(r.shape == (128,) * r.ndim for r in relations)

    def test_three_join_chain_shapes(self, rng):
        relations = make_clustered_chain(small_config(), 3, rng)
        assert [r.ndim for r in relations] == [1, 2, 2, 1]

    def test_single_join_chain(self, rng):
        relations = make_clustered_chain(small_config(), 1, rng)
        assert [r.ndim for r in relations] == [1, 1]

    def test_relation_sizes_exact(self, rng):
        for r in make_clustered_chain(small_config(), 2, rng):
            assert r.sum() == 20_000

    def test_zero_joins_rejected(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            make_clustered_chain(small_config(), 0, rng)

    def test_counts_non_negative(self, rng):
        for r in make_clustered_chain(small_config(), 2, rng):
            assert r.min() >= 0

    def test_deterministic_given_rng_state(self):
        a = make_clustered_chain(small_config(), 2, np.random.default_rng(3))
        b = make_clustered_chain(small_config(), 2, np.random.default_rng(3))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestClusterStructure:
    def test_two_dimensional_data_is_sparse(self, rng):
        relations = make_clustered_chain(small_config(), 2, rng)
        inner = relations[1]
        # clustered data occupies a small fraction of the 2-d space
        assert (inner > 0).mean() < 0.6

    def test_mass_concentrated_in_clusters(self, rng):
        relations = make_clustered_chain(small_config(num_clusters=4), 2, rng)
        inner = relations[1]
        # the busiest 10% of cells should hold the bulk of the mass
        flat = np.sort(inner.ravel())[::-1]
        top = flat[: flat.size // 10].sum()
        assert top / flat.sum() > 0.5

    def test_adjacent_relations_positively_correlated(self, rng):
        # shared anchors on the join attribute induce marginal correlation
        correlations = []
        for seed in range(5):
            r = np.random.default_rng(seed)
            rel = make_clustered_chain(small_config(), 1, r)
            correlations.append(np.corrcoef(rel[0], rel[1])[0, 1])
        assert np.mean(correlations) > 0.2

    def test_join_nonempty(self, rng):
        relations = make_clustered_chain(small_config(), 2, rng)
        j = np.einsum("a,ab,b->", *[r.astype(float) for r in relations])
        assert j > 0


class TestRegionInternals:
    def test_clustered_counts_respects_total(self, rng):
        config = small_config()
        centers = rng.uniform(0, 128, size=(8, 1))
        sides = np.full((8, 1), 20.0)
        counts = clustered_counts(config, 1, centers, rng, sides)
        assert counts.sum() == config.relation_size

    def test_regions_clamped_to_domain(self, rng):
        config = small_config()
        # centers at the very edge must not write out of bounds
        centers = np.array([[0.0], [127.9]] * 4)
        sides = np.full((8, 1), 30.0)
        counts = clustered_counts(config, 1, centers, rng, sides)
        assert counts.shape == (128,)
        assert counts.sum() == config.relation_size
