"""Tests for count-tensor-to-stream expansion."""

import numpy as np
import pytest

from repro.core.normalization import Domain
from repro.data.streams import raw_rows_from_counts, rows_from_counts


class TestRowsFromCounts:
    def test_multiset_preserved(self, rng):
        counts = np.array([[2, 0], [1, 3]])
        rows = rows_from_counts(counts, rng)
        assert rows.shape == (6, 2)
        rebuilt = np.zeros_like(counts)
        np.add.at(rebuilt, (rows[:, 0], rows[:, 1]), 1)
        np.testing.assert_array_equal(rebuilt, counts)

    def test_one_dimensional(self, rng):
        rows = rows_from_counts(np.array([1, 0, 2]), rng)
        assert rows.shape == (3, 1)
        assert sorted(rows[:, 0]) == [0, 2, 2]

    def test_shuffle_changes_order_not_content(self):
        counts = np.arange(20).reshape(4, 5)
        a = rows_from_counts(counts, np.random.default_rng(1), shuffle=False)
        b = rows_from_counts(counts, np.random.default_rng(1), shuffle=True)
        assert not np.array_equal(a, b)
        assert sorted(map(tuple, a)) == sorted(map(tuple, b))

    def test_negative_counts_rejected(self, rng):
        with pytest.raises(ValueError):
            rows_from_counts(np.array([-1, 2]), rng)

    def test_empty_counts(self, rng):
        rows = rows_from_counts(np.zeros((3, 3), dtype=int), rng)
        assert rows.shape == (0, 2)


class TestRawRows:
    def test_offsets_applied(self, rng):
        counts = np.array([1, 1])
        rows = raw_rows_from_counts(
            counts, [Domain.integer_range(100, 101)], rng, shuffle=False
        )
        assert sorted(rows[:, 0]) == [100, 101]

    def test_categorical_rejected(self, rng):
        with pytest.raises(ValueError, match="integer-range"):
            raw_rows_from_counts(np.array([1]), [Domain.categorical(["x"])], rng)
