"""Unit behaviour of the join-bound calculator on hand-built degree vectors.

Small, fully worked examples where the exact join size and every
candidate bound can be computed by hand: the calculator must never go
below the exact size, must hit the known-tight candidates, and must
handle the structural edge cases (cartesian products, disconnected
components, self-loops, empty relations) the engine can hand it.
"""

import math

import numpy as np
import pytest

from repro.bounds.calculator import HOLDER_PAIRS, JoinBoundCalculator
from repro.bounds.degree import DegreeSketch


def sketch_of(counts):
    sketch = DegreeSketch(len(counts))
    sketch.load_counts(np.asarray(counts))
    return sketch


def two_way(r_counts, s_counts):
    return JoinBoundCalculator(
        2,
        [((0, 0), (1, 0))],
        {(0, 0): sketch_of(r_counts), (1, 0): sketch_of(s_counts)},
    )


class TestTwoWayBounds:
    def test_bound_dominates_the_exact_join_size(self):
        r, s = [3, 1, 0, 2], [1, 4, 2, 0]
        exact = sum(a * b for a, b in zip(r, s))
        bound = two_way(r, s).upper_bound()
        assert bound >= exact

    def test_uniform_sides_meet_the_cauchy_schwarz_candidate(self):
        # all-uniform degree vectors: L2(R) * L2(S) is exactly the join
        # size, so the bound must be exact here
        r = [2, 2, 2, 2]
        exact = sum(a * a for a in r)
        assert two_way(r, r).upper_bound() == pytest.approx(exact)

    def test_max_degree_candidate_wins_on_disjoint_supports(self):
        # no overlapping values: the true join is empty; the bound cannot
        # know that, but it must not exceed N_r * maxdeg_s
        r, s = [5, 5, 0, 0], [0, 0, 1, 1]
        bound = two_way(r, s).upper_bound()
        assert bound <= 10 * 1

    def test_min_over_roots_beats_a_fixed_root(self):
        # rooted at R the tree bound is N_R * maxdeg_S = 100 * 1;
        # rooted at S it is N_S * maxdeg_R = 2 * 100.  The calculator
        # must take the min over both (plus the Hölder refinements).
        r, s = [100, 0], [1, 1]
        bound = two_way(r, s).upper_bound()
        assert bound <= 100.0

    def test_empty_relation_zeroes_the_bound(self):
        assert two_way([0, 0], [3, 4]).upper_bound() == 0.0


class TestStructure:
    def test_cartesian_product_of_unjoined_relations_is_exact(self):
        calc = JoinBoundCalculator(
            2, [], {(0, 0): sketch_of([2, 1]), (1, 0): sketch_of([4])}
        )
        assert calc.upper_bound() == pytest.approx(3 * 4)

    def test_disconnected_components_multiply(self):
        # R-S joined, T alone: bound(R, S) * N_T
        calc = JoinBoundCalculator(
            3,
            [((0, 0), (1, 0))],
            {
                (0, 0): sketch_of([2, 2]),
                (1, 0): sketch_of([2, 2]),
                (2, 0): sketch_of([5, 0]),
            },
        )
        pair = two_way([2, 2], [2, 2]).upper_bound()
        assert calc.upper_bound() == pytest.approx(pair * 5)

    def test_self_loop_predicates_are_dropped_soundly(self):
        # a same-relation predicate only filters; with it dropped the
        # relation is unjoined and contributes its cardinality
        calc = JoinBoundCalculator(
            1, [((0, 0), (0, 1))], {(0, 0): sketch_of([3, 2])}
        )
        assert calc.upper_bound() == pytest.approx(5.0)

    def test_three_way_chain_uses_interior_degrees(self):
        # R.A = S.A, S.B = T.B with S having both axes: the tree rooted
        # at R is N_R * maxdeg_S(A) * maxdeg_T(B)
        calc = JoinBoundCalculator(
            3,
            [((0, 0), (1, 0)), ((1, 1), (2, 0))],
            {
                (0, 0): sketch_of([1, 1, 1]),  # N_R = 3
                (1, 0): sketch_of([2, 0, 0]),  # maxdeg_S(A) = 2
                (1, 1): sketch_of([2, 0]),  # maxdeg_S(B) = 2
                (2, 0): sketch_of([1, 1]),  # maxdeg_T(B) = 1
            },
        )
        # exact join: S has 2 tuples (a=0, b=0); R matches a=0 once;
        # T matches b=0 once -> 1 * 2 * 1 = 2
        assert calc.upper_bound() >= 2
        assert calc.upper_bound() <= 3 * 2 * 1

    def test_parallel_edges_take_the_tighter_degree(self):
        # R and S joined on two attribute pairs: either single edge is a
        # sound relaxation, so the bound may use the smaller max degree
        calc = JoinBoundCalculator(
            2,
            [((0, 0), (1, 0)), ((0, 1), (1, 1))],
            {
                (0, 0): sketch_of([4, 0]),
                (0, 1): sketch_of([2, 2]),
                (1, 0): sketch_of([9, 0]),  # maxdeg 9 on the first edge
                (1, 1): sketch_of([8, 1]),  # maxdeg 8 on the second
            },
        )
        # rooted at R: N_R=4 times min(maxdeg_S over the parallel edges)=8,
        # and the Hölder pairs can only improve on that
        assert calc.upper_bound() <= 4 * 8


class TestValidation:
    def test_every_relation_needs_a_sketch(self):
        with pytest.raises(ValueError, match="relation 1 has no degree sketch"):
            JoinBoundCalculator(2, [], {(0, 0): sketch_of([1])})

    def test_every_edge_slot_needs_a_sketch(self):
        with pytest.raises(ValueError, match="has no degree sketch"):
            JoinBoundCalculator(
                2,
                [((0, 0), (1, 1))],
                {(0, 0): sketch_of([1]), (1, 0): sketch_of([1])},
            )

    def test_at_least_one_relation(self):
        with pytest.raises(ValueError, match="at least one relation"):
            JoinBoundCalculator(0, [], {})


class TestHolderFamily:
    def test_pairs_are_conjugate_exponents(self):
        for p, q in HOLDER_PAIRS:
            if math.isinf(p):
                assert q == 1.0
            elif math.isinf(q):
                assert p == 1.0
            else:
                assert 1 / p + 1 / q == pytest.approx(1.0)

    def test_each_holder_candidate_dominates_the_join(self):
        # brute-force check: for random degree vectors, every Hölder
        # candidate L_p(r) * L_q(s) is >= sum(r * s)
        rng = np.random.default_rng(2)
        for _ in range(50):
            r = rng.integers(0, 6, size=8)
            s = rng.integers(0, 6, size=8)
            exact = float(np.dot(r, s))
            for p, q in HOLDER_PAIRS:
                candidate = sketch_of(r).lp(p) * sketch_of(s).lp(q)
                assert candidate >= exact - 1e-9
