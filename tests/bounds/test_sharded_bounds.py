"""Sharded bounds == unsharded bounds, bit for bit.

Degree statistics are exact ``int64`` frequency vectors — linear
functions of the input multiset — so per-shard vectors summed by
:func:`repro.sharding.merge.merge_observer_states` reproduce the
unsharded vector exactly, and the merged bound is *identical* to a
single engine's, not merely sound.  These tests pin that equality down
for 1–8 shards, all three executors, both partitioned and coordinator
resident methods, and degraded fleets.
"""

import math

import numpy as np
import pytest

from repro.sharding.merge import COORDINATOR_METHODS

from .test_soundness import (
    ALL_METHODS,
    assert_sound,
    build_engine,
    feed,
    make_stream,
    methods_for,
)


def assert_same_bounds(single, sharded, methods):
    for method in methods:
        name = f"q_{method}"
        a = single.bound_report(name)
        b = sharded.bound_report(name)
        assert a is not None and b is not None
        assert b["upper_bound"] == a["upper_bound"], (method, a, b)
        # estimates agree bit-for-bit except cosine's reordered float
        # sums, so compare the full report with the parity-test tolerance
        for key in ("estimate", "clamped"):
            assert b[key] == pytest.approx(a[key], rel=1e-9, abs=1e-6), (
                method,
                a,
                b,
            )
        assert b["clamp_fired"] == a["clamp_fired"], (method, a, b)


class TestShardCountParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_merged_bound_identical_across_shard_counts(self, num_shards):
        ops = make_stream(2, data_seed=num_shards, n_batches=6, with_deletes=True)
        methods = methods_for(2, with_deletes=True)
        single = build_engine(2, methods)
        feed(single, ops)
        with build_engine(2, methods, sharded=num_shards) as sharded:
            feed(sharded, ops)
            assert_same_bounds(single, sharded, methods)
            assert_sound(sharded, methods)

    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_three_way_bounds_merge_identically(self, num_shards):
        ops = make_stream(3, data_seed=7, n_batches=6, with_deletes=True)
        methods = methods_for(3, with_deletes=True)
        single = build_engine(3, methods)
        feed(single, ops)
        with build_engine(3, methods, sharded=num_shards) as sharded:
            feed(sharded, ops)
            assert_same_bounds(single, sharded, methods)


class TestExecutorParity:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_every_executor_reports_the_same_bounds(self, executor):
        ops = make_stream(2, data_seed=3, n_batches=5, with_deletes=True)
        methods = methods_for(2, with_deletes=True)
        single = build_engine(2, methods)
        feed(single, ops)
        with build_engine(2, methods, sharded=3, executor=executor) as sharded:
            feed(sharded, ops)
            assert_same_bounds(single, sharded, methods)


class TestCoordinatorMethods:
    def test_coordinator_resident_queries_carry_bounds(self):
        # sample (and, on 2-way joins, wavelet/partitioned_sketch) live
        # on the coordinator's full-stream replica; their bounds must
        # still match the single engine exactly
        coordinator = [m for m in ALL_METHODS if m in COORDINATOR_METHODS]
        assert "sample" in coordinator
        ops = make_stream(2, data_seed=11, n_batches=6, with_deletes=False)
        single = build_engine(2, ALL_METHODS)
        feed(single, ops)
        with build_engine(2, ALL_METHODS, sharded=4) as sharded:
            feed(sharded, ops)
            assert_same_bounds(single, sharded, ALL_METHODS)
            for method in coordinator:
                a = single.estimate(f"q_{method}", mode="upper_bound")
                b = sharded.estimate(f"q_{method}", mode="upper_bound")
                assert a == b, method


class TestDegradedFleets:
    def test_degraded_shard_reports_nan_bound(self):
        ops = make_stream(2, data_seed=5, n_batches=4, with_deletes=False)
        with build_engine(2, ["cosine"], sharded=2) as sharded:
            sharded.enable_fault_isolation("nan")
            feed(sharded, ops)

            def exploding(relation, rows, kind):
                raise RuntimeError("synopsis exploded")

            shard = sharded._executor.workers[0].engine
            _, observer = shard._queries["q_cosine"].attachments[0]
            observer.on_ops = exploding
            shard.ingest_batch("R", np.array([[1, 2]]))

            report = sharded.bound_report("q_cosine")
            assert math.isnan(report["upper_bound"])
            assert report["clamp_fired"] is False
            assert math.isnan(sharded.estimate("q_cosine", mode="upper_bound"))

    def test_plain_queries_still_report_none(self):
        from repro.streams import JoinQuery

        query = JoinQuery.parse(["R", "S"], ["R.B = S.B"])
        with build_engine(2, ["cosine"], sharded=2) as sharded:
            sharded.register_query("plain", query, method="basic_sketch", budget=8)
            assert sharded.bound_report("plain") is None
            with pytest.raises(ValueError, match="bounds=True"):
                sharded.estimate("plain", mode="upper_bound")
