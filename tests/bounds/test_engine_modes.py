"""The estimation-mode surface: modes, clamps, metrics, and the daemon.

Everything around the bound math itself: the ``estimate(mode=...)``
dispatch and its error contract, ``ClampedEstimator`` as the ensemble
wrapper, the ``repro_bound_clamps_total`` / ``repro_bound_tightness_ratio``
telemetry, degraded-query NaN semantics, and the fleet daemon's
per-query bound metadata (including the partial-policy refusal — a
partial merge has no sound bound).
"""

import math

import numpy as np
import pytest

from repro.bounds import ClampedEstimator
from repro.core.normalization import Domain
from repro.streams import JoinQuery, StreamEngine

from ..fleet.test_serve import ServeHarness, connect
from .test_soundness import build_engine, feed, make_stream

DOMAIN_SPEC = {"low": 0, "size": 48}


def small_engine(**options):
    engine = StreamEngine(seed=0)
    domain = Domain.of_size(16)
    engine.create_relation("R", ["A"], [domain])
    engine.create_relation("S", ["A"], [domain])
    query = JoinQuery.parse(["R", "S"], ["R.A = S.A"])
    engine.register_query("q", query, method="basic_sketch", budget=16, **options)
    rng = np.random.default_rng(1)
    engine.ingest_batch("R", rng.integers(0, 16, (60, 1)))
    engine.ingest_batch("S", rng.integers(0, 16, (60, 1)))
    return engine


class TestEstimateModes:
    def test_answer_mode_matches_answer(self):
        engine = small_engine(bounds=True)
        assert engine.estimate("q") == engine.answer("q")
        assert engine.estimate("q", mode="answer") == engine.answer("q")

    def test_mode_dispatch_is_consistent_with_the_report(self):
        engine = small_engine(bounds=True)
        report = engine.bound_report("q")
        assert engine.estimate("q", mode="upper_bound") == report["upper_bound"]
        assert engine.estimate("q", mode="clamped") == report["clamped"]

    def test_unknown_mode_is_rejected(self):
        engine = small_engine(bounds=True)
        with pytest.raises(ValueError, match="unknown estimation mode"):
            engine.estimate("q", mode="lower_bound")

    def test_bound_modes_require_registration_opt_in(self):
        engine = small_engine()
        assert engine.bound_report("q") is None
        for mode in ("upper_bound", "clamped"):
            with pytest.raises(ValueError, match="bounds=True"):
                engine.estimate("q", mode=mode)

    def test_upper_bound_works_before_any_ingest(self):
        engine = StreamEngine(seed=0)
        domain = Domain.of_size(8)
        engine.create_relation("R", ["A"], [domain])
        engine.create_relation("S", ["A"], [domain])
        query = JoinQuery.parse(["R", "S"], ["R.A = S.A"])
        engine.register_query("q", query, method="cosine", budget=8, bounds=True)
        # the cosine estimator cannot answer an empty synopsis, but the
        # bound alone is well-defined (an empty join: zero)
        assert engine.estimate("q", mode="upper_bound") == 0.0

    def test_range_and_band_queries_reject_bounds(self):
        engine = StreamEngine(seed=0)
        domain = Domain.of_size(16)
        engine.create_relation("R", ["A"], [domain])
        engine.create_relation("S", ["A"], [domain])
        with pytest.raises(ValueError, match="only supported for join"):
            engine.register_range_query("r", "R", "A", 2, 9, budget=8, bounds=True)
        with pytest.raises(ValueError, match="only supported for join"):
            engine.register_band_query(
                "b", ("R", "A"), ("S", "A"), width=2, budget=8, bounds=True
            )


class TestClampSemantics:
    def test_overshooting_estimate_is_clamped(self):
        engine = small_engine(bounds=True)
        # a test double standing in for a wildly overshooting estimator
        engine._queries["q"].estimate = lambda: 1e18
        report = engine.bound_report("q")
        assert report["clamp_fired"] is True
        assert report["clamped"] == report["upper_bound"] < 1e18
        assert engine.estimate("q", mode="clamped") == report["upper_bound"]

    def test_nan_estimate_clamps_to_the_bound(self):
        engine = small_engine(bounds=True)
        engine._queries["q"].estimate = lambda: float("nan")
        report = engine.bound_report("q")
        # NaN compares False with everything: the bound is the only
        # sound number available, so that is the clamped answer
        assert report["clamped"] == report["upper_bound"]
        assert report["clamp_fired"] is False

    def test_degraded_query_reports_nan_bound(self):
        engine = small_engine(bounds=True)
        engine.enable_fault_isolation("nan")
        _, observer = engine._queries["q"].attachments[0]

        def exploding(relation, rows, kind):
            raise RuntimeError("synopsis exploded")

        observer.on_ops = exploding
        engine.ingest_batch("R", np.array([[1]]))
        report = engine.bound_report("q")
        assert math.isnan(report["upper_bound"])
        assert report["clamp_fired"] is False
        assert math.isnan(engine.estimate("q", mode="upper_bound"))


class TestClampedEstimator:
    def test_wraps_any_bounded_query(self):
        engine = small_engine(bounds=True)
        wrapped = ClampedEstimator(engine, "q")
        report = engine.bound_report("q")
        assert wrapped.answer() == report["clamped"]
        assert wrapped.estimate() == report["estimate"]
        assert wrapped.upper_bound() == report["upper_bound"]
        assert wrapped.report()["clamp_fired"] == report["clamp_fired"]

    def test_rejects_queries_without_bounds(self):
        engine = small_engine()
        with pytest.raises(ValueError, match="bounds=True"):
            ClampedEstimator(engine, "q")

    def test_wraps_sharded_engines_too(self):
        with build_engine(2, ["basic_sketch"], sharded=2) as sharded:
            feed(sharded, make_stream(2, 17, 4, with_deletes=False))
            wrapped = ClampedEstimator(sharded, "q_basic_sketch")
            report = sharded.bound_report("q_basic_sketch")
            assert wrapped.answer() == report["clamped"]


class TestBoundMetrics:
    def test_clamp_counter_counts_fired_clamps_only(self):
        engine = small_engine(bounds=True)
        registry = engine.telemetry.registry
        engine.bound_report("q")  # honest estimate: no clamp
        assert registry.get("repro_bound_clamps_total") is None

        engine._queries["q"].estimate = lambda: 1e18
        engine.bound_report("q")
        engine.bound_report("q")
        counter = registry.get("repro_bound_clamps_total")
        assert counter.labels("q").value == 2

    def test_tightness_gauge_tracks_clamped_over_bound(self):
        engine = small_engine(bounds=True)
        registry = engine.telemetry.registry
        report = engine.bound_report("q")
        gauge = registry.get("repro_bound_tightness_ratio")
        expected = report["clamped"] / report["upper_bound"]
        assert gauge.labels("q").value == pytest.approx(expected)
        assert 0.0 <= gauge.labels("q").value <= 1.0

        engine._queries["q"].estimate = lambda: 1e18
        engine.bound_report("q")
        assert gauge.labels("q").value == 1.0

    def test_disabled_telemetry_records_nothing(self):
        from repro.obs.telemetry import Telemetry

        engine = StreamEngine(seed=0, telemetry=Telemetry.disabled())
        domain = Domain.of_size(8)
        engine.create_relation("R", ["A"], [domain])
        engine.create_relation("S", ["A"], [domain])
        query = JoinQuery.parse(["R", "S"], ["R.A = S.A"])
        engine.register_query("q", query, method="basic_sketch", budget=8, bounds=True)
        engine.ingest_batch("R", np.array([[1], [2]]))
        engine.ingest_batch("S", np.array([[1], [1]]))
        engine.bound_report("q")
        assert engine.telemetry.registry.get("repro_bound_tightness_ratio") is None


BOUNDED_JOIN_SPEC = {
    "kind": "join",
    "relations": ["R1", "R2"],
    "predicates": ["R1.A = R2.A"],
    "method": "basic_sketch",
    "budget": 24,
    "options": {"bounds": True},
}
PLAIN_JOIN_SPEC = {**BOUNDED_JOIN_SPEC, "options": {}}


class TestServeBoundMetadata:
    @pytest.fixture
    def harness(self):
        from repro.sharding import ShardedStreamEngine

        fleet = ShardedStreamEngine(num_shards=2, seed=3)
        harness = ServeHarness(fleet)
        yield harness
        harness.close()
        fleet.close()

    def register_and_feed(self, client, spec=BOUNDED_JOIN_SPEC):
        client.create_relation("R1", ["A"], [DOMAIN_SPEC])
        client.create_relation("R2", ["A"], [DOMAIN_SPEC])
        client.register("qj", spec)
        client.ingest("R1", [[1], [2], [15], [15]])
        client.ingest("R2", [[1], [15], [15]])

    def test_query_reports_bound_metadata(self, harness):
        with connect(harness) as client:
            self.register_and_feed(client)
            for mode in ("answer", "upper_bound", "clamped"):
                reply = client.query("qj", mode=mode)
                assert reply["mode"] == mode
                bound = reply["bound"]
                assert bound["clamped"] <= bound["upper_bound"]
                assert bound["clamp_fired"] in (False, True)
            assert client.query("qj", mode="upper_bound")["value"] == (
                client.query("qj")["bound"]["upper_bound"]
            )

    def test_boundless_queries_keep_the_old_shape(self, harness):
        with connect(harness) as client:
            self.register_and_feed(client, spec=PLAIN_JOIN_SPEC)
            reply = client.query("qj")
            assert "bound" not in reply
            error = client.request("query", name="qj", mode="clamped")
            assert error["ok"] is False and "bounds=True" in error["error"]

    def test_partial_policy_refuses_bound_modes(self, harness):
        with connect(harness) as client:
            self.register_and_feed(client)
            error = client.request("query", name="qj", mode="clamped", policy="partial")
            assert error["ok"] is False
            assert "no sound bound" in error["error"]

    def test_unknown_mode_is_a_clean_error(self, harness):
        with connect(harness) as client:
            self.register_and_feed(client)
            error = client.request("query", name="qj", mode="psychic")
            assert error["ok"] is False and "unknown estimation mode" in error["error"]
