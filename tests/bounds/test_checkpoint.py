"""Bounds survive checkpoints: restored engines answer identically.

Degree observers join the regular checkpoint plumbing — their frequency
vectors are serialized with every other observer's state and their
structural fields (domain, axis) are rebuilt from the query spec at
restore.  These tests pin the strongest version of that contract:
restored state is *bit-identical*, bound reports are equal before and
after a restore, and the crash-at-any-batch-boundary chaos harness from
``tests/resilience`` keeps bounds answer-identical to an uncrashed
control engine.  Sharded fleets restore per shard or wholesale with the
same guarantee.
"""

import numpy as np
import pytest

from repro.bounds.degree import DegreeObserver
from repro.resilience import CheckpointStore, SimulatedCrash
from repro.resilience.chaos import CrashingIngest
from repro.sharding import ShardedStreamEngine
from repro.streams import StreamEngine
from repro.streams.tuples import OpKind

from .test_soundness import build_engine, feed, make_stream, methods_for


def insert_batches(data_seed=4, n_batches=7):
    ops = make_stream(2, data_seed, n_batches, with_deletes=False)
    return [(rel, rows) for rel, rows, _ in ops]


def degree_states(engine):
    """Every degree observer's state, in deterministic attachment order."""
    states = []
    for name in sorted(engine._queries):
        for _, observer in engine._queries[name].attachments:
            if isinstance(observer, DegreeObserver):
                states.append((name, observer.state_dict()))
    return states


def bound_reports(engine, methods):
    return {m: engine.bound_report(f"q_{m}") for m in methods}


class TestSingleEngineRoundTrip:
    def test_degree_state_restores_bit_identically(self, tmp_path):
        methods = methods_for(2, with_deletes=True)
        engine = build_engine(2, methods)
        feed(engine, make_stream(2, 9, 6, with_deletes=True))
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")

        original = degree_states(engine)
        recovered = degree_states(restored)
        assert len(original) == len(recovered) > 0
        for (name_a, state_a), (name_b, state_b) in zip(original, recovered):
            assert name_a == name_b
            assert state_a["freq"].dtype == state_b["freq"].dtype == np.int64
            np.testing.assert_array_equal(state_a["freq"], state_b["freq"])

        assert bound_reports(restored, methods) == bound_reports(engine, methods)

    def test_reports_stay_identical_under_further_ingest(self, tmp_path):
        methods = methods_for(2, with_deletes=True)
        engine = build_engine(2, methods)
        feed(engine, make_stream(2, 13, 4, with_deletes=True))
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")

        future = make_stream(2, 14, 5, with_deletes=False)
        feed(engine, future)
        feed(restored, future)
        assert bound_reports(restored, methods) == bound_reports(engine, methods)

    def test_deletes_after_restore_keep_reports_identical(self, tmp_path):
        engine = build_engine(2, ["cosine", "basic_sketch"])
        rows = np.column_stack([np.arange(30) % 16, np.arange(30) % 12])
        engine.ingest_batch("R", rows)
        engine.ingest_batch("S", rows[:, 1:])
        engine.save_checkpoint(tmp_path / "x.ckpt")
        restored = StreamEngine.load_checkpoint(tmp_path / "x.ckpt")

        engine.ingest_batch("R", rows[:10], kind=OpKind.DELETE)
        restored.ingest_batch("R", rows[:10], kind=OpKind.DELETE)
        methods = ["cosine", "basic_sketch"]
        assert bound_reports(restored, methods) == bound_reports(engine, methods)


class TestCrashChaos:
    @pytest.mark.parametrize("crash_at", [1, 3, 5, 7])
    def test_crash_at_any_batch_boundary_keeps_bounds_identical(
        self, tmp_path, crash_at
    ):
        batches = insert_batches()
        methods = methods_for(2, with_deletes=False)

        control = build_engine(2, methods)
        CrashingIngest(control).run(batches)
        expected = bound_reports(control, methods)

        victim = build_engine(2, methods)
        store = CheckpointStore(tmp_path / f"crash{crash_at}", keep=3)
        harness = CrashingIngest(victim, store, checkpoint_every=1, crash_at=crash_at)
        with pytest.raises(SimulatedCrash):
            harness.run(batches)

        if store.latest() is None:
            restored = build_engine(2, methods)
            remaining = batches
        else:
            restored = StreamEngine.load_checkpoint(store.latest())
            remaining = batches[harness.batches_applied :]
        CrashingIngest(restored).run(remaining)

        recovered = bound_reports(restored, methods)
        for method in methods:
            assert recovered[method] == expected[method], method


class TestShardedRoundTrip:
    def test_full_fleet_restore_keeps_bounds_identical(self, tmp_path):
        methods = methods_for(2, with_deletes=True)
        ops = make_stream(2, 21, 6, with_deletes=True)
        control = build_engine(2, methods, sharded=3)
        fleet = build_engine(2, methods, sharded=3)
        feed(control, ops[:4])
        feed(fleet, ops[:4])
        fleet.save_checkpoints(tmp_path)
        fleet.close()

        restored = ShardedStreamEngine.restore(tmp_path)
        feed(control, ops[4:])
        feed(restored, ops[4:])
        assert bound_reports(restored, methods) == bound_reports(control, methods)
        restored.close()
        control.close()

    def test_single_shard_revival_keeps_bounds_identical(self, tmp_path):
        methods = methods_for(2, with_deletes=False)
        batches = insert_batches(data_seed=31, n_batches=6)
        control = build_engine(2, methods, sharded=3)
        victim = build_engine(2, methods, sharded=3)
        for rel, rows in batches:
            control.ingest_batch(rel, rows)
            victim.ingest_batch(rel, rows)
            victim.save_checkpoints(tmp_path)

        worker = victim._executor.workers[1]
        worker.engine = worker._fresh_engine()
        victim.restore_shard(1, tmp_path)

        assert bound_reports(victim, methods) == bound_reports(control, methods)
        victim.close()
        control.close()
