"""Unit behaviour of the degree-sequence statistics layer.

The norms a :class:`DegreeSketch` reports must be the exact norms of
the live multiset's frequency vector under any insert/delete history,
and the :class:`DegreeObserver` batch path must land on the same state
as the per-op path — everything downstream (bounds, merges,
checkpoints) leans on these two facts.
"""

import math

import numpy as np
import pytest

from repro.bounds.degree import DegreeObserver, DegreeSketch
from repro.core.normalization import Domain
from repro.streams.relation import StreamRelation
from repro.streams.tuples import OpKind, StreamOp


class TestDegreeSketch:
    def test_tracks_exact_frequencies_under_inserts_and_deletes(self):
        sketch = DegreeSketch(5)
        for index in [0, 0, 0, 3, 3, 4]:
            sketch.update(index, 1)
        sketch.update(3, -1)
        assert sketch.freq.tolist() == [3, 0, 0, 1, 1]
        assert sketch.count == 5
        assert sketch.max_degree == 3
        assert sketch.l1 == 5
        assert sketch.l2 == pytest.approx(math.sqrt(9 + 1 + 1))

    def test_lp_norms_interpolate_between_l1_and_max_degree(self):
        sketch = DegreeSketch(4)
        sketch.load_counts(np.array([4, 2, 1, 0]))
        assert sketch.lp(1) == 7.0
        assert sketch.lp(math.inf) == 4.0
        assert sketch.lp(2) == pytest.approx(math.sqrt(16 + 4 + 1))
        assert sketch.lp(3) == pytest.approx((64 + 8 + 1) ** (1 / 3))
        # Lp is nonincreasing in p for a fixed vector
        values = [sketch.lp(p) for p in (1, 1.5, 2, 3, math.inf)]
        assert values == sorted(values, reverse=True)

    def test_batch_update_matches_per_op_updates(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 10, size=200)
        one = DegreeSketch(10)
        one.update_batch(indices, 1)
        other = DegreeSketch(10)
        for index in indices:
            other.update(int(index), 1)
        assert np.array_equal(one.freq, other.freq)
        one.update_batch(indices[:50], -1)
        for index in indices[:50]:
            other.update(int(index), -1)
        assert np.array_equal(one.freq, other.freq)

    def test_state_dict_round_trips_bit_identically(self):
        sketch = DegreeSketch(6)
        sketch.update_batch(np.array([1, 1, 5, 0]), 1)
        restored = DegreeSketch(6)
        restored.load_state(sketch.state_dict())
        assert np.array_equal(restored.freq, sketch.freq)
        assert restored.freq.dtype == np.int64
        # the copy is defensive: mutating the snapshot cannot corrupt it
        snapshot = sketch.state_dict()
        snapshot["freq"][0] = 99
        assert sketch.freq[0] != 99

    def test_rejects_bad_sizes_shapes_and_exponents(self):
        with pytest.raises(ValueError, match="positive"):
            DegreeSketch(0)
        sketch = DegreeSketch(3)
        with pytest.raises(ValueError, match="shape"):
            sketch.load_counts(np.zeros(4))
        with pytest.raises(ValueError, match="p >= 1"):
            sketch.lp(0.5)

    def test_empty_sketch_norms_are_zero(self):
        sketch = DegreeSketch(8)
        assert sketch.count == 0
        assert sketch.max_degree == 0
        assert sketch.l2 == 0.0
        assert sketch.lp(2.5) == 0.0


class TestDegreeObserver:
    def _relation(self):
        return StreamRelation(
            "R", ["A", "B"], [Domain.of_size(6), Domain.of_size(4)]
        )

    def test_observes_the_configured_axis_only(self):
        relation = self._relation()
        sketch = DegreeSketch(4)
        relation.attach(DegreeObserver(sketch, relation.domains[1], axis=1))
        relation.insert_rows(np.array([[0, 1], [1, 1], [2, 3]]))
        assert sketch.freq.tolist() == [0, 2, 0, 1]
        relation.delete_rows(np.array([[0, 1]]))
        assert sketch.freq.tolist() == [0, 1, 0, 1]

    def test_per_op_path_matches_batch_path(self):
        rng = np.random.default_rng(1)
        rows = np.column_stack(
            [rng.integers(0, 6, 120), rng.integers(0, 4, 120)]
        )
        batched_rel = self._relation()
        batched = DegreeSketch(6)
        batched_rel.attach(DegreeObserver(batched, batched_rel.domains[0], axis=0))
        batched_rel.insert_rows(rows)
        per_op_rel = self._relation()
        per_op = DegreeSketch(6)
        observer = DegreeObserver(per_op, per_op_rel.domains[0], axis=0)
        per_op_rel.attach(observer)
        for row in rows:
            per_op_rel.process(StreamOp(tuple(row), OpKind.INSERT))
        assert np.array_equal(batched.freq, per_op.freq)

    def test_empty_batch_is_a_no_op(self):
        relation = self._relation()
        sketch = DegreeSketch(6)
        observer = DegreeObserver(sketch, relation.domains[0], axis=0)
        observer.on_ops(relation, np.empty((0, 2), dtype=np.int64), OpKind.INSERT)
        assert sketch.count == 0

    def test_structural_fields_are_checkpoint_exempt(self):
        # state_dict carries only the frequency vector; axis and domain
        # are rebuilt from the query spec at (re-)registration time.
        relation = self._relation()
        observer = DegreeObserver(DegreeSketch(6), relation.domains[0], axis=0)
        assert set(observer.state_dict()) == {"freq"}
        assert "domain" in observer._checkpoint_exempt
        assert "axis" in observer._checkpoint_exempt
