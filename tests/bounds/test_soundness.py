"""The soundness property: ``exact <= upper_bound``, always.

Hypothesis drives random insert/delete streams through engines with
every supported estimation method registered under ``bounds=True`` and
asserts the bound contract at every probe point:

* the guaranteed upper bound dominates the exact join size,
* the clamped answer is ``min(estimate, upper_bound)`` and never
  exceeds the bound,
* on insert-only streams the bound is monotone nondecreasing,
* and the contract survives a shard merge and a checkpoint restore
  bit-for-bit (the ISSUE's acceptance criterion).

2-way and 3-way joins are exercised separately because the histogram,
wavelet and partitioned-sketch baselines support single-join queries
only, and ``sample`` cannot process deletions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import Domain
from repro.sharding import ShardedStreamEngine
from repro.streams import JoinQuery, StreamEngine
from repro.streams.tuples import OpKind

NA, NB = 16, 12
BUDGET = 12

TWO_WAY = JoinQuery.parse(["R", "S"], ["R.B = S.B"])
THREE_WAY = JoinQuery.parse(
    ["R", "S", "T"], ["R.A = S.A", "S.B = T.B"]
)

ALL_METHODS = [
    "cosine",
    "basic_sketch",
    "skimmed_sketch",
    "sample",
    "histogram",
    "wavelet",
    "partitioned_sketch",
]
#: The histogram/wavelet/partitioned baselines support one join only.
MULTI_JOIN_METHODS = ["cosine", "basic_sketch", "skimmed_sketch", "sample"]
#: Bernoulli samples cannot process deletions (paper section 2).
DELETE_SAFE = [m for m in ALL_METHODS if m != "sample"]


def methods_for(arity, with_deletes):
    methods = ALL_METHODS if arity == 2 else MULTI_JOIN_METHODS
    return [m for m in methods if m in DELETE_SAFE] if with_deletes else methods


def build_engine(arity, methods, seed=0, sharded=0, executor="serial"):
    if sharded:
        engine = ShardedStreamEngine(
            num_shards=sharded, seed=seed, executor=executor
        )
    else:
        engine = StreamEngine(seed=seed)
    if arity == 2:
        engine.create_relation(
            "R", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)]
        )
        engine.create_relation("S", ["B"], [Domain.of_size(NB)])
        query = TWO_WAY
    else:
        engine.create_relation("R", ["A"], [Domain.of_size(NA)])
        engine.create_relation(
            "S", ["A", "B"], [Domain.of_size(NA), Domain.of_size(NB)]
        )
        engine.create_relation("T", ["B"], [Domain.of_size(NB)])
        query = THREE_WAY
    for method in methods:
        engine.register_query(
            f"q_{method}", query, method=method, budget=BUDGET, bounds=True
        )
    return engine


def relation_schemas(arity):
    if arity == 2:
        return {"R": (NA, NB), "S": (NB,)}
    return {"R": (NA,), "S": (NA, NB), "T": (NB,)}


def make_stream(arity, data_seed, n_batches, with_deletes):
    """A valid random op stream: inserts, plus deletes of live tuples only.

    Every relation leads with one insert batch so no estimator ever
    answers over a never-fed synopsis.
    """
    rng = np.random.default_rng(data_seed)
    schemas = relation_schemas(arity)
    names = list(schemas)
    live = {name: [] for name in names}
    ops = []

    def insert(rel, size):
        sizes = schemas[rel]
        rows = np.column_stack(
            [rng.integers(0, domain, size) for domain in sizes]
        )
        live[rel].extend(tuple(r) for r in rows.tolist())
        ops.append((rel, rows, OpKind.INSERT))

    for rel in names:
        insert(rel, int(rng.integers(4, 20)))
    for i in range(n_batches):
        rel = names[i % len(names)]
        if with_deletes and len(live[rel]) >= 4 and rng.random() < 0.4:
            # delete live tuples only, and never the last one: estimators
            # are entitled to refuse an empty relation, which is not the
            # property under test here
            k = int(rng.integers(1, min(len(live[rel]) - 1, 15) + 1))
            picked = rng.choice(len(live[rel]), size=k, replace=False)
            rows = np.array([live[rel][j] for j in picked])
            keep = np.ones(len(live[rel]), dtype=bool)
            keep[picked] = False
            live[rel] = [r for r, k_ in zip(live[rel], keep) if k_]
            ops.append((rel, rows, OpKind.DELETE))
        else:
            insert(rel, int(rng.integers(8, 40)))
    return ops


def feed(engine, ops):
    for rel, rows, kind in ops:
        engine.ingest_batch(rel, rows, kind)


def assert_sound(engine, methods, slack=1e-6):
    """The bound contract for every registered method, at one probe point."""
    for method in methods:
        name = f"q_{method}"
        exact = engine.exact_answer(name)
        report = engine.bound_report(name)
        bound = report["upper_bound"]
        assert exact <= bound * (1 + 1e-9) + slack, (method, exact, bound)
        assert report["clamped"] <= bound * (1 + 1e-9) + slack, (method, report)
        expected = min(report["estimate"], bound)
        assert report["clamped"] == expected, (method, report)
        assert report["clamp_fired"] == (report["estimate"] > bound), (
            method,
            report,
        )
        # the mode dispatch must agree with the report
        assert engine.estimate(name, mode="upper_bound") == bound
        assert engine.estimate(name, mode="clamped") == report["clamped"]


class TestSoundnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        n_batches=st.integers(0, 8),
        with_deletes=st.booleans(),
    )
    def test_two_way_bound_dominates_exact(
        self, data_seed, n_batches, with_deletes
    ):
        methods = methods_for(2, with_deletes)
        engine = build_engine(2, methods)
        feed(engine, make_stream(2, data_seed, n_batches, with_deletes))
        assert_sound(engine, methods)

    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        n_batches=st.integers(0, 8),
        with_deletes=st.booleans(),
    )
    def test_three_way_bound_dominates_exact(
        self, data_seed, n_batches, with_deletes
    ):
        methods = methods_for(3, with_deletes)
        engine = build_engine(3, methods)
        feed(engine, make_stream(3, data_seed, n_batches, with_deletes))
        assert_sound(engine, methods)

    @settings(max_examples=15, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        arity=st.sampled_from([2, 3]),
    )
    def test_bound_is_monotone_on_insert_only_streams(self, data_seed, arity):
        # every candidate is a product of nondecreasing norms over a
        # fixed candidate set, so the min never goes down under inserts
        engine = build_engine(arity, ["cosine"])
        ops = make_stream(arity, data_seed, n_batches=6, with_deletes=False)
        previous = engine.estimate("q_cosine", mode="upper_bound")
        for rel, rows, kind in ops:
            engine.ingest_batch(rel, rows, kind)
            current = engine.estimate("q_cosine", mode="upper_bound")
            assert current >= previous * (1 - 1e-12), (previous, current)
            previous = current

    @settings(max_examples=10, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        num_shards=st.integers(1, 8),
        with_deletes=st.booleans(),
    )
    def test_soundness_survives_shard_merge(
        self, data_seed, num_shards, with_deletes
    ):
        methods = methods_for(2, with_deletes)
        ops = make_stream(2, data_seed, n_batches=5, with_deletes=with_deletes)
        single = build_engine(2, methods)
        feed(single, ops)
        sharded = build_engine(2, methods, sharded=num_shards)
        feed(sharded, ops)
        try:
            assert_sound(sharded, methods)
            # degree vectors are linear in the stream, so the merged
            # bound is *identical* to the unsharded bound, not just sound
            for method in methods:
                a = single.estimate(f"q_{method}", mode="upper_bound")
                b = sharded.estimate(f"q_{method}", mode="upper_bound")
                assert a == b, (method, a, b)
        finally:
            sharded.close()

    @settings(max_examples=10, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        split=st.integers(0, 5),
        with_deletes=st.booleans(),
    )
    def test_soundness_survives_checkpoint_restore(
        self, tmp_path_factory, data_seed, split, with_deletes
    ):
        methods = methods_for(2, with_deletes)
        ops = make_stream(2, data_seed, n_batches=5, with_deletes=with_deletes)
        cut = min(split, len(ops))
        engine = build_engine(2, methods)
        feed(engine, ops[:cut])
        path = tmp_path_factory.mktemp("sound") / "bounds.ckpt"
        engine.save_checkpoint(path)
        restored = StreamEngine.load_checkpoint(path)
        feed(engine, ops[cut:])
        feed(restored, ops[cut:])
        assert_sound(restored, methods)
        for method in methods:
            a = engine.bound_report(f"q_{method}")
            b = restored.bound_report(f"q_{method}")
            assert a == b, (method, a, b)
