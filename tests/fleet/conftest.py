"""Shared fixtures for the supervised network fleet tests.

The workload helpers are the same ones the in-process shard recovery
suite uses (``tests/sharding/test_shard_recovery``): a two-relation
join schema, every estimation method registered, and a deterministic
zipf batch stream — so "socket fleet answers equal the serial fleet"
is checked against the exact workload the rest of the suite trusts.
"""

import numpy as np
import pytest

from repro.fleet import SocketExecutor
from tests.analysis.sanitizer import lock_order_sanitizer
from tests.sharding.test_shard_recovery import (  # noqa: F401 - shared workload
    ALL_METHODS,
    DOMAIN,
    EXACT_METHODS,
    NUM_SHARDS,
    assert_fleet_answers_equal,
    build_fleet,
    make_batches,
)


@pytest.fixture(autouse=True)
def lock_sanitizer():
    """Run every fleet test under the runtime lock-order sanitizer.

    The dynamic confirmation of REP008: supervisor revival, registry
    merges, and OTel pushes all take their locks while this fixture
    records the acquisition order; any ABBA pair observed during the
    chaos schedule fails the test even though no schedule deadlocked.
    """
    with lock_order_sanitizer() as sanitizer:
        yield sanitizer
    sanitizer.assert_no_inversions()


def build_socket_fleet(num_shards=NUM_SHARDS, seed=11, **supervisor_options):
    """A socket-executor fleet with the shared schema and queries."""
    executor = SocketExecutor(**supervisor_options)
    return build_fleet(num_shards=num_shards, seed=seed, executor=executor)


@pytest.fixture
def serial_expected():
    """Answers of an uninterrupted serial fleet over the shared batches."""
    batches = make_batches()
    control = build_fleet()
    for name, rows in batches:
        control.ingest_batch(name, rows)
    expected = control.answers()
    control.close()
    return batches, expected


def wide_rows(rng: np.random.Generator, n: int):
    """Rows spread across the domain so every shard holds state."""
    return rng.integers(0, DOMAIN, size=(n, 1))
