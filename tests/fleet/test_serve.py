"""FleetServer: the newline-JSON daemon — ops, degradation, backpressure."""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.fleet import FleetClient, FleetServer
from repro.sharding import ShardedStreamEngine

from .conftest import build_socket_fleet

JOIN_SPEC = {
    "kind": "join",
    "relations": ["R1", "R2"],
    "predicates": ["R1.A = R2.A"],
    "method": "basic_sketch",
    "budget": 24,
    "options": {},
}
RANGE_SPEC = {
    "kind": "range",
    "relation": "R1",
    "attribute": "A",
    "low": 10,
    "high": 30,
    "budget": 24,
    "options": {},
}
DOMAIN_SPEC = {"low": 0, "size": 48}


class ServeHarness:
    """Run a FleetServer on an event loop in a daemon thread."""

    def __init__(self, fleet, **server_options):
        import asyncio

        self.server = FleetServer(fleet, **server_options)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)
        self.address = self.server.address

    def close(self):
        import asyncio

        asyncio.run_coroutine_threadsafe(self.server.close(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def harness():
    """A daemon over a small serial fleet with dead-lettering enabled."""
    fleet = ShardedStreamEngine(num_shards=2, seed=3)
    fleet.enable_dead_lettering()
    harness = ServeHarness(fleet)
    yield harness
    harness.close()
    fleet.close()


def connect(harness):
    return FleetClient(*harness.address)


class TestOps:
    def test_full_session_over_the_wire(self, harness):
        with connect(harness) as client:
            ping = client.ping()
            assert ping["num_shards"] == 2 and ping["up"] == [True, True]

            client.create_relation("R1", ["A"], [DOMAIN_SPEC])
            client.create_relation("R2", ["A"], [DOMAIN_SPEC])
            client.register("qj", JOIN_SPEC)
            client.register("qr", RANGE_SPEC)

            done = client.ingest("R1", [[1], [2], [15], [999]])
            assert done["rows"] == 4 and done["dead_lettered"] == 1
            client.ingest("R2", [[1], [15], [15]])

            join = client.query("qj")
            assert join["degraded"] is False and join["value"] >= 0
            rng = client.query("qr")
            # one row (15) falls in [10, 30]; the estimator lands near it
            assert rng["value"] == pytest.approx(1.0, abs=0.5)

            stats = client.stats()
            assert stats["relations"] == ["R1", "R2"]
            assert sorted(stats["queries"]) == ["qj", "qr"]
            assert len(stats["shards"]) == 2

            letters = client.check("deadletters")["deadletters"]
            assert letters["total"] == 1

    def test_bad_requests_answer_without_killing_the_session(self, harness):
        with connect(harness) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False and "malformed JSON" in response["error"]

            response = client.request("warp_core_eject", id="r1")
            assert response["ok"] is False
            assert "unknown op" in response["error"]
            assert response["id"] == "r1"  # errors still echo the request id

            # the connection survived both
            assert client.ping()["ok"] is True

    def test_non_object_request_is_rejected(self, harness):
        with connect(harness) as client:
            client._file.write(b"[1, 2, 3]\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False and "JSON object" in response["error"]

    def test_two_concurrent_clients_share_one_fleet(self, harness):
        with connect(harness) as one, connect(harness) as two:
            one.create_relation("R1", ["A"], [DOMAIN_SPEC])
            clients = harness.server.registry.get("repro_serve_clients")
            assert clients.value == 2

            errors = []

            def hammer(client, low):
                try:
                    for i in range(10):
                        client.ingest("R1", [[(low + i) % 48]])
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(one, 0)),
                threading.Thread(target=hammer, args=(two, 20)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not errors
            assert one.check("stats")["shards"] is not None
            assert two.ping()["ok"] is True


BOUNDED_SPEC = {
    "kind": "join",
    "relations": ["R1", "R2"],
    "predicates": ["R1.A = R2.A"],
    "method": "basic_sketch",
    "budget": 24,
    "options": {"bounds": True},
}


class TestBoundMetadata:
    """The `mode` field and `bound` reply block docs/BOUNDS.md promises."""

    def _setup(self, client):
        client.create_relation("R1", ["A"], [DOMAIN_SPEC])
        client.create_relation("R2", ["A"], [DOMAIN_SPEC])
        client.register("qb", BOUNDED_SPEC)
        for relation in ("R1", "R2"):
            client.ingest(relation, [[v % 48] for v in range(120)])

    def test_bounded_query_replies_carry_bound_metadata(self, harness):
        with connect(harness) as client:
            self._setup(client)
            answer = client.query("qb")
            upper = client.query("qb", mode="upper_bound")
            clamped = client.query("qb", mode="clamped")
            for reply in (answer, upper, clamped):
                assert set(reply["bound"]) == {
                    "upper_bound",
                    "clamped",
                    "clamp_fired",
                }
            assert upper["mode"] == "upper_bound"
            assert upper["value"] == answer["bound"]["upper_bound"]
            assert clamped["value"] == answer["bound"]["clamped"]
            assert clamped["value"] <= upper["value"]
            assert answer["bound"]["clamp_fired"] == (
                answer["value"] > upper["value"]
            )

    def test_unknown_mode_is_rejected_but_survivable(self, harness):
        with connect(harness) as client:
            self._setup(client)
            response = client.request("query", name="qb", mode="sideways")
            assert response["ok"] is False
            assert "unknown estimation mode" in response["error"]
            assert client.ping()["ok"] is True

    def test_mode_on_unbounded_query_is_rejected(self, harness):
        with connect(harness) as client:
            client.create_relation("R1", ["A"], [DOMAIN_SPEC])
            client.create_relation("R2", ["A"], [DOMAIN_SPEC])
            client.register("qj", JOIN_SPEC)
            response = client.request("query", name="qj", mode="upper_bound")
            assert response["ok"] is False
            assert "bounds=True" in response["error"]

    def test_partial_policy_refuses_bound_modes(self, harness):
        with connect(harness) as client:
            self._setup(client)
            response = client.request(
                "query", name="qb", policy="partial", mode="upper_bound"
            )
            assert response["ok"] is False
            assert "no sound bound" in response["error"]


class TestDegradation:
    @pytest.fixture
    def wounded(self):
        """A socket fleet that has permanently lost shard 1."""
        fleet = build_socket_fleet(max_restarts=0)
        for relation in ("R1", "R2"):
            fleet.ingest_batch(relation, [[v % 48] for v in range(60)])
        os.kill(fleet._executor.supervisor.pid(1), signal.SIGKILL)
        harness = ServeHarness(fleet)
        yield harness
        harness.close()
        fleet.close()

    def test_partial_policy_answers_flagged_and_scaled(self, wounded):
        with connect(wounded) as client:
            answer = client.query("q_basic_sketch", policy="partial")
            assert answer["degraded"] is True
            assert answer["missing_shards"] == [1]
            assert answer["surviving_shards"] == 2
            assert answer["total_shards"] == 3
            assert answer["value"] == pytest.approx(answer["raw_value"] * 3 / 2)

    def test_raise_policy_reports_the_outage(self, wounded):
        with connect(wounded) as client:
            response = client.request("query", name="q_basic_sketch")
            assert response["ok"] is False and response["degraded"] is True

    def test_stats_tolerate_the_down_shard(self, wounded):
        with connect(wounded) as client:
            stats = client.stats()
            assert stats["shards"][1] is None
            assert stats["shards"][0] is not None
            assert stats["health"]["up"] == [True, False, True]


class TestBackpressure:
    REQUESTS = 200
    ID_BYTES = 128 * 1024

    def test_slow_client_throttles_dispatch_without_growing_memory(self):
        """A client that stops reading suspends its own request stream.

        200 pipelined pings with 128 KiB ids mean ~25 MiB of responses —
        far beyond the 64 KiB write high-water mark plus kernel buffers.
        While the client refuses to read, the server must stop dispatching
        (drain() suspends that client's loop); once the client drains, all
        responses arrive, in order.
        """
        fleet = ShardedStreamEngine(num_shards=2, seed=3)
        harness = ServeHarness(
            fleet, write_high_water=64 * 1024, read_limit=512 * 1024
        )
        sock = socket.create_connection(harness.address, timeout=60)
        try:
            request = (
                json.dumps({"op": "ping", "id": "x" * self.ID_BYTES}).encode()
                + b"\n"
            )

            def write_all():
                for _ in range(self.REQUESTS):
                    sock.sendall(request)

            writer = threading.Thread(target=write_all, daemon=True)
            writer.start()

            # Let dispatch run until it stalls against the write buffer.
            server = harness.server
            previous = -1
            for _ in range(100):
                current = server.dispatched
                if current == previous and current > 0:
                    break
                previous = current
                time.sleep(0.05)
            assert 0 < server.dispatched < self.REQUESTS

            reader = sock.makefile("rb")
            responses = [json.loads(reader.readline()) for _ in range(self.REQUESTS)]
            writer.join(30)
            assert not writer.is_alive()
            assert server.dispatched == self.REQUESTS
            assert all(r["ok"] and len(r["id"]) == self.ID_BYTES for r in responses)
        finally:
            sock.close()
            harness.close()
            fleet.close()
