"""Wire framing: length-prefixed pickles, EOF, desync, and size guards."""

import pickle
import socket
import struct

import pytest

from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            ("ok", 42),
            {"nested": [1, 2.5, "three", (4,)]},
            ("ingest", ("R1", [[1], [2], [3]], "insert"), {"traceparent": None}),
            b"\x00" * 4096,
        ],
    )
    def test_objects_survive_the_wire(self, pair, obj):
        a, b = pair
        send_frame(a, obj)
        assert recv_frame(b) == obj

    def test_many_frames_stay_in_order(self, pair):
        a, b = pair
        for i in range(50):
            send_frame(a, ("frame", i))
        assert [recv_frame(b) for _ in range(50)] == [("frame", i) for i in range(50)]


class TestFailureModes:
    def test_clean_close_raises_eoferror(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)

    def test_truncated_payload_raises_eoferror(self, pair):
        a, b = pair
        payload = pickle.dumps(("ok", "x" * 100))
        a.sendall(struct.pack(">Q", len(payload)) + payload[: len(payload) // 2])
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)

    def test_oversized_header_raises_protocol_error(self, pair):
        a, b = pair
        a.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="frame"):
            recv_frame(b)

    def test_garbage_payload_raises_protocol_error(self, pair):
        a, b = pair
        garbage = b"this is not a pickle at all"
        a.sendall(struct.pack(">Q", len(garbage)) + garbage)
        with pytest.raises(ProtocolError):
            recv_frame(b)

    def test_oversized_send_is_refused_before_writing(self, pair, monkeypatch):
        import repro.fleet.protocol as protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        a, b = pair
        with pytest.raises(ProtocolError, match="frame"):
            send_frame(a, "x" * 1024)
        # nothing hit the wire: the peer still sees a clean, empty stream
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)
