"""Chaos: SIGKILL a shard worker at any batch boundary, answers unchanged.

The supervised-fleet acceptance property: a worker process killed with
SIGKILL at *any* batch boundary — with or without checkpoints having
been taken — is revived by the supervisor (checkpoint restore + journal
replay) and the fleet's answers for every estimation method are
identical to an uninterrupted serial fleet's.  Exactness, not
approximation: replay reproduces the worker's state bit-for-bit.
"""

import os
import signal

import pytest

from tests.fleet.conftest import assert_fleet_answers_equal, build_socket_fleet

N_BATCHES = 8  # make_batches() default; boundaries cover every one


def kill_worker(fleet, shard):
    os.kill(fleet._executor.supervisor.pid(shard), signal.SIGKILL)


class TestKillAtEveryBatchBoundary:
    @pytest.mark.parametrize("boundary", range(1, N_BATCHES + 1))
    def test_journal_replay_alone_recovers(self, serial_expected, boundary):
        """No checkpoint ever taken: the whole journal replays."""
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        shard = boundary % fleet.num_shards
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number == boundary:
                    kill_worker(fleet, shard)
            assert_fleet_answers_equal(fleet, expected)
            assert fleet._executor.supervisor.restart_count(shard) == 1
        finally:
            fleet.close()

    @pytest.mark.parametrize("boundary", [1, 3, 4, 6, 8])
    def test_checkpoint_restore_plus_suffix_replay_recovers(
        self, serial_expected, boundary, tmp_path
    ):
        """Checkpoints every 2 batches: revive = restore + short replay."""
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        shard = (boundary + 1) % fleet.num_shards
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number % 2 == 0:
                    fleet.save_checkpoints(tmp_path)
                if number == boundary:
                    kill_worker(fleet, shard)
            assert_fleet_answers_equal(fleet, expected)
            supervisor = fleet._executor.supervisor
            assert supervisor.restart_count(shard) == 1
            # checkpoints kept the replay suffix short: after the final
            # save_checkpoint the journal holds at most the post-mark tail
            assert supervisor.journal(shard).pending <= 4
        finally:
            fleet.close()

    def test_two_kills_of_different_shards_both_recover(self, serial_expected):
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number == 2:
                    kill_worker(fleet, 0)
                if number == 4:
                    kill_worker(fleet, 2)
            assert_fleet_answers_equal(fleet, expected)
            supervisor = fleet._executor.supervisor
            assert [supervisor.restart_count(s) for s in range(3)] == [1, 0, 1]
        finally:
            fleet.close()


class TestDegradation:
    def test_exhausted_shard_flags_partial_answers(self, serial_expected):
        """A permanently lost shard degrades answers instead of lying."""
        batches, expected = serial_expected
        fleet = build_socket_fleet(max_restarts=0)
        try:
            for name, rows in batches:
                fleet.ingest_batch(name, rows)
            kill_worker(fleet, 1)
            partial = fleet.answer_partial("q_basic_sketch")
            assert partial.degraded
            assert partial.missing_shards == (1,)
            assert partial.surviving_shards == 2
            # survivor scaling: value = raw * num_shards / survivors
            assert partial.value == pytest.approx(partial.raw_value * 3 / 2)
        finally:
            fleet.close()

    def test_healthy_fleet_partial_answer_is_the_answer(self, serial_expected):
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        try:
            for name, rows in batches:
                fleet.ingest_batch(name, rows)
            partial = fleet.answer_partial("q_basic_sketch")
            assert not partial.degraded
            assert partial.value == pytest.approx(expected["q_basic_sketch"])
        finally:
            fleet.close()


def build_bounded_fleet(executor):
    """A fleet whose join queries all carry degree statistics."""
    from repro.core.normalization import Domain
    from repro.sharding import ShardedStreamEngine
    from tests.sharding.test_shard_recovery import DOMAIN, QUERY

    fleet = ShardedStreamEngine(num_shards=3, seed=11, executor=executor)
    domain = Domain.of_size(DOMAIN)
    fleet.create_relation("R1", ["A"], [domain])
    fleet.create_relation("R2", ["A"], [domain])
    for method in ("cosine", "basic_sketch", "sample"):
        options = {"probability": 0.25} if method == "sample" else {}
        fleet.register_query(
            f"q_{method}", QUERY, method=method, budget=24, bounds=True, **options
        )
    return fleet


class TestBoundsSurviveKills:
    """Revival keeps the *bounds* answer-identical, not just the estimates."""

    @pytest.mark.parametrize("boundary", [2, 5, 8])
    def test_bound_reports_identical_after_sigkill_revival(self, boundary):
        from repro.fleet import SocketExecutor
        from tests.sharding.test_shard_recovery import make_batches

        batches = make_batches()
        control = build_bounded_fleet(executor="serial")
        for name, rows in batches:
            control.ingest_batch(name, rows)
        expected = {
            name: control.bound_report(name) for name in control.query_names()
        }
        control.close()

        fleet = build_bounded_fleet(executor=SocketExecutor())
        shard = boundary % fleet.num_shards
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number == boundary:
                    kill_worker(fleet, shard)
            for name, want in expected.items():
                got = fleet.bound_report(name)
                # degree vectors replay bit-for-bit; cosine's estimate is a
                # reordered float sum, so it matches to tolerance
                assert got["upper_bound"] == want["upper_bound"], name
                assert got["clamp_fired"] == want["clamp_fired"], name
                for key in ("estimate", "clamped"):
                    assert got[key] == pytest.approx(want[key], rel=1e-9), name
            # the first query after the kill detected the dead worker and
            # revived it (checkpoint restore + journal replay)
            assert fleet._executor.supervisor.restart_count(shard) == 1
        finally:
            fleet.close()
