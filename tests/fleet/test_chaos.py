"""Chaos: SIGKILL a shard worker at any batch boundary, answers unchanged.

The supervised-fleet acceptance property: a worker process killed with
SIGKILL at *any* batch boundary — with or without checkpoints having
been taken — is revived by the supervisor (checkpoint restore + journal
replay) and the fleet's answers for every estimation method are
identical to an uninterrupted serial fleet's.  Exactness, not
approximation: replay reproduces the worker's state bit-for-bit.
"""

import os
import signal

import pytest

from tests.fleet.conftest import assert_fleet_answers_equal, build_socket_fleet

N_BATCHES = 8  # make_batches() default; boundaries cover every one


def kill_worker(fleet, shard):
    os.kill(fleet._executor.supervisor.pid(shard), signal.SIGKILL)


class TestKillAtEveryBatchBoundary:
    @pytest.mark.parametrize("boundary", range(1, N_BATCHES + 1))
    def test_journal_replay_alone_recovers(self, serial_expected, boundary):
        """No checkpoint ever taken: the whole journal replays."""
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        shard = boundary % fleet.num_shards
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number == boundary:
                    kill_worker(fleet, shard)
            assert_fleet_answers_equal(fleet, expected)
            assert fleet._executor.supervisor.restart_count(shard) == 1
        finally:
            fleet.close()

    @pytest.mark.parametrize("boundary", [1, 3, 4, 6, 8])
    def test_checkpoint_restore_plus_suffix_replay_recovers(
        self, serial_expected, boundary, tmp_path
    ):
        """Checkpoints every 2 batches: revive = restore + short replay."""
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        shard = (boundary + 1) % fleet.num_shards
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number % 2 == 0:
                    fleet.save_checkpoints(tmp_path)
                if number == boundary:
                    kill_worker(fleet, shard)
            assert_fleet_answers_equal(fleet, expected)
            supervisor = fleet._executor.supervisor
            assert supervisor.restart_count(shard) == 1
            # checkpoints kept the replay suffix short: after the final
            # save_checkpoint the journal holds at most the post-mark tail
            assert supervisor.journal(shard).pending <= 4
        finally:
            fleet.close()

    def test_two_kills_of_different_shards_both_recover(self, serial_expected):
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        try:
            for number, (name, rows) in enumerate(batches, start=1):
                fleet.ingest_batch(name, rows)
                if number == 2:
                    kill_worker(fleet, 0)
                if number == 4:
                    kill_worker(fleet, 2)
            assert_fleet_answers_equal(fleet, expected)
            supervisor = fleet._executor.supervisor
            assert [supervisor.restart_count(s) for s in range(3)] == [1, 0, 1]
        finally:
            fleet.close()


class TestDegradation:
    def test_exhausted_shard_flags_partial_answers(self, serial_expected):
        """A permanently lost shard degrades answers instead of lying."""
        batches, expected = serial_expected
        fleet = build_socket_fleet(max_restarts=0)
        try:
            for name, rows in batches:
                fleet.ingest_batch(name, rows)
            kill_worker(fleet, 1)
            partial = fleet.answer_partial("q_basic_sketch")
            assert partial.degraded
            assert partial.missing_shards == (1,)
            assert partial.surviving_shards == 2
            # survivor scaling: value = raw * num_shards / survivors
            assert partial.value == pytest.approx(partial.raw_value * 3 / 2)
        finally:
            fleet.close()

    def test_healthy_fleet_partial_answer_is_the_answer(self, serial_expected):
        batches, expected = serial_expected
        fleet = build_socket_fleet()
        try:
            for name, rows in batches:
                fleet.ingest_batch(name, rows)
            partial = fleet.answer_partial("q_basic_sketch")
            assert not partial.degraded
            assert partial.value == pytest.approx(expected["q_basic_sketch"])
        finally:
            fleet.close()
