"""ShardSupervisor: spawn, journal, crash revival, heartbeats, metrics."""

import os
import signal
import time

import pytest

from repro.fleet import ShardSupervisor
from repro.sharding.executor import ShardError
from repro.streams.tuples import OpKind

from .conftest import DOMAIN


def make_supervisor(num_shards=2, **options):
    supervisor = ShardSupervisor(**options)
    supervisor.start(num_shards, seed=7)
    return supervisor


def prime_shard(supervisor, shard, rows):
    """Give one worker a relation plus some ingested state."""
    supervisor.command(
        shard, "create_relation", ("R", ["A"], [{"low": 0, "size": DOMAIN}])
    )
    supervisor.command(shard, "ingest", ("R", rows, OpKind.INSERT))


def sigkill(supervisor, shard):
    """Kill one worker outright; its death surfaces as a socket EOF."""
    os.kill(supervisor.pid(shard), signal.SIGKILL)


class TestLifecycle:
    def test_workers_serve_commands_and_stop(self):
        supervisor = make_supervisor(num_shards=3)
        try:
            assert [supervisor.command(s, "ping") for s in range(3)] == [0, 1, 2]
            pids = supervisor.pids()
            assert len(set(pids)) == 3 and all(pids)
        finally:
            supervisor.stop()
        supervisor.stop()  # idempotent

    def test_worker_errors_surface_as_shard_errors(self):
        supervisor = make_supervisor()
        try:
            with pytest.raises(ShardError, match="shard 1"):
                supervisor.command(1, "relation_count", ("missing",))
            # the worker survived the application error
            assert supervisor.command(1, "ping") == 1
            assert supervisor.restart_count(1) == 0
        finally:
            supervisor.stop()


class TestJournal:
    def test_mutating_commands_are_journaled_reads_are_not(self):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[1], [2]])
            supervisor.command(0, "relation_count", ("R",))
            journal = supervisor.journal(0)
            assert [e.method for e in journal.all_entries()] == [
                "create_relation",
                "ingest",
            ]
        finally:
            supervisor.stop()

    def test_checkpoint_marks_and_truncates_the_journal(self, tmp_path):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[1], [2]])
            supervisor.command(0, "save_checkpoint", (str(tmp_path),))
            journal = supervisor.journal(0)
            assert journal.has_mark
            assert journal.pending == 0
            assert len(journal) == 0  # covered prefix dropped
            supervisor.command(0, "ingest", ("R", [[3]], OpKind.INSERT))
            assert journal.pending == 1
        finally:
            supervisor.stop()


class TestCrashRecovery:
    def test_sigkill_mid_fleet_revives_with_identical_state(self):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[v % DOMAIN] for v in range(40)])
            before = supervisor.command(0, "relation_count", ("R",))
            sigkill(supervisor, 0)
            old_pid = supervisor.pid(0)
            # next command detects the death, revives, replays, retries
            assert supervisor.command(0, "relation_count", ("R",)) == before == 40
            assert supervisor.restart_count(0) == 1
            assert supervisor.pid(0) != old_pid
            assert supervisor.shard_up(0)
        finally:
            supervisor.stop()

    def test_revive_restores_checkpoint_then_replays_suffix(self, tmp_path):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[1], [2]])
            supervisor.command(0, "save_checkpoint", (str(tmp_path),))
            supervisor.command(0, "ingest", ("R", [[3], [4], [5]], OpKind.INSERT))
            sigkill(supervisor, 0)
            assert supervisor.command(0, "relation_count", ("R",)) == 5
            # replay did not double-apply the checkpointed prefix
            assert supervisor.restart_count(0) == 1
        finally:
            supervisor.stop()

    def test_journaled_command_lost_in_flight_is_replayed_not_resent(self):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[1]])
            sigkill(supervisor, 0)
            # the dying dispatch returns None; replay already applied it
            assert supervisor.command(0, "ingest", ("R", [[2]], OpKind.INSERT)) is None
            assert supervisor.command(0, "relation_count", ("R",)) == 2
        finally:
            supervisor.stop()

    def test_restart_disabled_marks_shard_down(self):
        supervisor = make_supervisor(restart=False)
        try:
            prime_shard(supervisor, 0, [[1]])
            sigkill(supervisor, 0)
            with pytest.raises(ShardError, match="restart is disabled"):
                supervisor.command(0, "ping")
            assert not supervisor.shard_up(0)
            with pytest.raises(ShardError, match="worker is down"):
                supervisor.command(0, "ping")
            # the other shard is untouched
            assert supervisor.command(1, "ping") == 1
        finally:
            supervisor.stop()

    def test_max_restarts_exhaustion_marks_shard_down(self):
        supervisor = make_supervisor(max_restarts=1)
        try:
            prime_shard(supervisor, 0, [[1]])
            sigkill(supervisor, 0)
            supervisor.command(0, "ping")  # first revive succeeds
            sigkill(supervisor, 0)
            with pytest.raises(ShardError, match="after 1 restarts"):
                supervisor.command(0, "ping")
            assert not supervisor.shard_up(0)
        finally:
            supervisor.stop()

    def test_restart_metrics_and_health_snapshot(self):
        supervisor = make_supervisor()
        try:
            prime_shard(supervisor, 0, [[1]])
            sigkill(supervisor, 0)
            supervisor.command(0, "ping")
            counts = supervisor.registry.get(
                "repro_fleet_restarts_total"
            ).as_value_dict()
            assert counts["0"] == 1
            up = supervisor.registry.get("repro_fleet_shard_up").as_value_dict()
            assert up["0"] == 1 and up["1"] == 1
            health = supervisor.health()
            assert health["up"] == [True, True]
            assert health["restarts"] == [1, 0]
        finally:
            supervisor.stop()


class TestHeartbeat:
    def test_idle_crash_is_revived_without_command_traffic(self):
        supervisor = make_supervisor(
            num_shards=1, heartbeat_interval=0.05, heartbeat_misses=1
        )
        try:
            prime_shard(supervisor, 0, [[1], [2]])
            sigkill(supervisor, 0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if supervisor.restart_count(0) >= 1:
                    break
                time.sleep(0.02)
            assert supervisor.restart_count(0) >= 1
            assert supervisor.command(0, "relation_count", ("R",)) == 2
            misses = supervisor.registry.get(
                "repro_fleet_heartbeat_misses_total"
            ).as_value_dict()
            assert misses["0"] >= 1
        finally:
            supervisor.stop()

    def test_options_validated(self):
        with pytest.raises(ValueError, match="max_restarts"):
            ShardSupervisor(max_restarts=-1)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ShardSupervisor(heartbeat_interval=0)
        with pytest.raises(ValueError, match="heartbeat_misses"):
            ShardSupervisor(heartbeat_misses=0)
