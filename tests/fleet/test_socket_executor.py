"""SocketExecutor: the ShardExecutor seam over supervised worker processes."""

import numpy as np
import pytest

from repro.fleet import ShardSupervisor, SocketExecutor
from repro.sharding.executor import ShardError, resolve_executor

from .conftest import (
    assert_fleet_answers_equal,
    build_fleet,
    build_socket_fleet,
    make_batches,
)


class TestResolution:
    def test_resolve_executor_knows_socket(self):
        executor = resolve_executor("socket")
        assert isinstance(executor, SocketExecutor)

    def test_unknown_executor_names_socket_in_the_error(self):
        with pytest.raises(ValueError, match="socket"):
            resolve_executor("carrier-pigeon")

    def test_engine_accepts_a_configured_instance(self):
        supervisor = ShardSupervisor(max_restarts=2)
        fleet = build_socket_fleet(supervisor=supervisor)
        try:
            assert fleet._executor.supervisor is supervisor
        finally:
            fleet.close()


class TestExecutorSurface:
    @pytest.fixture
    def executor(self):
        executor = SocketExecutor()
        executor.start(num_shards=2, seed=3)
        yield executor
        executor.close()

    def test_call_reaches_the_named_shard(self, executor):
        assert executor.call(0, "ping") == 0
        assert executor.call(1, "ping") == 1

    def test_broadcast_and_scatter(self, executor):
        assert executor.broadcast("ping") == [0, 1]
        assert executor.scatter("ping", [((), {}), None]) == [0, None]

    def test_worker_exceptions_arrive_as_shard_errors(self, executor):
        with pytest.raises(ShardError, match="shard 1"):
            executor.call(1, "relation_count", "missing")

    def test_close_is_idempotent(self):
        executor = SocketExecutor()
        executor.start(num_shards=1, seed=3)
        executor.close()
        executor.close()


class TestEngineParity:
    def test_socket_fleet_matches_serial_fleet_exactly(self):
        batches = make_batches(n_batches=6)
        control = build_fleet()
        fleet = build_socket_fleet()
        try:
            for name, rows in batches:
                control.ingest_batch(name, rows)
                fleet.ingest_batch(name, rows)
            assert_fleet_answers_equal(fleet, control.answers())
        finally:
            fleet.close()
            control.close()

    def test_checkpoint_roundtrip_over_sockets(self, tmp_path):
        from repro.sharding import ShardedStreamEngine

        batches = make_batches(n_batches=6)
        fleet = build_socket_fleet()
        restored = None
        try:
            for name, rows in batches[:4]:
                fleet.ingest_batch(name, rows)
            fleet.save_checkpoints(tmp_path)

            restored = ShardedStreamEngine.restore(tmp_path, executor="socket")
            assert_fleet_answers_equal(restored, fleet.answers())

            for name, rows in batches[4:]:
                fleet.ingest_batch(name, rows)
                restored.ingest_batch(name, rows)
            assert_fleet_answers_equal(restored, fleet.answers())
        finally:
            if restored is not None:
                restored.close()
            fleet.close()

    def test_fleet_metrics_include_supervisor_families(self):
        fleet = build_socket_fleet()
        try:
            rng = np.random.default_rng(0)
            fleet.ingest_batch("R1", rng.integers(0, 48, size=(60, 1)))
            merged = fleet.fleet_metrics()
            assert merged.get("repro_fleet_shard_up") is not None
        finally:
            fleet.close()
