"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second, independent deterministic generator."""
    return np.random.default_rng(67890)
