"""Exact multi-join evaluation over frequency tensors — the ground truth.

The experiments measure relative error against the *actual* join size
(section 5.1); this module computes it by contracting the relations' joint
count tensors with a generated ``einsum``.  For the paper's chain query

    J = sum_{a,b,c} c1(a) * c2(a,b) * c3(b,c) * c4(c)

joined axes share an einsum symbol; unjoined axes get a fresh symbol each
(einsum then sums them out, i.e. marginalizes).
"""

from __future__ import annotations

import string
from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

Slot = tuple[int, int]


def exact_join_size(counts_a: NDArray[Any], counts_b: NDArray[Any]) -> float:
    """Exact single equi-join size ``sum_v c_a(v) c_b(v)`` (paper Eq. 4.1)."""
    counts_a = np.asarray(counts_a, dtype=float)
    counts_b = np.asarray(counts_b, dtype=float)
    if counts_a.ndim != 1 or counts_b.ndim != 1:
        raise ValueError("exact_join_size expects 1-d frequency vectors")
    if counts_a.shape != counts_b.shape:
        raise ValueError("frequency vectors must be over the same unified domain")
    return float(np.dot(counts_a, counts_b))


def exact_self_join_size(counts: NDArray[Any]) -> float:
    """Exact self-join size (second frequency moment)."""
    counts = np.asarray(counts, dtype=float)
    return float(np.dot(counts.ravel(), counts.ravel()))


def exact_multijoin_size(
    count_tensors: Sequence[NDArray[Any]],
    slot_pairs: Sequence[tuple[Slot, Slot]],
) -> float:
    """Exact size of a multi-equi-join COUNT query.

    ``count_tensors[i]`` is relation i's joint frequency tensor (one axis
    per attribute); ``slot_pairs`` are the predicates as
    ``((relation, axis), (relation, axis))`` pairs, as produced by
    :meth:`repro.streams.queries.JoinQuery.slot_pairs`.
    """
    tensors = [np.asarray(t, dtype=float) for t in count_tensors]
    if not tensors:
        raise ValueError("at least one relation is required")

    symbols = iter(string.ascii_letters)
    slot_symbol: dict[Slot, str] = {}
    seen: set[Slot] = set()
    for (a, b) in slot_pairs:
        for rel, axis in (a, b):
            if not 0 <= rel < len(tensors):
                raise ValueError(f"predicate references relation {rel} of {len(tensors)}")
            if not 0 <= axis < tensors[rel].ndim:
                raise ValueError(f"predicate references axis {axis} of relation {rel}")
            if (rel, axis) in seen:
                raise ValueError(f"attribute slot {(rel, axis)} used by two predicates")
            seen.add((rel, axis))
        if tensors[a[0]].shape[a[1]] != tensors[b[0]].shape[b[1]]:
            raise ValueError(
                f"joined axes {a} and {b} have different (un-unified) domain sizes"
            )
        sym = next(symbols)
        slot_symbol[a] = sym
        slot_symbol[b] = sym

    subscripts = []
    for rel, tensor in enumerate(tensors):
        script = ""
        for axis in range(tensor.ndim):
            slot = (rel, axis)
            script += slot_symbol.get(slot) or next(symbols)
        subscripts.append(script)
    expression = ",".join(subscripts) + "->"
    return float(np.einsum(expression, *tensors))


def relative_error(actual: float, estimate: float) -> float:
    """The paper's error measure ``|Act - Est| / Act`` (section 5.1)."""
    if actual <= 0:
        raise ValueError("relative error is undefined for a non-positive actual size")
    return abs(actual - estimate) / actual
