"""Stream substrate: relations, operations, queries, exact ground truth,
and the continuous query engine (the paper's processing model)."""

from .engine import ContinuousQueryEngine, StreamEngine, embed_counts_tensor
from .io import format_op_line, parse_op_line, read_ops, replay_into, write_ops
from .stats import EngineStats
from .exact import (
    exact_join_size,
    exact_multijoin_size,
    exact_self_join_size,
    relative_error,
)
from .queries import AttributeRef, EquiJoinPredicate, JoinQuery
from .relation import StreamObserver, StreamRelation
from .tuples import OpKind, StreamOp, deletes, inserts, interleave

__all__ = [
    "ContinuousQueryEngine",
    "StreamEngine",
    "EngineStats",
    "embed_counts_tensor",
    "format_op_line",
    "parse_op_line",
    "read_ops",
    "replay_into",
    "write_ops",
    "exact_join_size",
    "exact_multijoin_size",
    "exact_self_join_size",
    "relative_error",
    "AttributeRef",
    "EquiJoinPredicate",
    "JoinQuery",
    "StreamObserver",
    "StreamRelation",
    "OpKind",
    "StreamOp",
    "deletes",
    "inserts",
    "interleave",
]
