"""The multi-equi-join COUNT query model (section 4 of the paper).

A query of the paper's shape

    SELECT COUNT(*) FROM R1, R2, ..., Rk
    WHERE Ri.A = Rj.B AND Rk.C = Rl.D AND ...

is represented by a :class:`JoinQuery`: an ordered list of relation names
plus equi-join predicates between attribute references.  Each attribute
slot may appear in at most one predicate (the chain/star shapes of the
paper's experiments satisfy this); unreferenced attributes are implicitly
marginalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.normalization import Domain, unify_domains


@dataclass(frozen=True, order=True)
class AttributeRef:
    """A reference to ``relation.attribute``."""

    relation: str
    attribute: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.relation}.{self.attribute}"


@dataclass(frozen=True)
class EquiJoinPredicate:
    """An equi-join condition between two attribute references."""

    left: AttributeRef
    right: AttributeRef

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(f"predicate joins {self.left} with itself")

    def refs(self) -> tuple[AttributeRef, AttributeRef]:
        return (self.left, self.right)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class JoinQuery:
    """``SELECT COUNT(*)`` over equi-joined stream relations."""

    relations: tuple[str, ...]
    predicates: tuple[EquiJoinPredicate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.relations)) != len(self.relations):
            raise ValueError("relation names in a query must be distinct")
        if len(self.relations) < 1:
            raise ValueError("a query needs at least one relation")
        names = set(self.relations)
        seen: set[AttributeRef] = set()
        for pred in self.predicates:
            for ref in pred.refs():
                if ref.relation not in names:
                    raise ValueError(f"{ref} references a relation not in the FROM list")
                if ref in seen:
                    raise ValueError(f"attribute {ref} appears in more than one predicate")
                seen.add(ref)

    @classmethod
    def parse(cls, relations: Sequence[str], conditions: Sequence[str]) -> "JoinQuery":
        """Build a query from ``"R1.A = R2.B"``-style condition strings."""
        predicates = []
        for cond in conditions:
            try:
                left_s, right_s = (side.strip() for side in cond.split("="))
                lrel, lattr = left_s.split(".")
                rrel, rattr = right_s.split(".")
            except ValueError as exc:
                raise ValueError(f"cannot parse join condition {cond!r}") from exc
            predicates.append(
                EquiJoinPredicate(AttributeRef(lrel, lattr), AttributeRef(rrel, rattr))
            )
        return cls(tuple(relations), tuple(predicates))

    @classmethod
    def from_sql(cls, sql: str) -> "JoinQuery":
        """Parse the paper's query shape from SQL text (section 4.1).

        Accepts exactly the form the paper works with::

            SELECT COUNT(*) FROM R1, R2, R3
            WHERE R1.A = R2.A AND R2.B = R3.B

        Keywords are case-insensitive; relation/attribute names are
        case-sensitive.  A query without a WHERE clause is the plain cross
        product (zero predicates).  Anything outside this shape (other
        select lists, non-equi predicates, subqueries) is rejected with a
        pointer to the richer programmatic API.
        """
        import re

        text = " ".join(sql.split())
        pattern = re.compile(
            r"^\s*select\s+count\s*\(\s*\*\s*\)\s+from\s+(?P<from>.+?)"
            r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
            re.IGNORECASE,
        )
        match = pattern.match(text)
        if not match:
            raise ValueError(
                "only 'SELECT COUNT(*) FROM ... [WHERE ...]' queries are "
                "supported (the paper's query shape); build a JoinQuery "
                "directly for anything else"
            )
        relations = [name.strip() for name in match.group("from").split(",")]
        if any(not re.fullmatch(r"\w+", name) for name in relations):
            raise ValueError(f"malformed FROM list: {match.group('from')!r}")
        where = match.group("where")
        conditions: list[str] = []
        if where:
            conditions = re.split(r"\s+and\s+", where, flags=re.IGNORECASE)
            for cond in conditions:
                if not re.fullmatch(r"\s*\w+\.\w+\s*=\s*\w+\.\w+\s*", cond):
                    raise ValueError(
                        f"unsupported predicate {cond.strip()!r}: only "
                        "equi-joins 'R.A = S.B' are supported"
                    )
        return cls.parse(relations, conditions)

    @classmethod
    def chain(cls, relation_names: Sequence[str], attribute_names: Sequence[str]) -> "JoinQuery":
        """The paper's chain query over k relations and k-1 join attributes.

        Relation ``i`` joins attribute ``attribute_names[i]`` with relation
        ``i+1`` — e.g. ``chain(["R1","R2","R3","R4"], ["A","B","C"])`` is the
        section 5.1 three-join query.
        """
        if len(attribute_names) != len(relation_names) - 1:
            raise ValueError("a chain of k relations needs k-1 join attributes")
        predicates = tuple(
            EquiJoinPredicate(
                AttributeRef(relation_names[i], attribute_names[i]),
                AttributeRef(relation_names[i + 1], attribute_names[i]),
            )
            for i in range(len(relation_names) - 1)
        )
        return cls(tuple(relation_names), predicates)

    @property
    def num_joins(self) -> int:
        """Number of equi-join predicates (the paper's "k-join query")."""
        return len(self.predicates)

    def validate_against(self, schemas: Mapping[str, Sequence[str]]) -> None:
        """Check every referenced relation/attribute exists in the schemas."""
        for name in self.relations:
            if name not in schemas:
                raise ValueError(f"relation {name!r} is not registered")
        for pred in self.predicates:
            for ref in pred.refs():
                if ref.attribute not in schemas[ref.relation]:
                    raise ValueError(f"{ref} does not exist")

    def slot_pairs(
        self, schemas: Mapping[str, Sequence[str]]
    ) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Predicates as ``((relation_pos, axis), (relation_pos, axis))`` pairs.

        This is the low-level form consumed by
        :func:`repro.core.join.estimate_multijoin_size` and the exact
        evaluator; relation positions follow the query's FROM order.
        """
        self.validate_against(schemas)
        rel_pos = {name: i for i, name in enumerate(self.relations)}
        pairs = []
        for pred in self.predicates:
            slots = []
            for ref in pred.refs():
                axis = list(schemas[ref.relation]).index(ref.attribute)
                slots.append((rel_pos[ref.relation], axis))
            pairs.append((slots[0], slots[1]))
        return pairs

    def unified_domains(
        self,
        schemas: Mapping[str, Sequence[str]],
        domains: Mapping[str, Sequence[Domain]],
    ) -> dict[str, list[Domain]]:
        """Per-relation attribute domains after section 4.1 unification.

        Joined attribute pairs are widened to their common domain; other
        attributes keep their original domains.
        """
        unified: dict[str, list[Domain]] = {
            name: list(domains[name]) for name in self.relations
        }
        for (rel_a, ax_a), (rel_b, ax_b) in self.slot_pairs(schemas):
            name_a, name_b = self.relations[rel_a], self.relations[rel_b]
            common = unify_domains(unified[name_a][ax_a], unified[name_b][ax_b])
            unified[name_a][ax_a] = common
            unified[name_b][ax_b] = common
        return unified

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        conditions = " and ".join(str(p) for p in self.predicates) or "true"
        return f"SELECT COUNT(*) FROM {', '.join(self.relations)} WHERE {conditions}"
