"""Stream elements: timestamped tuple arrivals and deletions.

A data stream (section 1) is an unbounded, one-pass sequence of operations;
everything downstream of this module consumes :class:`StreamOp` values so
insertion-only and insert/delete workloads share one code path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np
from numpy.typing import NDArray


class OpKind(enum.Enum):
    """Whether a stream element adds or removes a tuple."""

    INSERT = 1
    DELETE = -1


@dataclass(frozen=True)
class StreamOp:
    """One stream element: a tuple of raw attribute values plus its kind."""

    values: tuple[Any, ...]
    kind: OpKind = OpKind.INSERT

    @property
    def weight(self) -> int:
        """+1 for insertions, -1 for deletions (linear-synopsis convention)."""
        return self.kind.value


def inserts(rows: Iterable[Sequence[Any]] | NDArray[Any]) -> Iterator[StreamOp]:
    """Wrap raw tuples as insertion operations."""
    for row in rows:
        if np.isscalar(row):
            yield StreamOp((row,), OpKind.INSERT)
        else:
            yield StreamOp(tuple(row), OpKind.INSERT)


def deletes(rows: Iterable[Sequence[Any]] | NDArray[Any]) -> Iterator[StreamOp]:
    """Wrap raw tuples as deletion operations."""
    for row in rows:
        if np.isscalar(row):
            yield StreamOp((row,), OpKind.DELETE)
        else:
            yield StreamOp(tuple(row), OpKind.DELETE)


def interleave(streams: Sequence[Iterable[StreamOp]], seed: int | None = None) -> Iterator[
    tuple[int, StreamOp]
]:
    """Randomly interleave several streams, yielding ``(stream_id, op)``.

    Models the paper's setting of several concurrent flows with "no control
    over the order in which they arrive".  Exhausted streams drop out; the
    interleaving is uniform over the remaining ones.
    """
    rng = np.random.default_rng(seed)
    iterators: list[tuple[int, Iterator[StreamOp]]] = [
        (i, iter(s)) for i, s in enumerate(streams)
    ]
    while iterators:
        pick = int(rng.integers(0, len(iterators)))
        stream_id, it = iterators[pick]
        try:
            yield stream_id, next(it)
        except StopIteration:
            iterators.pop(pick)
