"""Engine instrumentation: a compatibility facade over the metrics registry.

:class:`EngineStats` keeps the PR-1 reading surface — ``tuples_ingested``,
``observer_time`` and friends, ``as_dict()`` / ``summary()`` / ``reset()``
— but no longer stores anything itself: every quantity lives in a
:class:`repro.obs.metrics.MetricsRegistry` as a ``Counter`` /
``LatencyHistogram``, labelled by relation, estimation method, and query.
The same numbers are therefore visible three ways at once: through this
facade (as before), through ``registry.snapshot()`` (JSON), and through
:func:`repro.obs.exporters.prometheus_text` (a ``/metrics`` payload).

Recording methods are called from the relation / engine hot paths; they
go through pre-resolved metric handles (label children cached per key),
so recording costs about what the previous ad-hoc dict updates did.
Timing uses ``time.perf_counter`` and is attributed per *stats key* — the
owning query's estimation method for engine-attached observers, the
observer's class name otherwise.  All counters are monotonic between
:meth:`EngineStats.reset` calls.
"""

from __future__ import annotations

from typing import Any

from ..obs.metrics import Counter, LatencyHistogram, MetricsRegistry
from .tuples import OpKind

__all__ = ["EngineStats"]


class EngineStats:
    """Counters for one engine's ingest and estimation activity.

    Constructed over an optional shared ``registry`` (a fresh private one
    by default, so standalone ``EngineStats()`` keeps working).  Metric
    names are stable public API: ``repro_ingest_*``, ``repro_relation_*``,
    ``repro_observer_*``, ``repro_estimate_*``, ``repro_query_*``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        shard: str | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: When this engine is one shard of a fleet, every labelled family
        #: below grows a trailing ``shard`` label, so per-shard series stay
        #: distinct after :meth:`repro.obs.metrics.MetricsRegistry.merge`
        #: folds the fleet's registries together.  The reading surface
        #: (``relation_ops`` etc.) keys on the first label either way.
        self.shard = shard
        extra = ("shard",) if shard is not None else ()
        r = self.registry
        self._ingested = r.counter(
            "repro_ingest_ops_total",
            "Total operations applied (insertions + deletions, any path).",
        )
        self._deleted = r.counter(
            "repro_ingest_deletes_total", "Deletions among the ingested operations."
        )
        self._per_tuple = r.counter(
            "repro_ingest_per_tuple_ops_total",
            "Operations that went through the per-tuple process path.",
        )
        self._batches = r.counter(
            "repro_ingest_batches_total",
            "Vectorized batch applications (one per same-kind run).",
        )
        self._batched = r.counter(
            "repro_ingest_batched_ops_total", "Operations that arrived inside batches."
        )
        self._relation_ops = r.counter(
            "repro_relation_ops_total",
            "Operations applied, per relation.",
            labelnames=("relation", *extra),
        )
        self._obs_time = r.counter(
            "repro_observer_seconds_total",
            "Seconds spent inside observer updates, per stats key.",
            labelnames=("method", *extra),
        )
        self._obs_ops = r.counter(
            "repro_observer_ops_total",
            "Operations seen by observers, per stats key.",
            labelnames=("method", *extra),
        )
        self._estimate_hist = r.histogram(
            "repro_estimate_latency_seconds",
            "Latency of answer() / answers() estimate evaluations.",
        )
        self._query_estimates = r.counter(
            "repro_query_estimates_total",
            "Estimate evaluations served, per query.",
            labelnames=("query", *extra),
        )
        self._query_seconds = r.counter(
            "repro_query_estimate_seconds_total",
            "Seconds spent evaluating estimates, per query.",
            labelnames=("query", *extra),
        )
        # Label children resolved once per key, then hit as plain attributes.
        self._observer_cache: dict[str, tuple[Counter, Counter]] = {}
        self._relation_cache: dict[str, Counter] = {}
        self._query_cache: dict[str, tuple[Counter, Counter]] = {}

    def _labels(self, key: str) -> tuple[str, ...]:
        """The full label tuple for one key (appends the shard, if any)."""
        return (key,) if self.shard is None else (key, self.shard)

    # ------------------------------------------------------------------ #
    # recording (called from the relation / engine hot paths)
    # ------------------------------------------------------------------ #

    def record_ops(
        self, count: int, kind: OpKind, batched: bool, relation: str = ""
    ) -> None:
        """Record ``count`` same-kind operations entering a relation."""
        self._ingested.inc(count)
        if kind is OpKind.DELETE:
            self._deleted.inc(count)
        if batched:
            self._batches.inc()
            self._batched.inc(count)
        else:
            self._per_tuple.inc(count)
        if relation:
            child = self._relation_cache.get(relation)
            if child is None:
                child = self._relation_ops.labels(*self._labels(relation))
                self._relation_cache[relation] = child
            child.inc(count)

    def record_observer(self, key: str, seconds: float, count: int) -> None:
        """Record one observer update covering ``count`` operations."""
        pair = self._observer_cache.get(key)
        if pair is None:
            labels = self._labels(key)
            pair = (self._obs_time.labels(*labels), self._obs_ops.labels(*labels))
            self._observer_cache[key] = pair
        pair[0].inc(seconds)
        pair[1].inc(count)

    def record_estimate(self, seconds: float, query: str = "") -> None:
        """Record one estimate evaluation (optionally attributed to a query)."""
        self._estimate_hist.observe(seconds)
        if query:
            pair = self._query_cache.get(query)
            if pair is None:
                labels = self._labels(query)
                pair = (
                    self._query_estimates.labels(*labels),
                    self._query_seconds.labels(*labels),
                )
                self._query_cache[query] = pair
            pair[0].inc()
            pair[1].inc(seconds)

    # ------------------------------------------------------------------ #
    # reading (the PR-1 compatibility surface)
    # ------------------------------------------------------------------ #

    @property
    def tuples_ingested(self) -> int:
        """Total operations applied (insertions + deletions, any path)."""
        return int(self._ingested.value)

    @property
    def tuples_deleted(self) -> int:
        """Deletions among :attr:`tuples_ingested`."""
        return int(self._deleted.value)

    @property
    def per_tuple_ops(self) -> int:
        """Operations that went through the per-tuple ``process`` path."""
        return int(self._per_tuple.value)

    @property
    def batches(self) -> int:
        """Vectorized batch applications (one per same-kind run)."""
        return int(self._batches.value)

    @property
    def batched_ops(self) -> int:
        """Operations that arrived inside batches."""
        return int(self._batched.value)

    @property
    def observer_time(self) -> dict[str, float]:
        """Seconds spent inside observer updates, per stats key."""
        return {key[0]: child.value for key, child in self._obs_time.items()}

    @property
    def observer_ops(self) -> dict[str, int]:
        """Operations seen by observers, per stats key."""
        return {key[0]: int(child.value) for key, child in self._obs_ops.items()}

    @property
    def relation_ops(self) -> dict[str, int]:
        """Operations applied, per relation name."""
        return {key[0]: int(child.value) for key, child in self._relation_ops.items()}

    @property
    def estimate_calls(self) -> int:
        """``answer()`` / ``answers()`` estimate evaluations."""
        return self._estimate_hist.count

    @property
    def estimate_time(self) -> float:
        """Seconds spent evaluating estimates."""
        return self._estimate_hist.sum

    @property
    def estimate_latency_histogram(self) -> LatencyHistogram:
        """The estimate-latency distribution (count/sum/percentiles)."""
        return self._estimate_hist

    @property
    def query_estimates(self) -> dict[str, int]:
        """Estimate evaluations served, per query name."""
        return {key[0]: int(child.value) for key, child in self._query_estimates.items()}

    def as_dict(self) -> dict[str, Any]:
        """Snapshot as plain Python types (JSON-compatible)."""
        observer_time = self.observer_time
        observer_ops = self.observer_ops
        estimate_calls = self.estimate_calls
        out = {
            "tuples_ingested": self.tuples_ingested,
            "tuples_deleted": self.tuples_deleted,
            "per_tuple_ops": self.per_tuple_ops,
            "batches": self.batches,
            "batched_ops": self.batched_ops,
            "observer_time": observer_time,
            "observer_ops": observer_ops,
            "estimate_calls": estimate_calls,
            "estimate_time": self.estimate_time,
            "mean_estimate_latency": (
                self.estimate_time / estimate_calls if estimate_calls else None
            ),
            "ops_per_sec": {
                key: (observer_ops.get(key, 0) / seconds if seconds > 0 else None)
                for key, seconds in observer_time.items()
            },
        }
        if self.relation_ops:
            out["relation_ops"] = self.relation_ops
        return out

    def summary(self) -> str:
        """Human-readable multi-line report."""
        observer_time = self.observer_time
        observer_ops = self.observer_ops
        lines = [
            "engine stats:",
            f"  tuples ingested   {self.tuples_ingested:>12,}"
            f"  (deletions {self.tuples_deleted:,})",
            f"  per-tuple ops     {self.per_tuple_ops:>12,}",
            f"  batched ops       {self.batched_ops:>12,}"
            f"  in {self.batches:,} batches",
            f"  estimate calls    {self.estimate_calls:>12,}"
            f"  totalling {self.estimate_time * 1e3:,.2f} ms",
        ]
        if observer_time:
            lines.append("  observer update time by method:")
            width = max(len(k) for k in observer_time)
            for key in sorted(observer_time):
                seconds = observer_time[key]
                ops = observer_ops.get(key, 0)
                rate = (
                    f"{ops / seconds:>14,.0f} ops/s"
                    if seconds > 0
                    else f"{'n/a':>14} ops/s"
                )
                lines.append(
                    f"    {key:<{width}}  {seconds * 1e3:>10,.2f} ms"
                    f"  over {ops:>10,} ops {rate}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter (object and metric identities are preserved).

        Only the metrics this facade owns are reset — other users of a
        shared registry (e.g. an accuracy tracker) keep their state.
        """
        for metric in (
            self._ingested,
            self._deleted,
            self._per_tuple,
            self._batches,
            self._batched,
            self._relation_ops,
            self._obs_time,
            self._obs_ops,
            self._estimate_hist,
            self._query_estimates,
            self._query_seconds,
        ):
            metric.reset()
        # Family resets drop their children; the cached handles went with them.
        self._observer_cache.clear()
        self._relation_cache.clear()
        self._query_cache.clear()
