"""Lightweight engine instrumentation: ingest and estimation counters.

The ROADMAP north-star is throughput, and a throughput claim needs an
in-repo measurement surface: :class:`EngineStats` is a plain counters
object shared between a :class:`~repro.streams.engine.ContinuousQueryEngine`
and its relations.  It tracks how many tuples flowed (and through which
path — per-tuple or batched), how much wall-clock time each estimation
method's observers spent digesting them, and how many ``answer()`` calls
were served at what latency.  ``repro-experiments stats`` prints it after
a demo ingest/answer cycle; ``StreamEngine.stats()`` exposes it live.

All counters are monotonic between :meth:`EngineStats.reset` calls; timing
uses ``time.perf_counter`` and is attributed per *stats key* — the owning
query's estimation method for engine-attached observers, the observer's
class name otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tuples import OpKind


@dataclass
class EngineStats:
    """Counters for one engine's ingest and estimation activity."""

    #: Total operations applied (insertions + deletions, any path).
    tuples_ingested: int = 0
    #: Deletions among :attr:`tuples_ingested`.
    tuples_deleted: int = 0
    #: Operations that went through the per-tuple ``process`` path.
    per_tuple_ops: int = 0
    #: Vectorized batch applications (one per same-kind run).
    batches: int = 0
    #: Operations that arrived inside batches.
    batched_ops: int = 0
    #: Seconds spent inside observer updates, per stats key.
    observer_time: dict[str, float] = field(default_factory=dict)
    #: Operations seen by observers, per stats key.
    observer_ops: dict[str, int] = field(default_factory=dict)
    #: ``answer()`` / ``answers()`` estimate evaluations.
    estimate_calls: int = 0
    #: Seconds spent evaluating estimates.
    estimate_time: float = 0.0

    # ------------------------------------------------------------------ #
    # recording (called from the relation / engine hot paths)
    # ------------------------------------------------------------------ #

    def record_ops(self, count: int, kind: OpKind, batched: bool) -> None:
        """Record ``count`` same-kind operations entering a relation."""
        self.tuples_ingested += count
        if kind is OpKind.DELETE:
            self.tuples_deleted += count
        if batched:
            self.batches += 1
            self.batched_ops += count
        else:
            self.per_tuple_ops += count

    def record_observer(self, key: str, seconds: float, count: int) -> None:
        """Record one observer update covering ``count`` operations."""
        self.observer_time[key] = self.observer_time.get(key, 0.0) + seconds
        self.observer_ops[key] = self.observer_ops.get(key, 0) + count

    def record_estimate(self, seconds: float) -> None:
        """Record one estimate evaluation."""
        self.estimate_calls += 1
        self.estimate_time += seconds

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """Snapshot as plain Python types (JSON-compatible)."""
        return {
            "tuples_ingested": self.tuples_ingested,
            "tuples_deleted": self.tuples_deleted,
            "per_tuple_ops": self.per_tuple_ops,
            "batches": self.batches,
            "batched_ops": self.batched_ops,
            "observer_time": dict(self.observer_time),
            "observer_ops": dict(self.observer_ops),
            "estimate_calls": self.estimate_calls,
            "estimate_time": self.estimate_time,
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            "engine stats:",
            f"  tuples ingested   {self.tuples_ingested:>12,}"
            f"  (deletions {self.tuples_deleted:,})",
            f"  per-tuple ops     {self.per_tuple_ops:>12,}",
            f"  batched ops       {self.batched_ops:>12,}"
            f"  in {self.batches:,} batches",
            f"  estimate calls    {self.estimate_calls:>12,}"
            f"  totalling {self.estimate_time * 1e3:,.2f} ms",
        ]
        if self.observer_time:
            lines.append("  observer update time by method:")
            width = max(len(k) for k in self.observer_time)
            for key in sorted(self.observer_time):
                seconds = self.observer_time[key]
                ops = self.observer_ops.get(key, 0)
                rate = f"{ops / seconds:>14,.0f} ops/s" if seconds > 0 else " " * 20
                lines.append(
                    f"    {key:<{width}}  {seconds * 1e3:>10,.2f} ms"
                    f"  over {ops:>10,} ops {rate}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter (the object identity is preserved)."""
        self.tuples_ingested = 0
        self.tuples_deleted = 0
        self.per_tuple_ops = 0
        self.batches = 0
        self.batched_ops = 0
        self.observer_time.clear()
        self.observer_ops.clear()
        self.estimate_calls = 0
        self.estimate_time = 0.0
