"""Reading and writing stream operation logs.

Lets a deployment replay recorded streams (or persist simulated ones) in a
plain line-oriented format: comma-separated raw attribute values, with an
optional leading ``+``/``-`` marker for insertion/deletion (no marker
means insertion).  Blank lines and ``#`` comments are skipped.

    # relation R2(A, B)
    +7,123
    9,40
    -7,123
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Protocol, TextIO

from .tuples import OpKind, StreamOp


class _ProcessTarget(Protocol):
    """Anything with a ``process(op)`` method — relations and engine proxies."""

    def process(self, op: StreamOp) -> object: ...  # pragma: no cover - protocol


def _parse_value(token: str) -> int | str:
    """Integers stay integers; anything else is kept as a string."""
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        return token


def parse_op_line(line: str) -> StreamOp | None:
    """Parse one log line into a :class:`StreamOp` (``None`` for blanks)."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    kind = OpKind.INSERT
    if text[0] in "+-":
        kind = OpKind.INSERT if text[0] == "+" else OpKind.DELETE
        text = text[1:]
    if not text:
        raise ValueError(f"operation line has a marker but no values: {line!r}")
    values = tuple(_parse_value(tok) for tok in text.split(","))
    return StreamOp(values, kind)


def read_ops(source: Path | str | TextIO) -> Iterator[StreamOp]:
    """Iterate the operations of a stream log file (or open text handle)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_ops(handle)
        return
    for lineno, line in enumerate(source, start=1):
        try:
            op = parse_op_line(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
        if op is not None:
            yield op


def format_op_line(op: StreamOp) -> str:
    """Render one operation in the log format (inverse of parse_op_line)."""
    marker = "+" if op.kind is OpKind.INSERT else "-"
    return marker + ",".join(str(v) for v in op.values)


def write_ops(destination: Path | str | TextIO, ops: Iterable[StreamOp]) -> int:
    """Write operations to a stream log; returns the number written."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_ops(handle, ops)
    written = 0
    for op in ops:
        destination.write(format_op_line(op) + "\n")
        written += 1
    return written


def replay_into(relation: _ProcessTarget, source: Path | str | TextIO) -> int:
    """Feed a log file's operations into a stream relation (or engine proxy).

    ``relation`` needs a ``process(op)`` method —
    :class:`~repro.streams.relation.StreamRelation` qualifies.  Returns the
    number of operations applied.
    """
    applied = 0
    for op in read_ops(source):
        relation.process(op)
        applied += 1
    return applied
