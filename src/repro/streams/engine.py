"""The continuous query engine: registered queries answered on demand.

This is the paper's processing model (section 1): continuous COUNT queries
with equi-joins are "issued once and then run continuously" over unbounded
streams, with estimates available at any moment from small synopses that
are updated as every tuple arrives.

The engine owns :class:`~repro.streams.relation.StreamRelation` objects and,
per registered query, builds one synopsis per participating relation over
the query's *unified* join domains (section 4.1), attaches them as stream
observers, and exposes ``answer()`` / ``answers()``.  Queries registered
after data has flowed are *replayed* from the relations' exact counts, so a
late query starts consistent with history.

Supported estimation methods mirror the paper's experimental cast:

- ``"cosine"``      — the cosine-series synopsis (the paper's method),
- ``"basic_sketch"``   — Alon et al.'s AGMS sketch,
- ``"skimmed_sketch"`` — Ganguly et al.'s skimmed sketch,
- ``"sample"``      — Bernoulli sampling (the 1988 estimator lineage),
- ``"histogram"``   — equi-width histogram (single-join queries only),
- ``"wavelet"``     — Haar top-coefficient synopsis (single-join only),
- ``"partitioned_sketch"`` — Dobra et al.'s domain-partitioned sketch
  (single-join only; the partition is derived from the relations' state at
  registration time, making the method's a-priori-knowledge assumption
  concrete).
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.join import estimate_multijoin_size as cosine_multijoin
from ..obs.accuracy import AccuracyTracker
from ..obs.telemetry import Telemetry
from ..core.normalization import Domain, embed_counts
from ..resilience.checkpoint import (
    domain_from_spec,
    domain_to_spec,
    read_checkpoint,
    write_checkpoint,
)
from ..resilience.deadletter import DeadLetter, DeadLetterBuffer, validate_rows
from ..resilience.errors import CheckpointError, DegradedQueryError
from ..core.synopsis import CosineSynopsis
from ..histograms.equiwidth import EquiWidthHistogram
from ..histograms.equiwidth import estimate_join_size as histogram_join
from ..sampling.estimators import estimate_chain_join_size_samples
from ..sampling.reservoir import BernoulliSample
from ..sketches.basic import AGMSSketch, split_budget
from ..sketches.basic import estimate_multijoin_size as sketch_multijoin
from ..sketches.hashing import SignFamily
from ..sketches.skimmed import estimate_multijoin_size_skimmed
from .exact import exact_multijoin_size
from .queries import JoinQuery
from .relation import StreamObserver, StreamRelation
from .stats import EngineStats
from .tuples import OpKind, StreamOp

if TYPE_CHECKING:
    from ..bounds.calculator import JoinBoundCalculator
    from ..sketches.partitioned import PartitionedSketch
    from ..wavelets.haar import HaarSynopsis

Slot = tuple[int, int]


def embed_counts_tensor(
    tensor: NDArray[Any],
    originals: Sequence[Domain],
    unifieds: Sequence[Domain],
) -> NDArray[Any]:
    """Embed a joint count tensor into unified per-axis domains (section 4.1)."""
    out = np.asarray(tensor)
    for axis, (orig, uni) in enumerate(zip(originals, unifieds)):
        if orig == uni:
            continue
        moved = np.moveaxis(out, axis, 0)
        flat = moved.reshape(orig.size, -1)
        embedded = np.stack([embed_counts(col, orig, uni) for col in flat.T], axis=1)
        out = np.moveaxis(embedded.reshape((uni.size,) + moved.shape[1:]), 0, axis)
    return out


class _QueryState:
    """Per-registered-query synopsis state and estimation closure."""

    def __init__(
        self,
        query: JoinQuery,
        method: str,
        estimate: Callable[[], float],
        space_per_relation: Mapping[str, int],
    ) -> None:
        self.query = query
        self.method = method
        self.estimate = estimate
        self.space_per_relation = dict(space_per_relation)
        #: (relation, observer) pairs attached on behalf of this query,
        #: recorded so unregistering can detach them.
        self.attachments: list[tuple[StreamRelation, object]] = []
        #: Registration spec (kind/method/budget/options), recorded so
        #: checkpoints can re-register the query on a restored engine.
        self.spec: dict[str, Any] | None = None
        #: Degradation reason, set when one of this query's observers was
        #: quarantined after raising; ``None`` while healthy.
        self.degraded: str | None = None
        #: Pessimistic bound calculator, set when the query was registered
        #: with ``bounds=True``; shares its degree sketches with the
        #: attached :class:`repro.bounds.degree.DegreeObserver` instances,
        #: so it is rebuilt (not serialized) on re-registration.
        self.bound_calc = None


class ContinuousQueryEngine:
    """Registers stream relations and continuous join-COUNT queries."""

    def __init__(
        self,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        shard: str | None = None,
    ) -> None:
        self.relations: dict[str, StreamRelation] = {}
        self._queries: dict[str, _QueryState] = {}
        self._seed = seed
        self._pending_attachments: list[tuple[StreamRelation, object]] = []
        #: The engine's telemetry hub (metrics registry + span tracer).
        #: Pass ``Telemetry.disabled()`` for a zero-overhead engine, or a
        #: shared hub to aggregate several engines into one registry.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Shard identity, set when this engine is one member of a
        #: :class:`repro.sharding.engine.ShardedStreamEngine` fleet; adds a
        #: ``shard`` label to the relation/observer metric families so
        #: merged fleet registries keep per-shard resolution.
        self.shard = shard
        self._stats = EngineStats(registry=self.telemetry.registry, shard=shard)
        self._accuracy: AccuracyTracker | None = None
        #: Degraded-answer policy once :meth:`enable_fault_isolation` has
        #: been called; ``None`` means isolation is off (faults raise).
        self._fault_policy: str | None = None
        #: Bounded buffer of rejected rows once
        #: :meth:`enable_dead_lettering` has been called; ``None`` means
        #: malformed batches raise, as before.
        self.dead_letters: DeadLetterBuffer | None = None

    def _attach(self, relation: StreamRelation, observer: StreamObserver) -> None:
        """Attach an observer and record it for query unregistration."""
        relation.attach(observer)
        self._pending_attachments.append((relation, observer))

    def stats(self) -> EngineStats:
        """Live ingest/estimation counters (see :class:`EngineStats`).

        Observer update time is attributed to the owning query's estimation
        method.  Call ``stats().reset()`` to zero the counters in place.
        The same numbers live in ``self.telemetry.registry`` for the
        :mod:`repro.obs.exporters` export paths.
        """
        return self._stats

    def track_accuracy(
        self, every_ops: int = 1000, queries: Sequence[str] | None = None
    ) -> AccuracyTracker:
        """Start online estimate-vs-exact tracking at an ingest cadence.

        Every ``every_ops`` ingested operations, each tracked query's
        ``answer()`` is compared against ``exact_answer()`` and the
        relative error folded into streaming aggregates (see
        :class:`repro.obs.accuracy.AccuracyTracker`, returned here and
        also available as :attr:`accuracy`).  Requires enabled telemetry —
        the cadence is driven by the ingest counters.
        """
        if not self.telemetry.enabled:
            raise ValueError("accuracy tracking requires enabled telemetry")
        self._accuracy = AccuracyTracker(
            self, every_ops=every_ops, queries=queries,
            registry=self.telemetry.registry,
        )
        return self._accuracy

    @property
    def accuracy(self) -> AccuracyTracker | None:
        """The active accuracy tracker, if :meth:`track_accuracy` was called."""
        return self._accuracy

    # ------------------------------------------------------------------ #
    # relations
    # ------------------------------------------------------------------ #

    def create_relation(
        self, name: str, attributes: Sequence[str], domains: Sequence[Domain]
    ) -> StreamRelation:
        """Declare a stream relation and return it."""
        if name in self.relations:
            raise ValueError(f"relation {name!r} already exists")
        relation = StreamRelation(name, attributes, domains)
        self._instrument(relation)
        self.relations[name] = relation
        return relation

    def add_relation(self, relation: StreamRelation) -> None:
        """Register an existing relation object."""
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already exists")
        self._instrument(relation)
        self.relations[relation.name] = relation

    def _instrument(self, relation: StreamRelation) -> None:
        """Hand the relation the engine's stats/tracer (or nothing at all).

        A disabled hub leaves both hooks ``None``, so the relation hot
        path is exactly the uninstrumented one.
        """
        if self.telemetry.enabled:
            relation.stats = self._stats
            relation.tracer = self.telemetry.tracer
        if self._fault_policy is not None:
            relation.fault_handler = self._handle_observer_fault

    def process(self, relation_name: str, op: StreamOp) -> None:
        """Route one stream operation to its relation (and its observers)."""
        self.relations[relation_name].process(op)
        if self._accuracy is not None:
            self._accuracy.maybe_sample()

    def insert(self, relation_name: str, values: Sequence[Any]) -> None:
        self.relations[relation_name].insert(values)
        if self._accuracy is not None:
            self._accuracy.maybe_sample()

    def delete(self, relation_name: str, values: Sequence[Any]) -> None:
        self.relations[relation_name].delete(values)
        if self._accuracy is not None:
            self._accuracy.maybe_sample()

    def ingest_batch(
        self,
        relation_name: str,
        rows: Sequence[Sequence[Any]] | NDArray[Any],
        kind: OpKind = OpKind.INSERT,
    ) -> None:
        """Ingest a same-kind batch of raw tuples through the fast path.

        The relation's exact tensor is updated with one vectorized
        scatter-add and every attached observer is notified once with the
        whole batch, hitting the synopses' ``insert_batch`` /
        ``update_batch`` kernels instead of per-tuple Python round-trips.
        The final state is identical to ingesting the rows one at a time
        (bit-identical for the count/sketch/sample state, up to float
        summation order for transform coefficients).

        An empty batch is an explicit no-op: no tensor touch, no observer
        notification, no spans or per-batch metrics.  With
        :meth:`enable_dead_lettering` active, malformed rows (wrong arity,
        NaN/inf, out-of-domain values) are diverted into
        :attr:`dead_letters` and the clean remainder is ingested, instead
        of the whole batch raising.
        """
        relation = self.relations[relation_name]
        if self.dead_letters is not None:
            rows, rejects = validate_rows(relation, rows)
            if rejects:
                counter = self.telemetry.registry.counter(
                    "repro_ingest_dead_letters_total",
                    "Rows rejected into the dead-letter buffer.",
                    labelnames=("relation", "reason"),
                )
                op_kind = kind.name.lower()
                for row, reason in rejects:
                    self.dead_letters.add(
                        DeadLetter(relation_name, row, op_kind, reason)
                    )
                    counter.labels(relation_name, reason).inc()
        if len(rows) == 0:
            return
        if kind is OpKind.INSERT:
            relation.insert_rows(rows)
        else:
            relation.delete_rows(rows)
        if self._accuracy is not None:
            self._accuracy.maybe_sample()

    def process_batch(self, relation_name: str, ops: Sequence[StreamOp]) -> None:
        """Route a mixed insert/delete operation sequence, batching runs."""
        self.relations[relation_name].process_batch(ops)
        if self._accuracy is not None:
            self._accuracy.maybe_sample()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def register_query(
        self,
        name: str,
        query: JoinQuery,
        method: str = "cosine",
        budget: int = 200,
        **options: Any,
    ) -> None:
        """Register a continuous query under a per-relation space budget.

        ``budget`` is the paper's space unit: coefficients / atomic sketches
        per relation (sample size for ``"sample"``, buckets for
        ``"histogram"``).  Already-streamed history is replayed into the new
        synopses from the exact relation state.
        """
        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        builders = {
            "cosine": self._build_cosine,
            "basic_sketch": self._build_sketch,
            "skimmed_sketch": self._build_sketch,
            "sample": self._build_sample,
            "histogram": self._build_histogram,
            "wavelet": self._build_wavelet,
            "partitioned_sketch": self._build_partitioned,
        }
        if method not in builders:
            raise ValueError(f"unknown method {method!r}; choose from {sorted(builders)}")
        for rel in query.relations:
            if rel not in self.relations:
                raise ValueError(f"query references relation {rel!r} not registered")
        schemas = {r: self.relations[r].attributes for r in query.relations}
        query.validate_against(schemas)
        self._pending_attachments = []
        try:
            state = builders[method](query, method, budget, options)
            if options.get("bounds"):
                # Attached inside the same pending window so a failure
                # rolls back the method's observers too, and the degree
                # observers land in ``state.attachments`` in a fixed
                # order after the synopsis observers — checkpoint restore
                # and sharded merges both rely on that ordering.
                state.bound_calc = self._attach_bounds(query)
        except Exception:
            # roll back partial attachments so a failed registration leaves
            # no orphan observers slowing the relations down
            for relation, observer in self._pending_attachments:
                relation.detach(observer)
            self._pending_attachments = []
            raise
        state.attachments = self._pending_attachments
        self._pending_attachments = []
        for _, observer in state.attachments:
            # per-method time attribution; degree maintenance is bounds
            # work whatever the synopsis method, so it reports separately
            observer.stats_key = (
                "bounds" if getattr(observer, "is_bound_observer", False) else method
            )
        state.spec = {
            "kind": "join",
            "relations": list(query.relations),
            "predicates": [str(p) for p in query.predicates],
            "method": method,
            "budget": budget,
            "options": dict(options),
        }
        self._queries[name] = state

    def unregister_query(self, name: str) -> None:
        """Drop a continuous query and detach its synopsis observers."""
        state = self._queries.pop(name, None)
        if state is None:
            raise KeyError(f"no query named {name!r}")
        for relation, observer in state.attachments:
            relation.detach(observer)

    def register_range_query(
        self,
        name: str,
        relation_name: str,
        attribute: str,
        low: Any,
        high: Any,
        budget: int = 200,
        **options: Any,
    ) -> None:
        """Register a continuous range-COUNT query over one attribute.

        Estimates ``|{t in R : low <= t.attribute <= high}|`` (raw-value
        bounds, inclusive) from a cosine synopsis of the attribute's
        marginal — the point/range estimation usage the paper's section 2
        surveys as the mainstream of approximate query processing.
        """
        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        if options.get("bounds"):
            raise ValueError("bounds=True is only supported for join queries")
        if relation_name not in self.relations:
            raise ValueError(f"relation {relation_name!r} not registered")
        relation = self.relations[relation_name]
        if attribute not in relation.attributes:
            raise ValueError(f"{relation_name}.{attribute} does not exist")
        axis = relation.attributes.index(attribute)
        domain = relation.domains[axis]
        lo_index = domain.index_of(low)
        hi_index = domain.index_of(high)
        if lo_index > hi_index:
            raise ValueError(f"empty range [{low}, {high}]")

        from ..core.range_query import estimate_range_count

        marginal = _marginalize(relation.counts, keep_axes=[axis]).astype(float)
        synopsis = CosineSynopsis(
            [domain], budget=budget, grid=options.get("grid", "midpoint")
        )
        if marginal.sum() > 0:
            synopsis = CosineSynopsis.from_counts(
                [domain],
                marginal,
                budget=budget,
                grid=options.get("grid", "midpoint"),
            )
        self._pending_attachments = []
        self._attach(relation, _CosineMarginalObserver(synopsis, axis))

        def estimate() -> float:
            return estimate_range_count(synopsis, lo_index, hi_index)

        def exact() -> float:
            live = _marginalize(relation.counts, keep_axes=[axis])
            return float(live[lo_index : hi_index + 1].sum())

        query = JoinQuery((relation_name,))
        state = _QueryState(query, "cosine_range", estimate, {relation_name: budget})
        state.exact = exact  # type: ignore[attr-defined]
        state.attachments = self._pending_attachments
        self._pending_attachments = []
        for _, observer in state.attachments:
            observer.stats_key = "cosine_range"
        state.spec = {
            "kind": "range",
            "relation": relation_name,
            "attribute": attribute,
            "low": low,
            "high": high,
            "budget": budget,
            "options": dict(options),
        }
        self._queries[name] = state

    def register_band_query(
        self,
        name: str,
        left: tuple[str, str],
        right: tuple[str, str],
        width: int,
        budget: int = 200,
        **options: Any,
    ) -> None:
        """Register a continuous band-join COUNT query (section 6 extension).

        Estimates ``|{(s, t) : |s.A - t.B| <= width}|`` for
        ``left = ("R1", "A")`` and ``right = ("R2", "B")``, with the band
        width in *unified-domain index* units.  Width 0 is the equi-join.
        """
        from ..core.theta_join import estimate_band_join_size

        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        if options.get("bounds"):
            raise ValueError("bounds=True is only supported for join queries")
        join_query = JoinQuery.parse(
            [left[0], right[0]], [f"{left[0]}.{left[1]} = {right[0]}.{right[1]}"]
        )
        for rel in join_query.relations:
            if rel not in self.relations:
                raise ValueError(f"relation {rel!r} not registered")
        schemas = {r: self.relations[r].attributes for r in join_query.relations}
        join_query.validate_against(schemas)
        unified = self._unified(join_query)
        ((rel_a, ax_a), (rel_b, ax_b)) = join_query.slot_pairs(schemas)[0]

        self._pending_attachments = []
        synopses: list[CosineSynopsis] = []
        for rel_pos, axis in ((rel_a, ax_a), (rel_b, ax_b)):
            rel_name = join_query.relations[rel_pos]
            relation = self.relations[rel_name]
            domain = unified[rel_name][axis]
            embedded = embed_counts_tensor(
                relation.counts, relation.domains, unified[rel_name]
            )
            marginal = _marginalize(embedded, keep_axes=[axis]).astype(float)
            synopsis = CosineSynopsis.from_counts([domain], marginal, budget=budget)
            self._attach(relation, _CosineMarginalObserver(synopsis, axis))
            synopses.append(synopsis)

        def estimate() -> float:
            return estimate_band_join_size(synopses[0], synopses[1], width)

        def exact() -> float:
            a = _marginalize(
                embed_counts_tensor(
                    self.relations[join_query.relations[rel_a]].counts,
                    self.relations[join_query.relations[rel_a]].domains,
                    unified[join_query.relations[rel_a]],
                ),
                keep_axes=[ax_a],
            ).astype(float)
            b = _marginalize(
                embed_counts_tensor(
                    self.relations[join_query.relations[rel_b]].counts,
                    self.relations[join_query.relations[rel_b]].domains,
                    unified[join_query.relations[rel_b]],
                ),
                keep_axes=[ax_b],
            ).astype(float)
            n = a.shape[0]
            prefix = np.concatenate([[0.0], np.cumsum(b)])
            hi = np.minimum(np.arange(n) + width + 1, n)
            lo = np.maximum(np.arange(n) - width, 0)
            return float(a @ (prefix[hi] - prefix[lo]))

        state = _QueryState(
            join_query, "cosine_band", estimate,
            {join_query.relations[rel_a]: budget, join_query.relations[rel_b]: budget},
        )
        state.exact = exact  # type: ignore[attr-defined]
        state.attachments = self._pending_attachments
        self._pending_attachments = []
        for _, observer in state.attachments:
            observer.stats_key = "cosine_band"
        state.spec = {
            "kind": "band",
            "left": list(left),
            "right": list(right),
            "width": width,
            "budget": budget,
            "options": dict(options),
        }
        self._queries[name] = state

    def answer(self, name: str) -> float:
        """Current estimate of a registered query.

        A query degraded by observer fault isolation answers according to
        the policy given to :meth:`enable_fault_isolation`: ``"raise"``
        surfaces a typed :class:`DegradedQueryError`, ``"nan"`` returns
        NaN, and ``"exact"`` falls back to the ground-truth answer.
        """
        state = self._queries[name]
        if state.degraded is not None:
            if self._fault_policy in (None, "raise"):
                raise DegradedQueryError(name, state.degraded)
            if self._fault_policy == "nan":
                return float("nan")
            return self.exact_answer(name)
        if not self.telemetry.enabled:
            return state.estimate()
        start = perf_counter()
        value = state.estimate()
        seconds = perf_counter() - start
        self._stats.record_estimate(seconds, query=name)
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.emit(
                "estimate", seconds, start=start, query=name, method=state.method
            )
        return value

    def answers(self) -> dict[str, float]:
        """Current estimates of all registered queries."""
        return {name: self.answer(name) for name in self._queries}

    def query_names(self) -> list[str]:
        """Names of all registered queries, in registration order."""
        return list(self._queries)

    def exact_answer(self, name: str) -> float:
        """Ground-truth answer of a registered query (for evaluation)."""
        state = self._queries[name]
        if state.method in ("cosine_range", "cosine_band"):
            return state.exact()  # type: ignore[attr-defined]
        return self.exact_join_size(state.query)

    def exact_join_size(self, query: JoinQuery) -> float:
        """Ground-truth size of any query over the registered relations."""
        schemas = {r: self.relations[r].attributes for r in query.relations}
        unified = query.unified_domains(
            schemas, {r: self.relations[r].domains for r in query.relations}
        )
        tensors = [
            embed_counts_tensor(
                self.relations[r].counts, self.relations[r].domains, unified[r]
            )
            for r in query.relations
        ]
        return exact_multijoin_size(tensors, query.slot_pairs(schemas))

    def space_report(self) -> dict[str, dict[str, int]]:
        """Per-query, per-relation synopsis space (paper units)."""
        return {name: dict(s.space_per_relation) for name, s in self._queries.items()}

    # ------------------------------------------------------------------ #
    # pessimistic bounds
    # ------------------------------------------------------------------ #

    def _attach_bounds(self, query: JoinQuery) -> "JoinBoundCalculator":
        """Attach degree observers for every join slot; build the calculator.

        One :class:`repro.bounds.degree.DegreeSketch` per (relation
        position, joined axis), fed from the relation's stream and
        initialized from the already-ingested history by marginalizing
        the exact count tensor onto the slot's unified domain.  A
        relation with no predicate gets a count-only sketch on axis 0 so
        its cardinality survives sharded merges (where the coordinator
        template's relations are empty).
        """
        from ..bounds.calculator import JoinBoundCalculator
        from ..bounds.degree import DegreeObserver, DegreeSketch

        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        joined = self._joined_axes(query)
        sketches: dict[Slot, DegreeSketch] = {}
        for rel_pos, rel_name in enumerate(query.relations):
            relation = self.relations[rel_name]
            axes = sorted(set(joined[rel_name])) or [0]
            embedded = embed_counts_tensor(
                relation.counts, relation.domains, unified[rel_name]
            )
            for axis in axes:
                domain = unified[rel_name][axis]
                sketch = DegreeSketch(domain.size)
                sketch.load_counts(_marginalize(embedded, keep_axes=[axis]))
                self._attach(relation, DegreeObserver(sketch, domain, axis))
                sketches[(rel_pos, axis)] = sketch
        return JoinBoundCalculator(
            len(query.relations), query.slot_pairs(schemas), sketches
        )

    def estimate(self, name: str, mode: str = "answer") -> float:
        """Answer one registered query in a chosen estimation mode.

        ``"answer"`` is the method's point estimate (identical to
        :meth:`answer`); ``"upper_bound"`` is the guaranteed
        degree-sequence join-size bound; ``"clamped"`` is
        ``min(estimate, upper_bound)``.  The bound modes require the
        query to have been registered with ``bounds=True``.
        """
        if mode == "answer":
            return self.answer(name)
        if mode not in ("upper_bound", "clamped"):
            raise ValueError(
                f"unknown estimation mode {mode!r}; "
                "choose from 'answer', 'upper_bound', 'clamped'"
            )
        state = self._queries[name]
        if state.bound_calc is None:
            raise ValueError(
                f"query {name!r} was not registered with bounds=True; "
                f"mode {mode!r} needs degree statistics"
            )
        if mode == "upper_bound":
            # a pure bound read: no point estimate is computed, so it
            # works even where the method's estimator cannot answer yet
            if state.degraded is not None:
                return float("nan")
            return float(state.bound_calc.upper_bound())
        report = self.bound_report(name)
        assert report is not None
        return float(report["clamped"])

    def bound_report(self, name: str) -> dict[str, Any] | None:
        """Bound metadata for one query, or ``None`` when bounds are off.

        Returns ``{"estimate", "upper_bound", "clamped", "clamp_fired"}``
        where ``clamped`` is ``min(estimate, upper_bound)`` (a NaN
        estimate clamps to the bound — the bound is the only sound
        number available).  A *degraded* query answers per the fault
        policy and reports a NaN bound: its quarantined observer may be
        the degree observer itself, so no sound bound exists.  Clamp
        events and bound tightness are recorded in the telemetry
        registry per query.
        """
        state = self._queries[name]
        if state.bound_calc is None:
            return None
        estimate = self.answer(name)
        if state.degraded is not None:
            return {
                "estimate": estimate,
                "upper_bound": float("nan"),
                "clamped": estimate,
                "clamp_fired": False,
            }
        bound = float(state.bound_calc.upper_bound())
        clamped = estimate if estimate <= bound else bound
        fired = bool(estimate > bound)
        if self.telemetry.enabled:
            self._record_bound_metrics(name, bound, clamped, fired)
        return {
            "estimate": estimate,
            "upper_bound": bound,
            "clamped": clamped,
            "clamp_fired": fired,
        }

    def _record_bound_metrics(
        self, name: str, bound: float, clamped: float, fired: bool
    ) -> None:
        registry = self.telemetry.registry
        if fired:
            registry.counter(
                "repro_bound_clamps_total",
                "Answers clamped because the point estimate exceeded the "
                "guaranteed upper bound, per query.",
                labelnames=("query",),
            ).labels(name).inc()
        tightness = 1.0 if bound <= 0 else min(1.0, max(clamped, 0.0) / bound)
        registry.gauge(
            "repro_bound_tightness_ratio",
            "Clamped estimate as a fraction of its guaranteed upper bound, "
            "per query (1.0 = estimate at or above the bound).",
            labelnames=("query",),
        ).labels(name).set(tightness)

    # ------------------------------------------------------------------ #
    # fault tolerance
    # ------------------------------------------------------------------ #

    def enable_fault_isolation(self, policy: str = "raise") -> None:
        """Quarantine observers that raise instead of aborting ingest.

        With isolation enabled, an observer raising from ``on_op`` /
        ``on_ops`` is detached from its relation, its owning query is
        marked degraded, and ingest continues for every other observer —
        the exact tensors are already updated before observers run, so
        ground truth is never corrupted by a synopsis fault.  Faults are
        counted in ``repro_observer_faults_total`` (per method) and the
        ``repro_queries_degraded`` gauge tracks how many queries are
        currently degraded.

        ``policy`` selects what :meth:`answer` does for a degraded query:
        ``"raise"`` (default) raises :class:`DegradedQueryError`,
        ``"nan"`` returns NaN, ``"exact"`` falls back to the ground-truth
        answer.
        """
        if policy not in ("raise", "nan", "exact"):
            raise ValueError(
                f"unknown degraded-answer policy {policy!r}; "
                "choose from 'raise', 'nan', 'exact'"
            )
        self._fault_policy = policy
        for relation in self.relations.values():
            relation.fault_handler = self._handle_observer_fault

    def degraded_queries(self) -> dict[str, str]:
        """Currently degraded queries, mapped to their fault reason."""
        return {
            name: state.degraded
            for name, state in self._queries.items()
            if state.degraded is not None
        }

    def _handle_observer_fault(
        self, relation: StreamRelation, observer: StreamObserver, exc: BaseException
    ) -> bool:
        """Relation fault-handler hook: quarantine and account, never raise."""
        try:
            relation.detach(observer)
        except ValueError:  # already detached (e.g. fault during replay)
            pass
        method = getattr(observer, "stats_key", type(observer).__name__)
        reason = f"{type(exc).__name__}: {exc}"
        for state in self._queries.values():
            if any(obs is observer for _, obs in state.attachments):
                if state.degraded is None:
                    state.degraded = reason
                break
        registry = self.telemetry.registry
        registry.counter(
            "repro_observer_faults_total",
            "Observer exceptions absorbed by fault isolation, per method.",
            labelnames=("method",),
        ).labels(method).inc()
        registry.gauge(
            "repro_queries_degraded",
            "Registered queries currently degraded by a quarantined observer.",
        ).set(len(self.degraded_queries()))
        return True

    def enable_dead_lettering(self, capacity: int = 1024) -> DeadLetterBuffer:
        """Divert malformed ingest rows into a bounded dead-letter buffer.

        After this call, :meth:`ingest_batch` validates rows up front
        (arity, finiteness, domain membership), ingests the clean
        remainder, and parks rejects in the returned
        :class:`DeadLetterBuffer` (also available as
        :attr:`dead_letters`), counted per relation and reason in
        ``repro_ingest_dead_letters_total``.  The per-tuple ``process`` /
        ``insert`` / ``delete`` paths keep their raise-on-bad-input
        semantics.
        """
        self.dead_letters = DeadLetterBuffer(capacity)
        return self.dead_letters

    # ------------------------------------------------------------------ #
    # checkpoint / recovery
    # ------------------------------------------------------------------ #

    def save_checkpoint(self, path: Path | str, **write_options: Any) -> int:
        """Atomically write the engine's full state to a checkpoint file.

        The checkpoint captures every relation's exact count tensor, every
        registered query's registration spec, and every attached synopsis
        observer's mutable state (including sample RNG bit state), so
        :meth:`load_checkpoint` restores an engine whose ``answers()`` —
        and whose behaviour on all *future* ingest — matches the
        checkpointed one exactly.  Returns the file size in bytes;
        ``write_options`` are forwarded to
        :func:`repro.resilience.checkpoint.write_checkpoint` (retry
        policy, sleep injection).
        """
        queries = []
        for name, state in self._queries.items():
            if state.spec is None:
                raise CheckpointError(
                    f"query {name!r} has no registration spec and cannot be "
                    "checkpointed"
                )
            queries.append(
                {
                    "name": name,
                    "spec": state.spec,
                    "degraded": state.degraded,
                    "observers": [
                        observer.state_dict() for _, observer in state.attachments
                    ],
                }
            )
        payload = {
            "engine": {
                "seed": self._seed,
                "fault_policy": self._fault_policy,
                "dead_letter_capacity": (
                    None if self.dead_letters is None else self.dead_letters.capacity
                ),
            },
            "relations": {
                name: {
                    "attributes": list(relation.attributes),
                    "domains": [domain_to_spec(d) for d in relation.domains],
                    "counts": relation.counts.copy(),
                }
                for name, relation in self.relations.items()
            },
            "queries": queries,
        }
        return write_checkpoint(path, payload, **write_options)

    @classmethod
    def load_checkpoint(
        cls, path: Path | str, telemetry: Telemetry | None = None, shard: str | None = None
    ) -> "ContinuousQueryEngine":
        """Restore an engine from a checkpoint written by :meth:`save_checkpoint`.

        Relations are recreated with their exact tensors, queries are
        re-registered from their recorded specs, and each synopsis
        observer's state is then overwritten in place from the checkpoint
        — so estimates, sample coin flips, and partition geometry continue
        bit-for-bit from where the checkpointed engine stopped.
        """
        payload = read_checkpoint(path)
        try:
            engine_meta = payload["engine"]
            engine = cls(seed=int(engine_meta["seed"]), telemetry=telemetry, shard=shard)
            for name, rel_state in payload["relations"].items():
                relation = engine.create_relation(
                    name,
                    rel_state["attributes"],
                    [domain_from_spec(s) for s in rel_state["domains"]],
                )
                relation.load_counts(rel_state["counts"])
            for entry in payload["queries"]:
                engine._register_from_spec(entry["name"], entry["spec"])
                state = engine._queries[entry["name"]]
                observers = entry["observers"]
                if len(observers) != len(state.attachments):
                    raise CheckpointError(
                        f"checkpoint query {entry['name']!r} recorded "
                        f"{len(observers)} observer states for "
                        f"{len(state.attachments)} attachments"
                    )
                for (_, observer), observer_state in zip(state.attachments, observers):
                    observer.load_state(observer_state)
                state.degraded = entry.get("degraded")
            if engine_meta.get("fault_policy") is not None:
                engine.enable_fault_isolation(engine_meta["fault_policy"])
            if engine_meta.get("dead_letter_capacity") is not None:
                engine.enable_dead_lettering(engine_meta["dead_letter_capacity"])
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint {path} is missing field {exc.args[0]!r}"
            ) from exc
        return engine

    def _register_from_spec(self, name: str, spec: dict[str, Any]) -> None:
        """Re-register a checkpointed query from its recorded spec."""
        kind = spec.get("kind")
        options = dict(spec.get("options", {}))
        if kind == "join":
            query = JoinQuery.parse(spec["relations"], spec["predicates"])
            self.register_query(
                name, query, method=spec["method"], budget=spec["budget"], **options
            )
        elif kind == "range":
            self.register_range_query(
                name,
                spec["relation"],
                spec["attribute"],
                spec["low"],
                spec["high"],
                budget=spec["budget"],
                **options,
            )
        elif kind == "band":
            self.register_band_query(
                name,
                tuple(spec["left"]),
                tuple(spec["right"]),
                spec["width"],
                budget=spec["budget"],
                **options,
            )
        else:
            raise CheckpointError(
                f"checkpoint query {name!r} has unknown kind {kind!r}"
            )

    # ------------------------------------------------------------------ #
    # method builders
    # ------------------------------------------------------------------ #

    def _unified(self, query: JoinQuery) -> dict[str, list[Domain]]:
        schemas = {r: self.relations[r].attributes for r in query.relations}
        return query.unified_domains(
            schemas, {r: self.relations[r].domains for r in query.relations}
        )

    def _joined_axes(self, query: JoinQuery) -> dict[str, list[int]]:
        """Axes of each relation that participate in some predicate."""
        schemas = {r: self.relations[r].attributes for r in query.relations}
        axes: dict[str, list[int]] = {r: [] for r in query.relations}
        for (rel_a, ax_a), (rel_b, ax_b) in query.slot_pairs(schemas):
            axes[query.relations[rel_a]].append(ax_a)
            axes[query.relations[rel_b]].append(ax_b)
        return {r: sorted(a) for r, a in axes.items()}

    def _build_cosine(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        grid = options.get("grid", "midpoint")
        truncation = options.get("truncation", "triangular")
        synopses: list[CosineSynopsis] = []
        for rel_name in query.relations:
            relation = self.relations[rel_name]
            embedded = embed_counts_tensor(relation.counts, relation.domains, unified[rel_name])
            synopsis = CosineSynopsis.from_counts(
                unified[rel_name], embedded, budget=budget, truncation=truncation, grid=grid
            )
            self._attach(relation, _CosineObserver(synopsis))
            synopses.append(synopsis)
        slot_pairs = query.slot_pairs(schemas)

        def estimate() -> float:
            return cosine_multijoin(synopses, slot_pairs)

        space = {r: s.num_coefficients for r, s in zip(query.relations, synopses)}
        return _QueryState(query, method, estimate, space)

    def _build_sketch(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        joined = self._joined_axes(query)
        for rel_name in query.relations:
            if not joined[rel_name]:
                raise ValueError(
                    f"sketch methods need every relation joined; {rel_name} is not"
                )
        s1, s2 = split_budget(budget, options.get("num_medians"))
        size = s1 * s2
        # One sign family per predicate, shared by both sides.
        slot_pairs = query.slot_pairs(schemas)
        slot_family: dict[Slot, SignFamily] = {}
        for pred_idx, (slot_a, slot_b) in enumerate(slot_pairs):
            rel_a = query.relations[slot_a[0]]
            domain = unified[rel_a][slot_a[1]]
            family = SignFamily(domain.size, size, seed=self._seed * 7919 + pred_idx)
            slot_family[slot_a] = family
            slot_family[slot_b] = family

        sketches: list[AGMSSketch] = []
        for rel_pos, rel_name in enumerate(query.relations):
            relation = self.relations[rel_name]
            axes = joined[rel_name]
            families = [slot_family[(rel_pos, ax)] for ax in axes]
            sketch = AGMSSketch(families, s1, s2)
            embedded = embed_counts_tensor(relation.counts, relation.domains, unified[rel_name])
            marginal = _marginalize(embedded, keep_axes=axes)
            if marginal.sum() > 0:
                sketch = AGMSSketch.from_counts(families, marginal, s1, s2)
            self._attach(
                relation,
                _SketchObserver(sketch, [unified[rel_name][ax] for ax in axes], axes),
            )
            sketches.append(sketch)

        if method == "skimmed_sketch":

            def estimate() -> float:
                return estimate_multijoin_size_skimmed(
                    sketches, threshold_factor=options.get("threshold_factor", 2.0)
                )

        else:

            def estimate() -> float:
                return sketch_multijoin(sketches)

        space = {r: size for r in query.relations}
        return _QueryState(query, method, estimate, space)

    def _build_sample(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        _require_chain(query, self.relations)
        joined = self._joined_axes(query)
        rng = np.random.default_rng(options.get("seed", self._seed))
        samples: list[BernoulliSample] = []
        tuple_counts: list[Counter[Any]] = []
        for rel_name in query.relations:
            relation = self.relations[rel_name]
            # Budget = expected sample size; derive the Bernoulli rate from
            # the relation's current size.  For queries registered before
            # data arrives the relation is empty and the rate degenerates to
            # 1.0 — pass probability= explicitly for that (streaming) case.
            probability = options.get(
                "probability", min(1.0, budget / max(relation.count, budget))
            )
            sample = BernoulliSample(probability, seed=int(rng.integers(1 << 31)))
            counter: Counter[Any] = Counter()
            axes = joined[rel_name]
            # Replay history distributionally: binomial thinning per cell.
            marginal = _marginalize(relation.counts, keep_axes=axes)
            nz = np.argwhere(marginal > 0)
            for cell in nz:
                kept = int(rng.binomial(int(marginal[tuple(cell)]), probability))
                if kept:
                    key = tuple(int(c) for c in cell)
                    counter[key if len(key) > 1 else key[0]] += kept
                    sample.sampled_size += kept
            sample.stream_size = relation.count
            self._attach(relation, _SampleObserver(sample, counter, relation, axes))
            samples.append(sample)
            tuple_counts.append(counter)

        def estimate() -> float:
            return estimate_chain_join_size_samples(samples, tuple_counts)

        space = {r: budget for r in query.relations}
        return _QueryState(query, method, estimate, space)

    def _build_histogram(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        if query.num_joins != 1:
            raise ValueError("the histogram baseline supports single-join queries only")
        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        ((rel_a, ax_a), (rel_b, ax_b)) = query.slot_pairs(schemas)[0]
        hists: list[EquiWidthHistogram] = []
        for rel_pos, axis in ((rel_a, ax_a), (rel_b, ax_b)):
            rel_name = query.relations[rel_pos]
            relation = self.relations[rel_name]
            domain = unified[rel_name][axis]
            hist = EquiWidthHistogram(domain, budget)
            embedded = embed_counts_tensor(relation.counts, relation.domains, unified[rel_name])
            marginal = _marginalize(embedded, keep_axes=[axis])
            hist.counts = np.add.reduceat(marginal.astype(float), hist.boundaries[:-1])
            hist._count = int(marginal.sum())
            self._attach(relation, _HistogramObserver(hist, axis))
            hists.append(hist)

        def estimate() -> float:
            return histogram_join(hists[0], hists[1])

        space = {query.relations[rel_a]: budget, query.relations[rel_b]: budget}
        return _QueryState(query, method, estimate, space)

    def _build_wavelet(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        from ..wavelets.haar import HaarSynopsis
        from ..wavelets.haar import estimate_join_size as haar_join

        if query.num_joins != 1:
            raise ValueError("the wavelet baseline supports single-join queries only")
        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        ((rel_a, ax_a), (rel_b, ax_b)) = query.slot_pairs(schemas)[0]
        synopses: list[Any] = []
        for rel_pos, axis in ((rel_a, ax_a), (rel_b, ax_b)):
            rel_name = query.relations[rel_pos]
            relation = self.relations[rel_name]
            domain = unified[rel_name][axis]
            embedded = embed_counts_tensor(relation.counts, relation.domains, unified[rel_name])
            marginal = _marginalize(embedded, keep_axes=[axis]).astype(float)
            synopsis = HaarSynopsis.from_counts(domain, marginal, budget)
            self._attach(relation, _WaveletObserver(synopsis, axis))
            synopses.append(synopsis)

        def estimate() -> float:
            return haar_join(synopses[0], synopses[1])

        space = {query.relations[rel_a]: budget, query.relations[rel_b]: budget}
        return _QueryState(query, method, estimate, space)

    def _build_partitioned(
        self, query: JoinQuery, method: str, budget: int, options: dict[str, Any]
    ) -> _QueryState:
        from ..sketches.partitioned import (
            PartitionedSketch,
            equi_mass_partition,
        )
        from ..sketches.partitioned import estimate_join_size as partitioned_join

        if query.num_joins != 1:
            raise ValueError(
                "the partitioned sketch supports single-join queries only"
            )
        unified = self._unified(query)
        schemas = {r: self.relations[r].attributes for r in query.relations}
        ((rel_a, ax_a), (rel_b, ax_b)) = query.slot_pairs(schemas)[0]

        # Dobra's a-priori distribution knowledge, made concrete: the pilot
        # is the combined marginal of both relations at registration time
        # (pass partitions= to tune the granularity).
        marginals = []
        for rel_pos, axis in ((rel_a, ax_a), (rel_b, ax_b)):
            rel_name = query.relations[rel_pos]
            relation = self.relations[rel_name]
            embedded = embed_counts_tensor(
                relation.counts, relation.domains, unified[rel_name]
            )
            marginals.append(_marginalize(embedded, keep_axes=[axis]).astype(float))
        pilot = marginals[0] + marginals[1]
        num_partitions = options.get("partitions", 8)
        boundaries = equi_mass_partition(pilot, num_partitions)

        sketches = []
        for (rel_pos, axis), marginal in zip(((rel_a, ax_a), (rel_b, ax_b)), marginals):
            rel_name = query.relations[rel_pos]
            relation = self.relations[rel_name]
            sketch = PartitionedSketch.from_counts(
                marginal, boundaries, budget, seed=self._seed
            )
            self._attach(relation, _PartitionedObserver(sketch, unified[rel_name][axis], axis))
            sketches.append(sketch)

        def estimate() -> float:
            return partitioned_join(sketches[0], sketches[1])

        space = {
            query.relations[rel_a]: sketches[0].num_atomic_sketches,
            query.relations[rel_b]: sketches[1].num_atomic_sketches,
        }
        return _QueryState(query, method, estimate, space)


#: Short alias for deployments that think of it as *the* stream engine.
StreamEngine = ContinuousQueryEngine


# ---------------------------------------------------------------------- #
# observers
# ---------------------------------------------------------------------- #


class _CosineMarginalObserver(StreamObserver):
    """Feeds one attribute's raw values into a 1-d cosine synopsis."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axis",)

    def __init__(self, synopsis: CosineSynopsis, axis: int) -> None:
        self.synopsis = synopsis
        self.axis = axis

    def state_dict(self) -> dict[str, Any]:
        return self.synopsis.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.synopsis.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        value = (op.values[self.axis],)
        if op.kind is OpKind.INSERT:
            self.synopsis.insert(value)
        else:
            self.synopsis.delete(value)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        column = rows[:, self.axis][:, None]
        if kind is OpKind.INSERT:
            self.synopsis.insert_batch(column)
        else:
            self.synopsis.delete_batch(column)


class _CosineObserver(StreamObserver):
    """Feeds raw tuples into a cosine synopsis (Eqs. 3.4 / 3.5)."""

    def __init__(self, synopsis: CosineSynopsis) -> None:
        self.synopsis = synopsis

    def state_dict(self) -> dict[str, Any]:
        return self.synopsis.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.synopsis.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        if op.kind is OpKind.INSERT:
            self.synopsis.insert(op.values)
        else:
            self.synopsis.delete(op.values)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        if kind is OpKind.INSERT:
            self.synopsis.insert_batch(rows)
        else:
            self.synopsis.delete_batch(rows)


class _SketchObserver(StreamObserver):
    """Feeds joined-attribute indices into an AGMS sketch."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axes", "domains")

    def __init__(
        self, sketch: AGMSSketch, domains: Sequence[Domain], axes: Sequence[int]
    ) -> None:
        self.sketch = sketch
        self.domains = list(domains)
        self.axes = list(axes)

    def state_dict(self) -> dict[str, Any]:
        return self.sketch.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.sketch.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        # Per-op slow path; the allocation-free route is the batched on_ops.
        indices = [d.index_of(op.values[ax]) for d, ax in zip(self.domains, self.axes)]  # repro: noqa[REP006]
        self.sketch.update(indices, weight=op.weight)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        indices = np.stack(
            [d.indices_of(rows[:, ax]) for d, ax in zip(self.domains, self.axes)],
            axis=1,
        )
        self.sketch.update_batch(indices, weight=kind.value)


class _SampleObserver(StreamObserver):
    """Feeds joined-attribute index tuples into a Bernoulli sample."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axes",)

    def __init__(
        self,
        sample: BernoulliSample,
        counter: Counter[Any],
        relation: StreamRelation,
        axes: Sequence[int],
    ) -> None:
        self.sample = sample
        self.counter = counter
        self.axes = list(axes)

    def state_dict(self) -> dict[str, Any]:
        return {"sample": self.sample.state_dict(), "counter": dict(self.counter)}

    def load_state(self, state: dict[str, Any]) -> None:
        # The estimate closure shares this Counter object; mutate in place.
        self.sample.load_state(state["sample"])
        self.counter.clear()
        self.counter.update(state["counter"])

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        if op.kind is OpKind.DELETE:
            self.sample.delete(op.values)  # raises: documented sampling limitation
            return
        idx = relation.indices_of(op.values)
        # Sample keys must be hashable tuples; unavoidable on the per-op path.
        key = tuple(idx[ax] for ax in self.axes)  # repro: noqa[REP006]
        before = self.sample.sampled_size
        self.sample.insert(key)
        if self.sample.sampled_size > before:
            self.counter[key if len(key) > 1 else key[0]] += 1

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        if kind is OpKind.DELETE:
            self.sample.delete(tuple(rows[0]))  # raises: documented limitation
            return
        idx = relation.indices_of_rows(rows)[:, self.axes]
        keys = [tuple(int(v) for v in row) for row in idx]
        mask = self.sample.insert_batch(keys)
        for key, kept in zip(keys, mask):
            if kept:
                self.counter[key if len(key) > 1 else key[0]] += 1


class _PartitionedObserver(StreamObserver):
    """Feeds one attribute's domain indices into a partitioned sketch."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axis", "domain")

    def __init__(self, sketch: "PartitionedSketch", domain: Domain, axis: int) -> None:
        self.sketch = sketch
        self.domain = domain
        self.axis = axis

    def state_dict(self) -> dict[str, Any]:
        return self.sketch.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.sketch.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        index = self.domain.index_of(op.values[self.axis])
        self.sketch.update(index, weight=op.weight)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        indices = self.domain.indices_of(rows[:, self.axis])
        self.sketch.update_batch(indices, weight=kind.value)


class _WaveletObserver(StreamObserver):
    """Feeds one attribute's raw values into a Haar wavelet synopsis."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axis",)

    def __init__(self, synopsis: "HaarSynopsis", axis: int) -> None:
        self.synopsis = synopsis
        self.axis = axis

    def state_dict(self) -> dict[str, Any]:
        return self.synopsis.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.synopsis.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        self.synopsis.update(op.values[self.axis], weight=op.weight)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        self.synopsis.update_batch(rows[:, self.axis], weight=kind.value)


class _HistogramObserver(StreamObserver):
    """Feeds one attribute's raw values into an equi-width histogram."""

    # Structural: rebuilt from the query spec, not restored from checkpoints.
    _checkpoint_exempt = ("axis",)

    def __init__(self, histogram: EquiWidthHistogram, axis: int) -> None:
        self.histogram = histogram
        self.axis = axis

    def state_dict(self) -> dict[str, Any]:
        return self.histogram.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.histogram.load_state(state)

    def on_op(self, relation: StreamRelation, op: StreamOp) -> None:
        self.histogram.update(op.values[self.axis], weight=op.weight)

    def on_ops(self, relation: StreamRelation, rows: NDArray[Any], kind: OpKind) -> None:
        self.histogram.update_batch(rows[:, self.axis], weight=kind.value)


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #


def _marginalize(tensor: NDArray[Any], keep_axes: Sequence[int]) -> NDArray[Any]:
    """Sum out all axes except ``keep_axes`` (order preserved)."""
    tensor = np.asarray(tensor)
    drop = tuple(ax for ax in range(tensor.ndim) if ax not in set(keep_axes))
    return tensor.sum(axis=drop) if drop else tensor


def _require_chain(query: JoinQuery, relations: Mapping[str, StreamRelation]) -> None:
    """The sampling estimator's DP requires the paper's chain shape."""
    schemas = {r: relations[r].attributes for r in query.relations}
    pairs = query.slot_pairs(schemas)
    for i, (slot_a, slot_b) in enumerate(pairs):
        if slot_a[0] != i or slot_b[0] != i + 1:
            raise ValueError(
                "the sampling method supports chain queries (relation i joined "
                "to relation i+1, in FROM order) only"
            )
