"""Stream relations: exact state, schemas, and synopsis observers.

A :class:`StreamRelation` models one stream of the paper's setting: a named
relation whose tuples arrive (and possibly depart) one at a time.  It keeps

* the exact joint frequency tensor — the ground truth the experiments
  measure relative error against (feasible because reproduction-scale
  domains are bounded; guarded by ``MAX_EXACT_CELLS``), and
* a list of attached *observers* — synopses that see every operation as it
  happens, exactly as the paper updates cosine coefficients and atomic
  sketches "whenever a tuple arrives" (section 5.1).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..core.normalization import Domain
from .tuples import OpKind, StreamOp

#: Refuse to materialize exact count tensors above this many cells.
MAX_EXACT_CELLS = 200_000_000


class StreamObserver(Protocol):
    """Anything that wants to see a relation's operations live."""

    def on_op(self, relation: "StreamRelation", op: StreamOp) -> None:
        """Called once per stream operation, after exact state is updated."""
        ...  # pragma: no cover - protocol


class StreamRelation:
    """A named stream with a fixed schema of attribute domains."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        domains: Sequence[Domain],
    ) -> None:
        if not attributes:
            raise ValueError("a relation needs at least one attribute")
        if len(attributes) != len(domains):
            raise ValueError("one domain per attribute is required")
        if len(set(attributes)) != len(attributes):
            raise ValueError("attribute names must be distinct")
        cells = int(np.prod([d.size for d in domains]))
        if cells > MAX_EXACT_CELLS:
            raise ValueError(
                f"exact tracking of {cells} cells exceeds MAX_EXACT_CELLS; "
                "use smaller domains for ground-truth experiments"
            )
        self.name = name
        self.attributes = tuple(attributes)
        self.domains = tuple(domains)
        self.counts = np.zeros(tuple(d.size for d in domains), dtype=np.int64)
        self._count = 0
        self._observers: list[StreamObserver] = []

    @property
    def ndim(self) -> int:
        return len(self.attributes)

    @property
    def count(self) -> int:
        """Live tuple count ``N``."""
        return self._count

    def attach(self, observer: StreamObserver) -> None:
        """Subscribe a synopsis observer to future operations."""
        self._observers.append(observer)

    def detach(self, observer: StreamObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------ #

    def indices_of(self, values: Sequence) -> tuple[int, ...]:
        """Map one raw tuple to per-attribute domain indices."""
        if len(values) != self.ndim:
            raise ValueError(
                f"{self.name} has {self.ndim} attributes, tuple has {len(values)}"
            )
        return tuple(d.index_of(v) for d, v in zip(self.domains, values))

    def process(self, op: StreamOp) -> None:
        """Apply one stream operation and notify observers."""
        idx = self.indices_of(op.values)
        if op.kind is OpKind.DELETE and self.counts[idx] == 0:
            raise ValueError(f"deleting tuple {op.values} that {self.name} does not hold")
        self.counts[idx] += op.weight
        self._count += op.weight
        for observer in self._observers:
            observer.on_op(self, op)

    def insert(self, values: Sequence) -> None:
        """Convenience: process an insertion of one raw tuple."""
        self.process(StreamOp(tuple(values), OpKind.INSERT))

    def delete(self, values: Sequence) -> None:
        """Convenience: process a deletion of one raw tuple."""
        self.process(StreamOp(tuple(values), OpKind.DELETE))

    def insert_rows(self, rows: Sequence[Sequence] | np.ndarray) -> None:
        """Process a batch of insertions, one operation per row."""
        for row in rows:
            if np.isscalar(row):
                row = (row,)
            self.insert(tuple(row))

    def load_counts(self, counts: np.ndarray) -> None:
        """Bulk-load an initial frequency tensor (no observer notification).

        Meant for experiment setup *before* observers are attached; attached
        synopses would silently miss the loaded tuples, so this raises if
        any observer is present.
        """
        if self._observers:
            raise ValueError("cannot bulk-load after observers are attached")
        counts = np.asarray(counts)
        if counts.shape != self.counts.shape:
            raise ValueError(f"counts shape {counts.shape} != {self.counts.shape}")
        if counts.min() < 0:
            raise ValueError("counts must be non-negative")
        self.counts = counts.astype(np.int64).copy()
        self._count = int(counts.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        schema = ", ".join(self.attributes)
        return f"StreamRelation({self.name}({schema}), N={self._count})"
