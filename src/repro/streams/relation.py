"""Stream relations: exact state, schemas, and synopsis observers.

A :class:`StreamRelation` models one stream of the paper's setting: a named
relation whose tuples arrive (and possibly depart) one at a time.  It keeps

* the exact joint frequency tensor — the ground truth the experiments
  measure relative error against (feasible because reproduction-scale
  domains are bounded; guarded by ``MAX_EXACT_CELLS``), and
* a list of attached *observers* — synopses that see every operation as it
  happens, exactly as the paper updates cosine coefficients and atomic
  sketches "whenever a tuple arrives" (section 5.1).

Beyond the paper's per-tuple model, relations also accept *batches*:
:meth:`StreamRelation.insert_rows` / :meth:`StreamRelation.delete_rows`
update the exact tensor with one vectorized scatter-add and notify each
observer once per batch.  Observers that implement ``on_ops(relation, rows,
kind)`` get the whole batch (and can use their synopsis' vectorized
kernels); anything exposing only ``on_op`` is fed tuple-by-tuple, so the
two protocols coexist on one relation.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, Sequence, TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain
from .tuples import OpKind, StreamOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs.tracing import Tracer
    from .stats import EngineStats

#: Refuse to materialize exact count tensors above this many cells.
MAX_EXACT_CELLS = 200_000_000


class StreamObserver:
    """Base class for synopses that watch a relation's operations live.

    Subclasses must implement :meth:`on_op`; batch-aware subclasses
    additionally override :meth:`on_ops`, whose default simply replays the
    batch tuple-by-tuple so per-op observers stay correct under batched
    ingestion.  Attachment is duck-typed — any object with an ``on_op``
    method works — but inheriting picks up the batch fallback for free.
    """

    def on_op(self, relation: "StreamRelation", op: StreamOp) -> None:
        """Called once per stream operation, after exact state is updated."""
        raise NotImplementedError

    def on_ops(self, relation: "StreamRelation", rows: NDArray[Any], kind: OpKind) -> None:
        """Called once per same-kind batch, after exact state is updated.

        ``rows`` is a ``(B, ndim)`` array of raw tuples.  The default
        falls back to one :meth:`on_op` call per row.
        """
        for row in rows:
            self.on_op(relation, StreamOp(tuple(row), kind))


def _stats_key(observer: object) -> str:
    """Stats attribution key: the owning query's method, or the class name."""
    return getattr(observer, "stats_key", type(observer).__name__)


class StreamRelation:
    """A named stream with a fixed schema of attribute domains."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        domains: Sequence[Domain],
    ) -> None:
        if not attributes:
            raise ValueError("a relation needs at least one attribute")
        if len(attributes) != len(domains):
            raise ValueError("one domain per attribute is required")
        if len(set(attributes)) != len(attributes):
            raise ValueError("attribute names must be distinct")
        cells = int(np.prod([d.size for d in domains]))
        if cells > MAX_EXACT_CELLS:
            raise ValueError(
                f"exact tracking of {cells} cells exceeds MAX_EXACT_CELLS; "
                "use smaller domains for ground-truth experiments"
            )
        self.name = name
        self.attributes = tuple(attributes)
        self.domains = tuple(domains)
        self.counts = np.zeros(tuple(d.size for d in domains), dtype=np.int64)
        self._count = 0
        self._observers: list[StreamObserver] = []
        #: Optional counters shared with an owning engine (see
        #: :class:`repro.streams.stats.EngineStats`); ``None`` disables
        #: instrumentation entirely.
        self.stats: "EngineStats | None" = None
        #: Optional span recorder (see :class:`repro.obs.tracing.Tracer`);
        #: ``None`` disables tracing of batch applies and observer updates.
        self.tracer: "Tracer | None" = None
        #: Optional observer fault handler: ``handler(relation, observer,
        #: exc) -> bool``, called when an observer raises.  Returning True
        #: means the fault was absorbed (the observer is typically
        #: quarantined by the handler) and notification continues with the
        #: remaining observers; returning False re-raises.  ``None`` (the
        #: default) preserves raise-through semantics exactly.
        self.fault_handler = None

    @property
    def ndim(self) -> int:
        return len(self.attributes)

    @property
    def count(self) -> int:
        """Live tuple count ``N``."""
        return self._count

    def attach(self, observer: StreamObserver) -> None:
        """Subscribe a synopsis observer to future operations."""
        self._observers.append(observer)

    def detach(self, observer: StreamObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------ #

    def indices_of(self, values: Sequence[Any]) -> tuple[int, ...]:
        """Map one raw tuple to per-attribute domain indices."""
        if len(values) != self.ndim:
            raise ValueError(
                f"{self.name} has {self.ndim} attributes, tuple has {len(values)}"
            )
        return tuple(d.index_of(v) for d, v in zip(self.domains, values))

    def rows_array(self, rows: Sequence[Sequence[Any]] | NDArray[Any]) -> NDArray[Any]:
        """Coerce a batch of raw tuples into a ``(B, ndim)`` array.

        A 1-d input is accepted for single-attribute relations (a batch of
        scalars); multi-attribute relations require one row per tuple.
        """
        arr = np.asarray(rows)
        if arr.size == 0 and arr.ndim <= 1:
            # An empty batch has no rows to carry shape information; make
            # it an explicit well-formed no-op instead of a shape error.
            return np.empty((0, self.ndim), dtype=np.int64)
        if arr.ndim == 1:
            if self.ndim == 1:
                arr = arr[:, None]
            else:
                raise ValueError(
                    f"{self.name} has {self.ndim} attributes; "
                    "pass rows as a (B, ndim) sequence of tuples"
                )
        if arr.ndim != 2 or arr.shape[1] != self.ndim:
            raise ValueError(
                f"rows must have shape (B, {self.ndim}), got {arr.shape}"
            )
        return arr

    def indices_of_rows(self, rows: Sequence[Sequence[Any]] | NDArray[Any]) -> NDArray[Any]:
        """Map a batch of raw tuples to a ``(B, ndim)`` index array.

        When every domain is a 0-based integer range and the rows already
        arrive as int64, the raw values *are* the indices: the batch is
        bounds-checked in place and returned without copying, keeping
        ``insert_rows`` zero-copy end-to-end (asserted by
        ``tests/fastpath/test_zero_copy.py``).
        """
        arr = self.rows_array(rows)
        if arr.dtype == np.int64 and all(
            not d.is_categorical and d.low == 0 for d in self.domains
        ):
            for j, d in enumerate(self.domains):
                d.indices_of(arr[:, j])  # bounds check only; returns the view
            return arr
        columns = [d.indices_of(arr[:, j]) for j, d in enumerate(self.domains)]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------ #
    # per-tuple path
    # ------------------------------------------------------------------ #

    def process(self, op: StreamOp) -> None:
        """Apply one stream operation and notify observers.

        With a tracer attached *and 1-in-N sampling enabled*, the apply is
        recorded as a sampled ``process_op`` span: a sampled-out tuple pays
        one integer decrement instead of two clock reads.  Without
        ``sample_every`` the per-tuple path stays span-free, as before —
        recording every tuple would cost exactly the per-tuple overhead
        the sampling item exists to remove (``sample_every=1`` opts into
        tracing every tuple explicitly).
        """
        tracer = self.tracer
        if tracer is not None and tracer.sample_every is not None and tracer.take():
            start = perf_counter()
            try:
                self._process_inner(op)
            finally:
                tracer.record(
                    "process_op",
                    perf_counter() - start,
                    start=start,
                    relation=self.name,
                    kind=op.kind.name.lower(),
                )
            return
        self._process_inner(op)

    def _process_inner(self, op: StreamOp) -> None:
        idx = self.indices_of(op.values)
        if op.kind is OpKind.DELETE and self.counts[idx] == 0:
            raise ValueError(f"deleting tuple {op.values} that {self.name} does not hold")
        self.counts[idx] += op.weight
        self._count += op.weight
        stats = self.stats
        handler = self.fault_handler
        if stats is None and handler is None:
            for observer in self._observers:
                observer.on_op(self, op)
            return
        if stats is not None:
            stats.record_ops(1, op.kind, batched=False, relation=self.name)
        # Copy only when a fault handler is attached: it may quarantine
        # (detach) the failing observer while we are walking the list.
        if handler is None:
            observers = self._observers
        else:
            observers = list(self._observers)  # repro: noqa[REP006]
        for observer in observers:
            start = perf_counter() if stats is not None else 0.0
            try:
                observer.on_op(self, op)
            except Exception as exc:
                if handler is None or not handler(self, observer, exc):
                    raise
            if stats is not None:
                stats.record_observer(_stats_key(observer), perf_counter() - start, 1)

    def insert(self, values: Sequence[Any]) -> None:
        """Convenience: process an insertion of one raw tuple."""
        self.process(StreamOp(tuple(values), OpKind.INSERT))

    def delete(self, values: Sequence[Any]) -> None:
        """Convenience: process a deletion of one raw tuple."""
        self.process(StreamOp(tuple(values), OpKind.DELETE))

    # ------------------------------------------------------------------ #
    # batch path
    # ------------------------------------------------------------------ #

    def insert_rows(self, rows: Sequence[Sequence[Any]] | NDArray[Any]) -> None:
        """Process a batch of insertions with one scatter-add and one notify.

        The final state is identical to inserting each row individually;
        observers implementing ``on_ops`` see the whole batch at once.
        """
        arr = self.rows_array(rows)
        if arr.shape[0]:
            self._apply_rows(arr, OpKind.INSERT)

    def delete_rows(self, rows: Sequence[Sequence[Any]] | NDArray[Any]) -> None:
        """Process a batch of deletions (validated before any state change)."""
        arr = self.rows_array(rows)
        if arr.shape[0]:
            self._apply_rows(arr, OpKind.DELETE)

    def process_batch(self, ops: Iterable[StreamOp]) -> None:
        """Apply a sequence of operations, batching runs of the same kind.

        Consecutive same-kind operations are grouped into one vectorized
        application each, so a mixed insert/delete stream preserves its
        relative order while still amortizing observer updates.
        """
        run: list[tuple[Any, ...]] = []
        run_kind: OpKind | None = None
        for op in ops:
            if run_kind is not None and op.kind is not run_kind:
                self._apply_rows(self.rows_array(run), run_kind)
                run = []
            run_kind = op.kind
            run.append(op.values)
        if run:
            assert run_kind is not None
            self._apply_rows(self.rows_array(run), run_kind)

    def _apply_rows(self, arr: NDArray[Any], kind: OpKind) -> None:
        """Vectorized core: update exact counts, then notify once.

        With a :attr:`tracer` attached, the whole apply is wrapped in an
        ``ingest_batch`` span and each observer update is emitted as an
        ``observer_update`` event (reusing the duration the stats layer
        measured, so tracing adds no extra clock reads per observer).
        """
        tracer = self.tracer
        if tracer is None:
            self._apply_rows_inner(arr, kind)
        else:
            with tracer.span(
                "ingest_batch",
                count=arr.shape[0],
                relation=self.name,
                kind=kind.name.lower(),
            ):
                self._apply_rows_inner(arr, kind)

    def _apply_rows_inner(self, arr: NDArray[Any], kind: OpKind) -> None:
        idx = self.indices_of_rows(arr)
        cells = tuple(idx[:, j] for j in range(self.ndim))
        if kind is OpKind.DELETE:
            # A sequential replay would raise on the first tuple exceeding
            # its live multiplicity; check up front so a rejected batch
            # leaves the exact state untouched.
            unique, multiplicity = np.unique(idx, axis=0, return_counts=True)
            held = self.counts[tuple(unique[:, j] for j in range(self.ndim))]
            short = multiplicity > held
            if short.any():
                bad_idx = unique[np.argmax(short)]
                where = np.argmax(np.all(idx == bad_idx, axis=1))
                bad = tuple(v.item() for v in arr[where])
                raise ValueError(
                    f"deleting tuple {bad} that {self.name} does not hold"
                )
            np.subtract.at(self.counts, cells, 1)
            self._count -= idx.shape[0]
        else:
            np.add.at(self.counts, cells, 1)
            self._count += idx.shape[0]
        stats = self.stats
        tracer = self.tracer
        if stats is not None:
            stats.record_ops(idx.shape[0], kind, batched=True, relation=self.name)
        # One sampling decision covers the whole batch: a sampled-out batch
        # with no stats attached skips every per-observer clock read.
        traced = tracer is not None and tracer.take()
        timed = stats is not None or traced
        fault_handler = self.fault_handler
        observers = self._observers if fault_handler is None else list(self._observers)
        for observer in observers:
            start = perf_counter() if timed else 0.0
            handler = getattr(observer, "on_ops", None)
            try:
                if handler is not None:
                    handler(self, arr, kind)
                else:
                    for row in arr:
                        observer.on_op(self, StreamOp(tuple(row), kind))
            except Exception as exc:
                if fault_handler is None or not fault_handler(self, observer, exc):
                    raise
            if timed:
                seconds = perf_counter() - start
                key = _stats_key(observer)
                if stats is not None:
                    stats.record_observer(key, seconds, arr.shape[0])
                if traced:
                    tracer.record(
                        "observer_update",
                        seconds,
                        count=arr.shape[0],
                        start=start,
                        relation=self.name,
                        method=key,
                    )

    # ------------------------------------------------------------------ #

    def load_counts(self, counts: NDArray[Any]) -> None:
        """Bulk-load an initial frequency tensor (no observer notification).

        Meant for experiment setup *before* observers are attached; attached
        synopses would silently miss the loaded tuples, so this raises if
        any observer is present.
        """
        if self._observers:
            raise ValueError("cannot bulk-load after observers are attached")
        counts = np.asarray(counts)
        if counts.shape != self.counts.shape:
            raise ValueError(f"counts shape {counts.shape} != {self.counts.shape}")
        if counts.min() < 0:
            raise ValueError("counts must be non-negative")
        self.counts = counts.astype(np.int64).copy()
        self._count = int(counts.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        schema = ", ".join(self.attributes)
        return f"StreamRelation({self.name}({schema}), N={self._count})"
