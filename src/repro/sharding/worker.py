"""The per-shard command surface: one engine behind a picklable protocol.

A :class:`ShardWorker` owns one
:class:`~repro.streams.engine.StreamEngine` and exposes exactly the
operations a :class:`~repro.sharding.engine.ShardedStreamEngine` needs,
as plain methods taking and returning picklable values.  Executors call
these methods either directly (serial / thread executors, in-process) or
through a pipe protocol (process executor, see
:mod:`repro.sharding.executor`) — the worker itself cannot tell the
difference, which is what keeps all three executors answer-identical.

Each worker's engine carries its own
:class:`~repro.obs.metrics.MetricsRegistry` with the shard index as a
``shard`` label on the relation/observer metrics, and checkpoints into
its own :class:`~repro.resilience.checkpoint.CheckpointStore` directory,
so a crashed shard restores independently of the rest of the fleet.

Distributed tracing: commands that do engine work (``ingest``,
``query_observers``) accept an optional W3C ``traceparent`` header.  The
worker's tracer :meth:`~repro.obs.tracing.Tracer.adopt`\\ s it before the
work runs, so the spans the engine records carry the coordinator's trace
id and parent under the coordinator's fan-out span — one fleet
operation, one trace.  :meth:`ShardWorker.drain_spans` hands the
buffered spans back as picklable values for the fleet's OTLP export.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, cast

import numpy as np
from numpy.typing import NDArray

from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import Telemetry
from ..obs.tracing import SpanEvent
from ..resilience.checkpoint import CheckpointStore
from ..resilience.errors import CheckpointError
from ..streams.engine import StreamEngine
from ..streams.tuples import OpKind

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard's engine plus the command methods executors invoke."""

    def __init__(self, shard_index: int, seed: int, telemetry: bool = True) -> None:
        self.shard_index = shard_index
        self.seed = seed
        self.telemetry_enabled = telemetry
        self.engine = self._fresh_engine()

    def _fresh_engine(self) -> StreamEngine:
        # Tracing on: shard spans adopt the coordinator's trace context
        # (see ingest/query_observers) and are collected by drain_spans.
        hub = Telemetry() if self.telemetry_enabled else Telemetry.disabled()
        return StreamEngine(seed=self.seed, telemetry=hub, shard=str(self.shard_index))

    def _adopt(self, traceparent: str | None) -> None:
        tracer = self.engine.telemetry.tracer
        if tracer is not None:
            tracer.adopt(traceparent)

    # ------------------------------------------------------------------ #
    # commands (everything below takes / returns picklable values)
    # ------------------------------------------------------------------ #

    def ping(self) -> int:
        return self.shard_index

    def create_relation(
        self, name: str, attributes: list[str], domain_specs: list[dict[str, Any]]
    ) -> None:
        from ..resilience.checkpoint import domain_from_spec

        self.engine.create_relation(
            name, attributes, [domain_from_spec(s) for s in domain_specs]
        )

    def register_query(self, name: str, spec: dict[str, Any]) -> None:
        self.engine._register_from_spec(name, spec)

    def unregister_query(self, name: str) -> None:
        self.engine.unregister_query(name)

    def ingest(
        self, relation: str, rows: NDArray[Any], kind: OpKind, traceparent: str | None = None
    ) -> int:
        self._adopt(traceparent)
        self.engine.ingest_batch(relation, rows, kind)
        return int(np.asarray(rows).shape[0])

    def query_observers(
        self, name: str, traceparent: str | None = None
    ) -> tuple[str | None, list[dict[str, Any]]]:
        """This shard's (degraded_reason, per-observer state dicts) for a query."""
        self._adopt(traceparent)
        tracer = self.engine.telemetry.tracer
        state = self.engine._queries[name]
        if tracer is not None:
            with tracer.span("estimate", query=name, phase="collect_state"):
                return state.degraded, [obs.state_dict() for _, obs in state.attachments]
        return state.degraded, [obs.state_dict() for _, obs in state.attachments]

    def drain_spans(self) -> list[SpanEvent]:
        """Hand over (and clear) this shard's buffered spans, oldest-first."""
        tracer = self.engine.telemetry.tracer
        if tracer is None:
            return []
        return list(tracer.drain())

    def relation_counts(self, name: str) -> NDArray[Any]:
        return np.array(self.engine.relations[name].counts)

    def relation_count(self, name: str) -> int:
        return int(self.engine.relations[name].count)

    def enable_fault_isolation(self, policy: str) -> None:
        self.engine.enable_fault_isolation(policy)

    def degraded_queries(self) -> dict[str, str]:
        return dict(self.engine.degraded_queries())

    def registry(self) -> MetricsRegistry:
        """The shard's metrics registry (a picklable value object)."""
        return cast(MetricsRegistry, self.engine.telemetry.registry)

    def stats_dict(self) -> dict[str, Any]:
        return dict(self.engine.stats().as_dict())

    # ------------------------------------------------------------------ #
    # checkpoint / recovery
    # ------------------------------------------------------------------ #

    def save_checkpoint(self, directory: str, keep: int = 3) -> str:
        """Rotate a checkpoint of this shard's engine into ``directory``."""
        store = CheckpointStore(directory, keep=keep)
        return str(store.save(self.engine))

    def load_latest_checkpoint(self, directory: str) -> str:
        """Replace this shard's engine with the newest checkpoint's state."""
        store = CheckpointStore(Path(directory))
        latest = store.latest()
        if latest is None:
            raise CheckpointError(f"no checkpoints found in {directory}")
        hub = Telemetry() if self.telemetry_enabled else Telemetry.disabled()
        self.engine = StreamEngine.load_checkpoint(
            latest, telemetry=hub, shard=str(self.shard_index)
        )
        return str(latest)
