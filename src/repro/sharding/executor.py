"""Shard executors: one interface, three placement strategies.

A :class:`ShardExecutor` owns ``num_shards``
:class:`~repro.sharding.worker.ShardWorker` instances and runs commands
against them:

* :class:`SerialExecutor` — workers in-process, commands run inline.
  Zero concurrency, zero overhead; the deterministic baseline and the
  default.
* :class:`ThreadExecutor` — one single-thread pool *per shard*, so each
  shard applies its commands in submission order (the ordering guarantee
  ingest correctness depends on) while different shards run
  concurrently.  Wins when the synopsis kernels spend their time inside
  numpy, which releases the GIL.
* :class:`ProcessExecutor` — one worker process per shard behind a
  pipe; commands and results are pickled.  True CPU parallelism at the
  cost of per-command IPC; worth it when per-batch synopsis work
  dominates (large budgets / batches).

Commands are ``(method_name, args, kwargs)`` against the worker's public
methods.  A worker exception is re-raised in the caller as
:class:`ShardError` naming the shard, for all three executors alike.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Sequence, cast

from .worker import ShardWorker

#: One shard's ``(args, kwargs)`` pair in a :meth:`ShardExecutor.scatter`.
CallSpec = tuple[tuple[Any, ...], dict[str, Any]]

__all__ = [
    "ProcessExecutor",
    "SerialExecutor",
    "ShardError",
    "ShardExecutor",
    "ThreadExecutor",
    "resolve_executor",
]


class ShardError(RuntimeError):
    """A command failed on one shard (carries the shard index)."""

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


class ShardExecutor:
    """Abstract executor: start workers, run commands, shut down."""

    num_shards: int = 0

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        raise NotImplementedError

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Run one command on one shard and return its result."""
        raise NotImplementedError

    def broadcast(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Run the same command on every shard; results in shard order."""
        return self.scatter(method, [(args, kwargs)] * self.num_shards)

    def scatter(self, method: str, per_shard: Sequence[CallSpec | None]) -> list[Any]:
        """Run per-shard argument sets concurrently; ``None`` skips a shard.

        ``per_shard[i]`` is an ``(args, kwargs)`` pair for shard ``i``.
        Returns one result per shard (``None`` for skipped shards).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release workers (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _wrap_call(
    shard: int,
    worker: ShardWorker,
    method: str,
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
) -> Any:
    try:
        return getattr(worker, method)(*args, **kwargs)
    except ShardError:
        raise
    except Exception as exc:
        raise ShardError(shard, f"{type(exc).__name__}: {exc}") from exc


class SerialExecutor(ShardExecutor):
    """All shards in-process; commands run inline in shard order."""

    def __init__(self) -> None:
        self.workers: list[ShardWorker] = []

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        self.num_shards = num_shards
        self.workers = [ShardWorker(i, seed, telemetry) for i in range(num_shards)]

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return _wrap_call(shard, self.workers[shard], method, args, kwargs)

    def scatter(self, method: str, per_shard: Sequence[CallSpec | None]) -> list[Any]:
        results: list[Any] = [None] * self.num_shards
        for shard, item in enumerate(per_shard):
            if item is not None:
                args, kwargs = item
                results[shard] = self.call(shard, method, *args, **kwargs)
        return results


class ThreadExecutor(ShardExecutor):
    """One single-thread pool per shard: per-shard order, cross-shard overlap."""

    def __init__(self) -> None:
        self.workers: list[ShardWorker] = []
        self._pools: list[ThreadPoolExecutor] = []

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        self.num_shards = num_shards
        self.workers = [ShardWorker(i, seed, telemetry) for i in range(num_shards)]
        self._pools = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"shard-{i}")
            for i in range(num_shards)
        ]

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        future = self._pools[shard].submit(
            _wrap_call, shard, self.workers[shard], method, args, kwargs
        )
        return future.result()

    def scatter(self, method: str, per_shard: Sequence[CallSpec | None]) -> list[Any]:
        futures: list[Future[Any] | None] = []
        for shard, item in enumerate(per_shard):
            if item is None:
                futures.append(None)
                continue
            args, kwargs = item
            futures.append(
                self._pools[shard].submit(
                    _wrap_call, shard, self.workers[shard], method, args, kwargs
                )
            )
        return [f.result() if f is not None else None for f in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        self._pools = []
        self.workers = []


def _process_worker_loop(
    conn: Any, shard_index: int, seed: int, telemetry: bool, inherited: tuple[Any, ...] = ()
) -> None:
    """Worker-process entry point: apply piped commands until EOF/None.

    ``inherited`` carries the parent-side connections of *earlier* shards
    under the ``fork`` start method: the fork inherited those open file
    descriptors, and while this process holds them an earlier worker's
    death never surfaces as EOF to the coordinator.  Closing them first
    restores the one-writer-per-pipe invariant EOF detection needs.
    """
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed is fine
            pass
    worker = ShardWorker(shard_index, seed, telemetry)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        method, args, kwargs = message
        try:
            result = getattr(worker, method)(*args, **kwargs)
        except Exception as exc:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", result))
    conn.close()


class ProcessExecutor(ShardExecutor):
    """One worker process per shard, commands over a duplex pipe.

    ``call_timeout`` bounds how long a command may go unanswered before
    it fails as :class:`ShardError` (``None`` = wait forever as long as
    the worker lives).  Independently of the timeout, a worker that
    *dies* mid-command is detected by liveness polling, so a crashed
    shard raises promptly instead of blocking the coordinator on a pipe
    no one will ever write to.
    """

    #: Liveness poll granularity while waiting on a reply (seconds).
    _POLL_INTERVAL = 0.05

    def __init__(
        self, mp_context: str | None = None, call_timeout: float | None = None
    ) -> None:
        if call_timeout is not None and call_timeout <= 0:
            raise ValueError(f"call_timeout must be positive, got {call_timeout}")
        self._ctx_name = mp_context
        self._call_timeout = call_timeout
        self._procs: list[Any] = []
        self._conns: list[Any] = []

    def start(self, num_shards: int, seed: int, telemetry: bool = True) -> None:
        self.num_shards = num_shards
        name = self._ctx_name
        if name is None:
            name = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(name)
        for i in range(num_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            # Under fork, this child inherits every earlier parent-side
            # connection; hand them over so it closes them (see
            # _process_worker_loop).  Spawned children inherit nothing.
            inherited = tuple(self._conns) if name == "fork" else ()
            proc = ctx.Process(
                target=_process_worker_loop,
                args=(child_conn, i, seed, telemetry, inherited),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _send(
        self, shard: int, method: str, args: tuple[Any, ...], kwargs: dict[str, Any]
    ) -> None:
        try:
            self._conns[shard].send((method, args, kwargs))
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(shard, f"worker process is gone: {exc}") from exc

    def _recv(self, shard: int) -> Any:
        conn = self._conns[shard]
        deadline = (
            None
            if self._call_timeout is None
            else time.monotonic() + self._call_timeout
        )
        while not conn.poll(self._POLL_INTERVAL):
            if not self._procs[shard].is_alive():
                # One last race-free check: the reply may have landed
                # between the poll and the liveness test.
                if conn.poll(0):
                    break
                raise ShardError(shard, "worker process died mid-command")
            if deadline is not None and time.monotonic() > deadline:
                raise ShardError(
                    shard, f"no reply within call_timeout={self._call_timeout}s"
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardError(shard, "worker process exited mid-command") from exc
        if status == "err":
            raise ShardError(shard, payload)
        return payload

    def call(self, shard: int, method: str, *args: Any, **kwargs: Any) -> Any:
        self._send(shard, method, args, kwargs)
        return self._recv(shard)

    def scatter(self, method: str, per_shard: Sequence[CallSpec | None]) -> list[Any]:
        active: list[int] = []
        for shard, item in enumerate(per_shard):
            if item is None:
                continue
            args, kwargs = item
            self._send(shard, method, args, kwargs)
            active.append(shard)
        results: list[Any] = [None] * self.num_shards
        errors: list[ShardError] = []
        for shard in active:
            try:
                results[shard] = self._recv(shard)
            except ShardError as exc:
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - terminate resisted
                proc.kill()
                proc.join(timeout=1)
        self._procs = []
        self._conns = []


_EXECUTORS: dict[str, type[ShardExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def resolve_executor(executor: str | ShardExecutor) -> ShardExecutor:
    """Coerce an executor name or instance.

    Names: ``serial`` / ``thread`` / ``process`` (this module) plus
    ``socket`` — the supervised network fleet, imported lazily because
    :mod:`repro.fleet` builds on this module.
    """
    if isinstance(executor, ShardExecutor):
        return executor
    if executor == "socket":
        from ..fleet.executor import SocketExecutor

        return cast(ShardExecutor, SocketExecutor())
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; "
            f"choose from {sorted([*_EXECUTORS, 'socket'])}"
        ) from None
