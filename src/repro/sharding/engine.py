"""The sharded continuous-query engine: partitioned ingest, merged answers.

:class:`ShardedStreamEngine` presents the same relation / query / answer
surface as :class:`~repro.streams.engine.StreamEngine`, but hash-
partitions every relation's rows across ``num_shards`` independent
engines (each with its own telemetry registry and checkpoint directory)
behind a :class:`~repro.sharding.executor.ShardExecutor`.

Answering works per method family (see :mod:`repro.sharding.merge`):

* mergeable methods collect each shard's observer ``state_dict()``,
  sum them into a *template* engine's synopses (registered over the same
  specs and seed, so sign families and geometry match), and run the
  template's unchanged estimate closure — one code path for equi-joins,
  multi-joins, range and band queries alike;
* coordinator methods (``sample``, ``partitioned_sketch``, ``wavelet``)
  answer from a coordinator-resident replica that observed the full
  stream in arrival order, bit-identical to the unsharded engine;
* exact answers reduce the shards' exact tensors (cell-disjoint by
  construction) into the template and reuse its ground-truth path.

Per-shard checkpoints write one rotated
:class:`~repro.resilience.checkpoint.CheckpointStore` per shard plus a
fleet manifest; a crashed shard restores alone via
:meth:`ShardedStreamEngine.restore_shard` while the remaining shards
keep their live state.

Distributed tracing: the fleet owns a coordinator
:class:`~repro.obs.tracing.Tracer` whose ``ingest_batch`` / ``estimate``
spans pre-announce their span ids as W3C ``traceparent`` headers; the
headers ride the executor fan-out so every shard's engine spans join the
same trace, parented under the coordinator span that caused them.
:meth:`ShardedStreamEngine.drain_spans` collects the whole fleet's spans
(tagged per-shard) for :mod:`repro.obs.otel` export.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence, cast

import numpy as np
from numpy.typing import NDArray

from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import Telemetry
from ..obs.tracing import SpanEvent, Tracer
from ..resilience.checkpoint import (
    CheckpointStore,
    domain_from_spec,
    domain_to_spec,
)
from ..resilience.deadletter import (
    DeadLetter,
    DeadLetterBuffer,
    ReplayReport,
    validate_rows,
)
from ..resilience.errors import CheckpointError, DegradedQueryError
from ..streams.engine import StreamEngine
from ..streams.queries import JoinQuery
from ..streams.tuples import OpKind
from .executor import ShardError, ShardExecutor, resolve_executor
from .merge import COORDINATOR_METHODS, MERGEABLE_METHODS, merge_observer_states
from .partition import split_rows

__all__ = ["PartialAnswer", "ShardedStreamEngine"]

_MANIFEST_NAME = "fleet-manifest.json"


@dataclass(frozen=True)
class PartialAnswer:
    """A query answer that may be missing crashed shards' contributions.

    ``raw_value`` is the merged estimate over the surviving shards only;
    ``value`` scales it by ``total_shards / surviving_shards`` — a valid
    first-order correction because hash partitioning spreads every join
    key's tuples (and hence the additive per-shard contributions) evenly
    across shards in expectation.  ``degraded`` is True whenever any
    shard's contribution is missing, so callers can surface the widened
    uncertainty instead of silently serving a partial count.
    """

    value: float
    raw_value: float
    surviving_shards: int
    total_shards: int
    missing_shards: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.surviving_shards < self.total_shards

    def as_dict(self) -> dict[str, object]:
        return {
            "value": self.value,
            "raw_value": self.raw_value,
            "surviving_shards": self.surviving_shards,
            "total_shards": self.total_shards,
            "missing_shards": list(self.missing_shards),
            "degraded": self.degraded,
        }


class _RelationMeta:
    """Fleet-side schema record for one partitioned relation."""

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        domains: Sequence[Any],
        partition_axis: int,
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.domains = tuple(domains)
        self.partition_axis = partition_axis


class _QueryMeta:
    """Fleet-side record of one registered query."""

    def __init__(self, name: str, spec: dict[str, Any], coordinator: bool) -> None:
        self.name = name
        self.spec = spec
        self.coordinator = coordinator


class ShardedStreamEngine:
    """Hash-partitioned fleet of stream engines with merged answers."""

    def __init__(
        self,
        num_shards: int = 4,
        seed: int = 0,
        executor: str | ShardExecutor = "serial",
        telemetry: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._seed = seed
        self._telemetry_enabled = telemetry
        #: Coordinator tracer: fan-out spans recorded here hand their
        #: ``traceparent`` to the shards, linking the fleet's spans into
        #: one trace per fleet operation.
        self.tracer: Tracer | None = Tracer() if telemetry else None
        self._executor = resolve_executor(executor)
        self._executor.start(num_shards, seed, telemetry)
        self._relations: dict[str, _RelationMeta] = {}
        self._queries: dict[str, _QueryMeta] = {}
        #: Template engine: empty relations + mergeable query registrations,
        #: used to host merged synopsis state and reuse estimate closures.
        self._merge_engine = StreamEngine(seed=seed, telemetry=Telemetry.disabled())
        #: Full-stream replica for order-dependent methods; ``None`` until
        #: the first ``sample`` / ``partitioned_sketch`` query registers.
        self._coordinator: StreamEngine | None = None
        self._fault_policy: str | None = None
        #: Fleet-level dead-letter buffer (``None`` until
        #: :meth:`enable_dead_lettering`): malformed rows are quarantined
        #: *before* partitioning, so every shard only ever sees clean rows.
        self.dead_letters: DeadLetterBuffer | None = None
        #: Coordinator-side metrics (dead-letter accounting) merged into
        #: :meth:`fleet_metrics` alongside the shard registries.
        self._local_registry = MetricsRegistry()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # relations
    # ------------------------------------------------------------------ #

    def create_relation(
        self,
        name: str,
        attributes: Sequence[str],
        domains: Sequence[Any],
        partition_by: str | None = None,
    ) -> None:
        """Declare a relation on every shard, partitioned by one attribute.

        ``partition_by`` names the routing attribute (default: the first).
        Merged answers do not depend on the choice — synopsis merges are
        linear — but routing on the join attribute keeps each join key's
        tuples co-located, the layout a future shard-local join needs.
        """
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        attributes = list(attributes)
        axis = 0 if partition_by is None else attributes.index(partition_by)
        self._merge_engine.create_relation(name, attributes, domains)
        specs = [domain_to_spec(d) for d in domains]
        self._executor.broadcast("create_relation", name, attributes, specs)
        if self._coordinator is not None:
            self._coordinator.create_relation(name, attributes, domains)
        self._relations[name] = _RelationMeta(name, attributes, domains, axis)

    def relation_names(self) -> list[str]:
        return list(self._relations)

    def total_count(self, relation_name: str) -> int:
        """Fleet-wide live tuple count of one relation."""
        if relation_name not in self._relations:
            raise KeyError(f"no relation named {relation_name!r}")
        return int(sum(self._executor.broadcast("relation_count", relation_name)))

    def merged_counts(self, relation_name: str) -> NDArray[Any]:
        """The relation's exact tensor, reduced across shards."""
        if self._coordinator is not None:
            return np.array(self._coordinator.relations[relation_name].counts)
        parts = self._executor.broadcast("relation_counts", relation_name)
        return np.asarray(np.sum(np.stack(parts), axis=0))

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def ingest_batch(
        self,
        relation_name: str,
        rows: Sequence[Sequence[Any]] | NDArray[Any],
        kind: OpKind = OpKind.INSERT,
    ) -> None:
        """Partition a same-kind batch by routing hash and fan it out.

        The coordinator replica (when present) sees the whole batch first,
        in arrival order; each shard then applies its slice through the
        normal batched fast path.  Per-shard slices preserve the batch's
        relative order, so shard state is independent of batch framing.

        With :meth:`enable_dead_lettering` active, malformed rows are
        diverted into :attr:`dead_letters` *before* partitioning — the
        shards (and the coordinator replica) only ever ingest clean rows,
        so a poison row cannot crash a remote worker.
        """
        meta = self._relations[relation_name]
        relation = self._merge_engine.relations[relation_name]
        if self.dead_letters is not None:
            rows, rejects = validate_rows(relation, rows)
            if rejects:
                counter = self._local_registry.counter(
                    "repro_ingest_dead_letters_total",
                    "Rows rejected into the dead-letter buffer.",
                    labelnames=("relation", "reason"),
                )
                op_kind = kind.name.lower()
                for row, reason in rejects:
                    self.dead_letters.add(
                        DeadLetter(relation_name, row, op_kind, reason)
                    )
                    counter.labels(relation_name, reason).inc()
        arr = relation.rows_array(rows)
        if arr.shape[0] == 0:
            return
        span = (
            self.tracer.propagated_span(
                "ingest_batch", count=arr.shape[0], relation=relation_name, kind=kind.name
            )
            if self.tracer is not None
            else nullcontext(None)
        )
        with span as traceparent:
            if self._coordinator is not None:
                self._coordinator.ingest_batch(relation_name, arr, kind)
            parts = split_rows(arr, meta.partition_axis, self.num_shards)
            self._executor.scatter(
                "ingest",
                [
                    ((relation_name, part, kind), {"traceparent": traceparent})
                    if part.shape[0]
                    else None
                    for part in parts
                ],
            )

    def insert(self, relation_name: str, values: Sequence[Any]) -> None:
        self.ingest_batch(relation_name, [tuple(values)], OpKind.INSERT)

    def delete(self, relation_name: str, values: Sequence[Any]) -> None:
        self.ingest_batch(relation_name, [tuple(values)], OpKind.DELETE)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def register_query(
        self,
        name: str,
        query: JoinQuery,
        method: str = "cosine",
        budget: int = 200,
        **options: Any,
    ) -> None:
        """Register a continuous join-COUNT query across the fleet.

        Mergeable methods register on every shard (each replays its own
        slice of history); coordinator methods register on the full-stream
        replica, which is created — seeded with the merged exact tensors —
        on first use.
        """
        if method in COORDINATOR_METHODS:
            coordinator = True
        elif method in MERGEABLE_METHODS:
            coordinator = False
        else:
            raise ValueError(
                f"unknown method {method!r}; choose from "
                f"{sorted(MERGEABLE_METHODS | COORDINATOR_METHODS)}"
            )
        spec = {
            "kind": "join",
            "relations": list(query.relations),
            "predicates": [str(p) for p in query.predicates],
            "method": method,
            "budget": budget,
            "options": dict(options),
        }
        self._register_spec(name, spec, coordinator)

    def register_range_query(
        self, name: str, relation_name: str, attribute: str, low: Any, high: Any,
        budget: int = 200, **options: Any,
    ) -> None:
        """Register a range-COUNT query (cosine marginal; always mergeable)."""
        spec = {
            "kind": "range",
            "relation": relation_name,
            "attribute": attribute,
            "low": low,
            "high": high,
            "budget": budget,
            "options": dict(options),
        }
        self._register_spec(name, spec, coordinator=False)

    def register_band_query(
        self, name: str, left: tuple[str, str], right: tuple[str, str],
        width: int, budget: int = 200, **options: Any,
    ) -> None:
        """Register a band-join COUNT query (cosine marginals; mergeable)."""
        spec = {
            "kind": "band",
            "left": list(left),
            "right": list(right),
            "width": width,
            "budget": budget,
            "options": dict(options),
        }
        self._register_spec(name, spec, coordinator=False)

    def register_query_spec(self, name: str, spec: dict[str, Any]) -> None:
        """Register a query from its serialized spec (the wire/manifest form).

        Accepts the same ``{"kind": "join" | "range" | "band", ...}``
        dictionaries the fleet manifest and the serve daemon's newline-JSON
        protocol carry, deriving the coordinator/mergeable placement from
        the method exactly as :meth:`register_query` does.
        """
        kind = spec.get("kind")
        if kind == "join":
            method = str(spec.get("method", "cosine"))
            if method in COORDINATOR_METHODS:
                coordinator = True
            elif method in MERGEABLE_METHODS:
                coordinator = False
            else:
                raise ValueError(
                    f"unknown method {method!r}; choose from "
                    f"{sorted(MERGEABLE_METHODS | COORDINATOR_METHODS)}"
                )
        elif kind in ("range", "band"):
            coordinator = False
        else:
            raise ValueError(
                f"unknown query kind {kind!r}; choose from 'join', 'range', 'band'"
            )
        self._register_spec(name, dict(spec), coordinator)

    def _register_spec(self, name: str, spec: dict[str, Any], coordinator: bool) -> None:
        if name in self._queries:
            raise ValueError(f"query {name!r} already registered")
        if coordinator:
            self._ensure_coordinator()
            assert self._coordinator is not None
            self._coordinator._register_from_spec(name, spec)
        else:
            # The template registration validates the spec before any shard
            # sees it, and builds the observers merged state is loaded into.
            self._merge_engine._register_from_spec(name, spec)
            self._executor.broadcast("register_query", name, spec)
        self._queries[name] = _QueryMeta(name, spec, coordinator)

    def _ensure_coordinator(self) -> None:
        if self._coordinator is not None:
            return
        coordinator = StreamEngine(
            seed=self._seed,
            telemetry=(
                Telemetry(tracing=False)
                if self._telemetry_enabled
                else Telemetry.disabled()
            ),
            shard="coordinator",
        )
        for meta in self._relations.values():
            relation = coordinator.create_relation(
                meta.name, meta.attributes, meta.domains
            )
            merged = self.merged_counts(meta.name) if self.num_shards else None
            if merged is not None and merged.sum() > 0:
                relation.load_counts(merged)
        if self._fault_policy is not None:
            coordinator.enable_fault_isolation(self._fault_policy)
        self._coordinator = coordinator

    def unregister_query(self, name: str) -> None:
        meta = self._queries.pop(name, None)
        if meta is None:
            raise KeyError(f"no query named {name!r}")
        if meta.coordinator:
            assert self._coordinator is not None
            self._coordinator.unregister_query(name)
        else:
            self._merge_engine.unregister_query(name)
            self._executor.broadcast("unregister_query", name)

    def query_names(self) -> list[str]:
        return list(self._queries)

    # ------------------------------------------------------------------ #
    # answers
    # ------------------------------------------------------------------ #

    def answer(self, name: str) -> float:
        """Current fleet estimate of a registered query.

        Coordinator-method queries answer from the replica; mergeable
        queries merge per-shard synopsis state into the template and run
        its estimate closure.  A query degraded on *any* shard follows the
        :meth:`enable_fault_isolation` policy (raise / NaN / exact),
        leaving every other query untouched.
        """
        meta = self._queries[name]
        if meta.coordinator:
            assert self._coordinator is not None
            return float(self._coordinator.answer(name))
        method = str(meta.spec.get("method", meta.spec.get("kind", "")))
        span = (
            self.tracer.propagated_span("estimate", query=name, method=method)
            if self.tracer is not None
            else nullcontext(None)
        )
        with span as traceparent:
            replies = self._executor.broadcast("query_observers", name, traceparent)
            return self._merge_answer(name, replies)

    def _merge_answer(self, name: str, replies: list[Any]) -> float:
        degraded = {
            shard: reason for shard, (reason, _) in enumerate(replies) if reason
        }
        if degraded:
            shard, reason = next(iter(degraded.items()))
            policy = self._fault_policy or "raise"
            if policy == "raise":
                raise DegradedQueryError(name, f"shard {shard}: {reason}")
            if policy == "nan":
                return float("nan")
            return self.exact_answer(name)
        state = self._merge_engine._queries[name]
        self._load_merged_states(state, replies)
        return float(state.estimate())

    def _load_merged_states(self, state: Any, replies: list[Any]) -> None:
        """Sum per-shard observer states into the template's observers."""
        per_observer = zip(*[states for _, states in replies])
        for (_, observer), states in zip(state.attachments, per_observer):
            observer.load_state(merge_observer_states(list(states)))

    def answers(self) -> dict[str, float]:
        return {name: self.answer(name) for name in self._queries}

    def answer_partial(self, name: str) -> PartialAnswer:
        """Answer from whichever shards still respond, flagged and scaled.

        The graceful-degradation path for fleets that have lost shards
        beyond recovery (a :class:`~repro.fleet.supervisor.ShardSupervisor`
        past ``max_restarts``, or any executor raising
        :class:`~repro.sharding.executor.ShardError`): each shard is asked
        individually, unreachable or per-query-degraded shards are
        dropped, and the survivors' merged estimate is scaled by
        ``total / surviving`` (see :class:`PartialAnswer` for why that is
        the right first-order correction under hash partitioning).

        Coordinator-method queries answer from the replica, which no
        shard crash can touch, so they come back undegraded.  A query
        with *no* surviving shard raises
        :class:`~repro.resilience.errors.DegradedQueryError`.
        """
        meta = self._queries[name]
        if meta.coordinator:
            assert self._coordinator is not None
            value = float(self._coordinator.answer(name))
            return PartialAnswer(value, value, self.num_shards, self.num_shards)
        method = str(meta.spec.get("method", meta.spec.get("kind", "")))
        span = (
            self.tracer.propagated_span(
                "estimate_partial", query=name, method=method
            )
            if self.tracer is not None
            else nullcontext(None)
        )
        with span as traceparent:
            survivors: dict[int, Any] = {}
            missing: list[int] = []
            for shard in range(self.num_shards):
                try:
                    reason, states = self._executor.call(
                        shard, "query_observers", name, traceparent
                    )
                except ShardError:
                    missing.append(shard)
                    continue
                if reason:
                    # Answered, but this query is quarantined on that
                    # shard: its synopsis state is unusable, same as lost.
                    missing.append(shard)
                else:
                    survivors[shard] = states
            if not survivors:
                raise DegradedQueryError(name, "no surviving shards")
            state = self._merge_engine._queries[name]
            per_observer = zip(*survivors.values())
            for (_, observer), states in zip(state.attachments, per_observer):
                observer.load_state(merge_observer_states(list(states)))
            raw = float(state.estimate())
        scale = self.num_shards / len(survivors)
        return PartialAnswer(
            raw * scale, raw, len(survivors), self.num_shards, tuple(missing)
        )

    def estimate(self, name: str, mode: str = "answer") -> float:
        """Answer one query in a chosen estimation mode (fleet surface).

        Mirrors :meth:`repro.streams.engine.StreamEngine.estimate`:
        ``"answer"`` is the merged point estimate, ``"upper_bound"`` the
        guaranteed degree-sequence bound, ``"clamped"`` their minimum.
        The bound modes require ``bounds=True`` at registration.
        """
        if mode == "answer":
            return self.answer(name)
        if mode not in ("upper_bound", "clamped"):
            raise ValueError(
                f"unknown estimation mode {mode!r}; "
                "choose from 'answer', 'upper_bound', 'clamped'"
            )
        if mode == "upper_bound":
            return self._merged_upper_bound(name)
        report = self.bound_report(name)
        if report is None:
            raise ValueError(
                f"query {name!r} was not registered with bounds=True; "
                f"mode {mode!r} needs degree statistics"
            )
        return float(report["clamped"])

    def _merged_upper_bound(self, name: str) -> float:
        """The fleet bound alone: no point estimate is computed, so it
        works even where the method's estimator cannot answer yet."""
        meta = self._queries[name]
        if meta.coordinator:
            assert self._coordinator is not None
            return float(self._coordinator.estimate(name, mode="upper_bound"))
        state = self._merge_engine._queries[name]
        if state.bound_calc is None:
            raise ValueError(
                f"query {name!r} was not registered with bounds=True; "
                "mode 'upper_bound' needs degree statistics"
            )
        replies = self._executor.broadcast("query_observers", name, None)
        if any(reason for reason, _ in replies):
            return float("nan")
        self._load_merged_states(state, replies)
        return float(state.bound_calc.upper_bound())

    def bound_report(self, name: str) -> dict[str, Any] | None:
        """Bound metadata for one query, or ``None`` when bounds are off.

        Coordinator-method queries delegate to the full-stream replica.
        Mergeable queries sum per-shard degree vectors (exact ``int64``
        sums, see :mod:`repro.sharding.merge`) into the template engine,
        so the fleet bound is *identical* to a single unsharded engine's
        — the parity the sharded soundness tests pin down.  A query
        degraded on any shard answers per the fault policy and reports a
        NaN bound (its degree state on that shard is unusable).
        """
        meta = self._queries[name]
        if meta.coordinator:
            assert self._coordinator is not None
            return cast("dict[str, Any] | None", self._coordinator.bound_report(name))
        state = self._merge_engine._queries[name]
        if state.bound_calc is None:
            return None
        replies = self._executor.broadcast("query_observers", name, None)
        estimate = self._merge_answer(name, replies)
        if any(reason for reason, _ in replies):
            return {
                "estimate": estimate,
                "upper_bound": float("nan"),
                "clamped": estimate,
                "clamp_fired": False,
            }
        # _merge_answer loaded every observer's merged state — including
        # the degree sketches the template's calculator reads.
        bound = float(state.bound_calc.upper_bound())
        clamped = estimate if estimate <= bound else bound
        fired = bool(estimate > bound)
        if fired:
            self._local_registry.counter(
                "repro_bound_clamps_total",
                "Answers clamped because the point estimate exceeded the "
                "guaranteed upper bound, per query.",
                labelnames=("query",),
            ).labels(name).inc()
        tightness = 1.0 if bound <= 0 else min(1.0, max(clamped, 0.0) / bound)
        self._local_registry.gauge(
            "repro_bound_tightness_ratio",
            "Clamped estimate as a fraction of its guaranteed upper bound, "
            "per query (1.0 = estimate at or above the bound).",
            labelnames=("query",),
        ).labels(name).set(tightness)
        return {
            "estimate": estimate,
            "upper_bound": bound,
            "clamped": clamped,
            "clamp_fired": fired,
        }

    def exact_answer(self, name: str) -> float:
        """Ground-truth answer from the merged exact tensors."""
        meta = self._queries[name]
        if meta.coordinator:
            assert self._coordinator is not None
            return float(self._coordinator.exact_answer(name))
        template = self._merge_engine
        saved: dict[str, tuple[Any, Any]] = {}
        for rel_name, relation in template.relations.items():
            saved[rel_name] = (relation.counts, relation._count)
            merged = self.merged_counts(rel_name)
            relation.counts = merged
            relation._count = int(merged.sum())
        try:
            return float(template.exact_answer(name))
        finally:
            for rel_name, (counts, count) in saved.items():
                relation = template.relations[rel_name]
                relation.counts = counts
                relation._count = count

    # ------------------------------------------------------------------ #
    # fault isolation
    # ------------------------------------------------------------------ #

    def enable_fault_isolation(self, policy: str = "raise") -> None:
        """Quarantine throwing observers shard-locally (fleet-wide policy)."""
        if policy not in ("raise", "nan", "exact"):
            raise ValueError(
                f"unknown degraded-answer policy {policy!r}; "
                "choose from 'raise', 'nan', 'exact'"
            )
        self._fault_policy = policy
        self._executor.broadcast("enable_fault_isolation", policy)
        if self._coordinator is not None:
            self._coordinator.enable_fault_isolation(policy)

    def enable_dead_lettering(self, capacity: int = 1024) -> DeadLetterBuffer:
        """Quarantine malformed rows fleet-side instead of raising.

        Validation runs on the coordinator before partitioning (see
        :meth:`ingest_batch`); rejected rows land in the returned
        :class:`~repro.resilience.deadletter.DeadLetterBuffer` (also
        available as :attr:`dead_letters`), counted per relation and
        reason in ``repro_ingest_dead_letters_total``.
        """
        self.dead_letters = DeadLetterBuffer(capacity)
        return self.dead_letters

    def replay_dead_letters(self) -> ReplayReport:
        """Re-validate and re-ingest every buffered dead letter.

        Rows that are now clean flow through the normal partitioned
        ingest; rows that are still malformed land back in
        :attr:`dead_letters`.  Raises ``ValueError`` when dead-lettering
        was never enabled.
        """
        if self.dead_letters is None:
            raise ValueError(
                "dead-lettering is not enabled (call enable_dead_lettering() first)"
            )
        return self.dead_letters.replay(self)

    def degraded_queries(self) -> dict[str, dict[int, str]]:
        """Degraded queries mapped to ``{shard_index: reason}``."""
        out: dict[str, dict[int, str]] = {}
        for shard, shard_map in enumerate(self._executor.broadcast("degraded_queries")):
            for query, reason in shard_map.items():
                out.setdefault(query, {})[shard] = reason
        if self._coordinator is not None:
            for query, reason in self._coordinator.degraded_queries().items():
                out.setdefault(query, {})[-1] = reason
        return out

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def fleet_metrics(self) -> MetricsRegistry:
        """All shard registries (plus the coordinator's) merged into one.

        Unlabelled counters sum into fleet totals; ``shard``-labelled
        families keep one child per shard, the layout fleet dashboards
        aggregate over (see :meth:`repro.obs.metrics.MetricsRegistry.merge`).
        """
        merged = MetricsRegistry()
        for registry in self._executor.broadcast("registry"):
            merged.merge(registry)
        if self._coordinator is not None:
            merged.merge(self._coordinator.telemetry.registry)
        merged.merge(self._local_registry)
        supervisor_registry = getattr(self._executor, "metrics_registry", None)
        if isinstance(supervisor_registry, MetricsRegistry):
            merged.merge(supervisor_registry)
        return merged

    def shard_stats(self) -> list[dict[str, Any]]:
        """Each shard's ``EngineStats.as_dict()`` snapshot, in shard order."""
        return self._executor.broadcast("stats_dict")

    def drain_spans(self) -> list[tuple[dict[str, str], list[SpanEvent]]]:
        """The whole fleet's undelivered spans, grouped by origin.

        Returns ``(resource attributes, events)`` groups — the
        coordinator tracer's fan-out spans under ``shard="coordinator"``,
        then each shard's engine spans under its index — exactly the
        shape :class:`repro.obs.otel.OtelPushLoop` exports, so every span
        is shipped once with the resource telling collectors where it
        ran.  Empty groups are omitted.
        """
        groups: list[tuple[dict[str, str], list[SpanEvent]]] = []
        if self.tracer is not None:
            events = self.tracer.drain()
            if events:
                groups.append(({"shard": "coordinator"}, events))
        for shard, events in enumerate(self._executor.broadcast("drain_spans")):
            if events:
                groups.append(({"shard": str(shard)}, events))
        return groups

    # ------------------------------------------------------------------ #
    # checkpoint / recovery
    # ------------------------------------------------------------------ #

    def _shard_dir(self, directory: str | Path, shard: int) -> Path:
        return Path(directory) / f"shard-{shard:02d}"

    def save_checkpoints(self, directory: str | Path, keep: int = 3) -> list[str]:
        """Checkpoint every shard (and the coordinator) independently.

        Each shard rotates its own ``shard-NN/checkpoint-*.ckpt`` store;
        a JSON fleet manifest records the partitioning and query layout so
        :meth:`restore` can rebuild the fleet.  Returns the written paths.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = self._executor.scatter(
            "save_checkpoint",
            [
                ((str(self._shard_dir(directory, shard)),), {"keep": keep})
                for shard in range(self.num_shards)
            ],
        )
        if self._coordinator is not None:
            store = CheckpointStore(directory / "coordinator", keep=keep)
            paths.append(str(store.save(self._coordinator)))
        manifest = {
            "version": 1,
            "num_shards": self.num_shards,
            "seed": self._seed,
            "fault_policy": self._fault_policy,
            "dead_letter_capacity": (
                None if self.dead_letters is None else self.dead_letters.capacity
            ),
            "has_coordinator": self._coordinator is not None,
            "relations": [
                {
                    "name": meta.name,
                    "attributes": list(meta.attributes),
                    "domains": [domain_to_spec(d) for d in meta.domains],
                    "partition_axis": meta.partition_axis,
                }
                for meta in self._relations.values()
            ],
            "queries": [
                {"name": meta.name, "spec": meta.spec, "coordinator": meta.coordinator}
                for meta in self._queries.values()
            ],
        }
        (directory / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        return [p for p in paths if p is not None]

    def restore_shard(self, shard: int, directory: str | Path) -> str:
        """Reload one crashed shard from its own newest checkpoint.

        Only that shard's engine is replaced; every other shard keeps its
        live state, so recovery cost is one shard's checkpoint, not the
        fleet's.
        """
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range for {self.num_shards} shards")
        return str(
            self._executor.call(
                shard, "load_latest_checkpoint", str(self._shard_dir(directory, shard))
            )
        )

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        executor: str | ShardExecutor = "serial",
        telemetry: bool = True,
    ) -> "ShardedStreamEngine":
        """Rebuild a fleet from :meth:`save_checkpoints` output.

        The manifest recreates the fleet layout (shard count, partition
        axes, query specs); each shard then restores from its own store,
        and the coordinator replica (if any) from ``coordinator/``.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read fleet manifest {manifest_path}: {exc}"
            ) from exc
        engine = cls(
            num_shards=int(manifest["num_shards"]),
            seed=int(manifest["seed"]),
            executor=executor,
            telemetry=telemetry,
        )
        for rel in manifest["relations"]:
            domains = [domain_from_spec(s) for s in rel["domains"]]
            engine._merge_engine.create_relation(rel["name"], rel["attributes"], domains)
            engine._relations[rel["name"]] = _RelationMeta(
                rel["name"], rel["attributes"], domains, int(rel["partition_axis"])
            )
        engine._executor.scatter(
            "load_latest_checkpoint",
            [
                ((str(engine._shard_dir(directory, shard)),), {})
                for shard in range(engine.num_shards)
            ],
        )
        if manifest.get("has_coordinator"):
            store = CheckpointStore(directory / "coordinator")
            latest = store.latest()
            if latest is None:
                raise CheckpointError(f"no coordinator checkpoints in {directory}")
            engine._coordinator = StreamEngine.load_checkpoint(
                latest,
                telemetry=(
                    Telemetry(tracing=False) if telemetry else Telemetry.disabled()
                ),
                shard="coordinator",
            )
        for entry in manifest["queries"]:
            if not entry["coordinator"]:
                engine._merge_engine._register_from_spec(entry["name"], entry["spec"])
            engine._queries[entry["name"]] = _QueryMeta(
                entry["name"], entry["spec"], entry["coordinator"]
            )
        if manifest.get("fault_policy") is not None:
            engine._fault_policy = manifest["fault_policy"]
        if manifest.get("dead_letter_capacity") is not None:
            # The buffer's *contents* are not checkpointed (letters are a
            # quarantine, not state); only the guard itself is restored.
            engine.enable_dead_lettering(int(manifest["dead_letter_capacity"]))
        return engine

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStreamEngine(shards={self.num_shards}, "
            f"executor={type(self._executor).__name__}, "
            f"relations={len(self._relations)}, queries={len(self._queries)})"
        )
