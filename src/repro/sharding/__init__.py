"""Horizontal sharding: hash-partitioned engines behind one query surface.

:class:`ShardedStreamEngine` splits every relation's stream across N
independent :class:`~repro.streams.engine.StreamEngine` shards (serial,
thread, or process placement via :class:`ShardExecutor`), merges
per-shard synopsis state where the estimators are linear, and keeps the
order-dependent methods on a coordinator replica — so every one of the
paper's estimation methods answers exactly as an unsharded engine would.
See :mod:`repro.sharding.merge` for the method taxonomy and
``docs/SHARDING.md`` for the design walk-through.
"""

from .engine import PartialAnswer, ShardedStreamEngine
from .executor import (
    ProcessExecutor,
    SerialExecutor,
    ShardError,
    ShardExecutor,
    ThreadExecutor,
    resolve_executor,
)
from .merge import COORDINATOR_METHODS, MERGEABLE_METHODS, merge_observer_states
from .partition import hash_values, shard_of_values, split_rows
from .worker import ShardWorker

__all__ = [
    "COORDINATOR_METHODS",
    "MERGEABLE_METHODS",
    "PartialAnswer",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardError",
    "ShardExecutor",
    "ShardWorker",
    "ShardedStreamEngine",
    "ThreadExecutor",
    "hash_values",
    "merge_observer_states",
    "resolve_executor",
    "shard_of_values",
    "split_rows",
]
