"""Deterministic hash partitioning of stream tuples across shards.

A sharded engine must route every tuple with the same partition-attribute
value to the same shard, in every process, on every run — Python's salted
``hash()`` is therefore unusable.  This module provides a stable 64-bit
mix (Stafford's ``splitmix64`` finalizer) applied to the partition
column, vectorized for integer columns and CRC-backed for categorical
(string/object) columns.

Routing on one attribute means a shard's slice of the exact count tensor
is *cell-disjoint* from every other shard's: a given cell's multiplicity
lives entirely on the shard its partition value hashes to.  That is what
makes per-shard delete validation equivalent to global validation, and
per-shard checkpoints independently restorable.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = ["hash_values", "shard_of_values", "split_rows"]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def hash_values(values: NDArray[Any]) -> NDArray[Any]:
    """Stable 64-bit hashes of a 1-d value column.

    Integer columns go through the splitmix64 finalizer (vectorized);
    anything else is hashed per element with CRC-32 over ``str(v)``
    bytes.  The mapping is a pure function of the values — identical
    across runs, processes, and platforms.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-d value column, got shape {values.shape}")
    if np.issubdtype(values.dtype, np.integer):
        with np.errstate(over="ignore"):
            h = values.astype(np.uint64) & _MASK64
            h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            h = h ^ (h >> np.uint64(31))
        return h
    return np.array(
        [zlib.crc32(str(v).encode("utf-8")) for v in values], dtype=np.uint64
    )


def shard_of_values(values: NDArray[Any], num_shards: int) -> NDArray[Any]:
    """Shard index (``0..num_shards-1``) for each value in a column."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return np.zeros(np.asarray(values).shape[0], dtype=np.int64)
    return (hash_values(values) % np.uint64(num_shards)).astype(np.int64)


def split_rows(
    rows: NDArray[Any], axis: int, num_shards: int
) -> list[NDArray[Any]]:
    """Split a ``(B, ndim)`` row batch into per-shard sub-batches.

    Rows are routed by the hash of column ``axis``; within each shard the
    original arrival order is preserved (stable selection), so per-shard
    synopsis state is independent of how the batch was framed.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"expected a (B, ndim) row batch, got shape {rows.shape}")
    if not 0 <= axis < rows.shape[1]:
        raise ValueError(f"partition axis {axis} out of range for {rows.shape[1]} columns")
    if num_shards == 1:
        return [rows]
    shards = shard_of_values(rows[:, axis], num_shards)
    return [rows[shards == s] for s in range(num_shards)]
