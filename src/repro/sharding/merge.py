"""Merge semantics for per-shard synopsis state.

Which estimation methods can be sharded, and how their per-shard states
recombine into the single-engine state, is the correctness core of
:mod:`repro.sharding`:

* **Mergeable methods** — ``cosine``, ``basic_sketch``,
  ``skimmed_sketch``, ``histogram`` (plus the cosine range and band
  query kinds).  Their synopsis state is a *linear* function of the
  ingested multiset: cosine coefficient sums (Eq. 3.3 is a sum over
  tuples), AGMS atomic sketches (sums of ±1 signs; the skimmed estimator
  reads the same atoms), and equi-width bucket counts.  Summing the
  per-shard ``state_dict()`` fields therefore reproduces the state a
  single engine would hold after ingesting every shard's tuples —
  exactly for integer-valued state (sketch atoms, histogram buckets), up
  to float summation order for cosine coefficients, whose estimators are
  *continuous*, so the answer moves by the same last-ulp amount.  Shard
  sign families and histogram/cosine geometry match across shards
  because every shard engine is built from the same seed and specs.

* **Coordinator methods** — ``sample``, ``partitioned_sketch``, and
  ``wavelet``.  Bernoulli sampling consumes an RNG sequence in arrival
  order, and the partitioned sketch freezes its partition boundaries
  from the pilot distribution it sees at registration time; neither
  state is a partition-independent function of the multiset, so
  per-shard copies cannot be recombined into the single-engine state.
  The Haar synopsis is the subtle case: its full coefficient vector *is*
  linear, but its read path thresholds to the ``budget`` largest
  coefficients — a discontinuous selection that float summation-order
  noise in a merged vector can flip on near-ties, changing the answer by
  a whole coefficient's contribution.  All three live on a
  coordinator-resident replica that observes the full stream in arrival
  order (their state is O(budget + log n), so this costs the coordinator
  one small synopsis update per batch) and answers are *bit-identical*
  to the unsharded engine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "COORDINATOR_METHODS",
    "MERGEABLE_METHODS",
    "merge_observer_states",
]

#: Methods whose per-shard synopsis states sum to the single-engine state.
MERGEABLE_METHODS = frozenset({"cosine", "basic_sketch", "skimmed_sketch", "histogram"})

#: Methods kept on the coordinator replica (order/geometry/threshold
#: dependent — see the module docstring for why wavelet is here).
COORDINATOR_METHODS = frozenset({"sample", "partitioned_sketch", "wavelet"})


def merge_observer_states(states: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-shard ``state_dict()`` payloads of one observer.

    Array-valued fields are summed (coefficients, atoms, buckets) and
    the integer ``count`` fields add; any other field must be identical
    across shards (structural state such as partition boundaries is not
    mergeable and belongs to a coordinator method instead).
    """
    if not states:
        raise ValueError("cannot merge an empty state list")
    merged: dict[str, Any] = {}
    for key, first in states[0].items():
        if isinstance(first, np.ndarray):
            total = first.copy()
            for other in states[1:]:
                value = np.asarray(other[key])
                if value.shape != total.shape:
                    raise ValueError(
                        f"shard states disagree on {key!r} shape: "
                        f"{value.shape} vs {total.shape}"
                    )
                total = total + value
            merged[key] = total
        elif isinstance(first, (int, float)) and not isinstance(first, bool):
            merged[key] = sum(state[key] for state in states)
        else:
            for other in states[1:]:
                if other[key] != first:
                    raise ValueError(
                        f"shard states disagree on non-mergeable field {key!r}: "
                        f"{other[key]!r} vs {first!r}"
                    )
            merged[key] = first
    return merged
