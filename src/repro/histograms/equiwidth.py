"""Equi-width stream histograms — the simplest synopsis family surveyed.

Histograms (section 2) summarize a frequency vector by per-bucket counts;
join estimation assumes values are uniform within a bucket, so two aligned
histograms estimate

    J_hat = sum_b c1(b) * c2(b) / width(b).

One-dimensional only: the paper's own argument for moving past histograms
is that their space explodes with dimensionality, so they serve here as a
single-attribute baseline and teaching comparison.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from ..core.normalization import Domain


class EquiWidthHistogram:
    """Per-bucket counts over a fixed ``Domain`` with equal-width buckets.

    Buckets partition the ``n`` domain indices into ``b`` contiguous runs
    whose widths differ by at most one (``numpy.array_split`` semantics).
    Updates are O(1); deletion is a negative update (histogram counters are
    linear, like sketches).
    """

    # Structural parameters: a restored histogram is always constructed with
    # the same spec first, so only the counters travel in checkpoints.
    _checkpoint_exempt = ("boundaries", "domain", "num_buckets")

    def __init__(self, domain: Domain, buckets: int) -> None:
        if buckets < 1:
            raise ValueError(f"bucket count must be >= 1, got {buckets}")
        if buckets > domain.size:
            buckets = domain.size
        self.domain = domain
        self.num_buckets = buckets
        # boundaries[b] .. boundaries[b+1]-1 are the indices of bucket b.
        edges = np.linspace(0, domain.size, buckets + 1)
        self.boundaries = np.ceil(edges).astype(np.int64)
        self.counts = np.zeros(buckets, dtype=float)
        self._count = 0

    @property
    def count(self) -> int:
        """Live tuple count."""
        return self._count

    @property
    def widths(self) -> NDArray[Any]:
        """Number of domain values covered by each bucket."""
        return np.diff(self.boundaries)

    def bucket_of(self, index: int) -> int:
        """Bucket number holding the given domain index."""
        if not 0 <= index < self.domain.size:
            raise ValueError(f"index {index} outside domain of size {self.domain.size}")
        return int(np.searchsorted(self.boundaries, index, side="right") - 1)

    def update(self, value: Any, weight: int = 1) -> None:
        """Insert (``weight=1``) or delete (``weight=-1``) one raw value."""
        index = self.domain.index_of(value)
        self.counts[self.bucket_of(index)] += weight
        self._count += weight

    def update_batch(self, values: Sequence[Any] | NDArray[Any], weight: int = 1) -> None:
        """Insert or delete a batch of raw values."""
        indices = self.domain.indices_of(values)
        buckets = np.searchsorted(self.boundaries, indices, side="right") - 1
        np.add.at(self.counts, buckets, float(weight))
        self._count += weight * len(indices)

    def state_dict(self) -> dict[str, Any]:
        """Mutable state only (bucket counts + count), for checkpoints."""
        return {"counts": self.counts.copy(), "count": self._count}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        counts = np.asarray(state["counts"], dtype=float)
        if counts.shape != self.counts.shape:
            raise ValueError(
                f"checkpointed histogram has {counts.shape[0]} buckets, "
                f"this histogram has {self.counts.shape[0]}"
            )
        self.counts = counts.copy()
        self._count = int(state["count"])

    @classmethod
    def from_counts(
        cls, domain: Domain, counts: NDArray[Any], buckets: int
    ) -> "EquiWidthHistogram":
        """Build from a frequency vector over domain indices."""
        hist = cls(domain, buckets)
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (domain.size,):
            raise ValueError(f"counts shape {counts.shape} != ({domain.size},)")
        hist.counts = np.add.reduceat(counts, hist.boundaries[:-1])
        hist._count = int(round(counts.sum()))
        return hist

    @property
    def num_counters(self) -> int:
        """Space unit: stored bucket counters."""
        return self.num_buckets


def estimate_join_size(a: EquiWidthHistogram, b: EquiWidthHistogram) -> float:
    """Uniform-within-bucket equi-join estimate for aligned histograms."""
    if a.domain.size != b.domain.size or a.num_buckets != b.num_buckets:
        raise ValueError("histograms must share the unified domain and bucketing")
    widths = a.widths.astype(float)
    return float(np.sum(a.counts * b.counts / widths))


def estimate_self_join_size(hist: EquiWidthHistogram) -> float:
    """Uniform-within-bucket self-join (second moment) estimate."""
    return float(np.sum(hist.counts**2 / hist.widths.astype(float)))
