"""Equi-width histogram baseline (section 2 of the paper)."""

from .equiwidth import EquiWidthHistogram, estimate_join_size, estimate_self_join_size

__all__ = ["EquiWidthHistogram", "estimate_join_size", "estimate_self_join_size"]
