"""The skimmed sketch of Ganguly et al. [32].

The basic AGMS estimate has variance driven by the product of the streams'
self-join sizes, which is dominated by a few *dense* (high-frequency)
values.  The skimmed sketch removes that domination at estimation time:

1. estimate every domain value's frequency from the sketch itself
   (``f_hat(v)`` = median of group means of ``X_i * xi_i(v)``),
2. *skim* the dense values — those whose estimate clears a threshold tied
   to the sketch's own noise floor ``sqrt(F2 / s1)`` — into an explicitly
   stored dense frequency vector,
3. subtract the skimmed mass from the atomic sketches, leaving residual
   sketches of the low-frequency remainder, and
4. assemble the join size from the four sub-joins
   ``J = J_dd + J_ds + J_sd + J_ss`` — dense x dense computed exactly,
   the cross terms projected through the residual sketches, and
   residual x residual estimated sketch-to-sketch.

As the paper stresses (sections 2 and 5.2.2.1), the skimmed dense
frequencies occupy *extra* space up to O(n) on top of the atomic-sketch
budget; :class:`SkimmedJoinEstimate` reports that hidden space so the
experiment harness can account for it.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from .basic import AGMSSketch, estimate_self_join_size, median_of_means

#: Below this many atomic sketches per median group, per-value frequency
#: estimates are too noisy to identify dense values — skimming a hallucinated
#: heavy hitter is far worse than not skimming — so the estimator falls back
#: to the basic sketch.  (Ganguly et al.'s guarantees likewise assume sketch
#: space above a sanity bound.)
MIN_MEANS_FOR_SKIMMING = 16


@dataclass(frozen=True)
class SkimmedJoinEstimate:
    """A skimmed-sketch join estimate plus its decomposition and space use."""

    estimate: float
    dense_dense: float
    dense_residual: float
    residual_dense: float
    residual_residual: float
    dense_values_a: int
    dense_values_b: int

    @property
    def extra_dense_space(self) -> int:
        """Hidden storage beyond the atomic sketches (section 5.2.2.1)."""
        return self.dense_values_a + self.dense_values_b


def estimate_frequencies(sketch: AGMSSketch, sign_matrix: NDArray[Any]) -> NDArray[Any]:
    """Per-value frequency estimates ``f_hat(v)`` from an AGMS sketch.

    ``E[X_i * xi_i(v)] = f(v)``; the median of group means over the sketch
    grid makes the estimate robust.  ``sign_matrix`` is the family's dense
    ``(S, n)`` ±1 matrix (pass it in so repeated calls share the work).
    """
    if sketch.ndim != 1:
        raise ValueError("frequency skimming is defined for single-attribute sketches")
    per_atom = sketch.atoms[:, None] * sign_matrix  # (S, n)
    groups = per_atom.reshape(sketch.num_medians, sketch.num_means, -1)
    return np.median(groups.mean(axis=1), axis=0)


def skim_threshold(sketch: AGMSSketch, factor: float = 2.0) -> float:
    """Noise-floor threshold above which a frequency estimate is 'dense'.

    A single atomic estimate of ``f(v)`` has standard deviation about
    ``sqrt(F2 / 1)``; averaging ``s1`` atomic sketches divides the variance
    by ``s1``, so values safely above ``factor * sqrt(F2_hat / s1)`` are
    real heavy hitters rather than estimation noise.
    """
    f2_hat = max(estimate_self_join_size(sketch), 0.0)
    return factor * float(np.sqrt(f2_hat / sketch.num_means))


def skim_dense_frequencies(
    sketch: AGMSSketch,
    sign_matrix: NDArray[Any],
    threshold: float | None = None,
    threshold_factor: float = 2.0,
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Extract the dense frequency vector and the residual atomic sketches.

    Returns ``(dense, residual_atoms)`` where ``dense`` is a length-``n``
    vector holding the skimmed frequency estimates (zero for non-dense
    values) and ``residual_atoms`` are the sketch counters after the dense
    mass was subtracted out.
    """
    if threshold is None:
        threshold = skim_threshold(sketch, threshold_factor)
    f_hat = estimate_frequencies(sketch, sign_matrix)
    dense = np.where(f_hat >= threshold, np.maximum(np.rint(f_hat), 0.0), 0.0)
    residual_atoms = sketch.atoms - sign_matrix.astype(float) @ dense
    return dense, residual_atoms


def estimate_join_size_skimmed(
    a: AGMSSketch,
    b: AGMSSketch,
    threshold_factor: float = 2.0,
) -> SkimmedJoinEstimate:
    """Skimmed-sketch estimate of a single equi-join ``R1.A = R2.B``.

    Both sketches must share the join attribute's sign family (as for the
    basic sketch).  Returns the full decomposition; use ``.estimate`` for
    the headline number.
    """
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("the skimmed sketch handles single-attribute joins")
    if not a.compatible_with(b, 0, 0):
        raise ValueError("sketches do not share a sign family; joins are undefined")
    signs = a.families[0].sign_matrix().astype(float)

    if a.num_means < MIN_MEANS_FOR_SKIMMING:
        # Too little averaging to trust per-value frequency estimates: the
        # skim would extract noise.  Degrade gracefully to the basic AGMS
        # estimate (an empty skim).
        basic = median_of_means(a.atoms * b.atoms, a.num_means, a.num_medians)
        return SkimmedJoinEstimate(
            estimate=basic,
            dense_dense=0.0,
            dense_residual=0.0,
            residual_dense=0.0,
            residual_residual=basic,
            dense_values_a=0,
            dense_values_b=0,
        )

    dense_a, residual_a = skim_dense_frequencies(a, signs, threshold_factor=threshold_factor)
    dense_b, residual_b = skim_dense_frequencies(b, signs, threshold_factor=threshold_factor)

    s1, s2 = a.num_means, a.num_medians

    # Dense x dense: both sides explicit, computed exactly.
    j_dd = float(dense_a @ dense_b)

    # Dense x residual: project the dense vector through the sign families
    # to pair it with the residual sketch (an unbiased inner product).
    proj_a = signs @ dense_a  # (S,) sketch of the dense-a vector
    proj_b = signs @ dense_b
    j_ds = median_of_means(proj_a * residual_b, s1, s2)
    j_sd = median_of_means(residual_a * proj_b, s1, s2)

    # Residual x residual: the plain AGMS estimate on the skimmed remainder.
    j_ss = median_of_means(residual_a * residual_b, s1, s2)

    return SkimmedJoinEstimate(
        estimate=j_dd + j_ds + j_sd + j_ss,
        dense_dense=j_dd,
        dense_residual=j_ds,
        residual_dense=j_sd,
        residual_residual=j_ss,
        dense_values_a=int(np.count_nonzero(dense_a)),
        dense_values_b=int(np.count_nonzero(dense_b)),
    )


def estimate_multijoin_size_skimmed(
    sketches: list[AGMSSketch],
    threshold_factor: float = 2.0,
) -> float:
    """Skimmed estimation for the paper's chain queries.

    Ganguly et al. define skimming for single joins; the natural chain
    generalization (used here for the paper's 2- and 3-join experiments)
    skims the two *end* relations — the single-attribute sketches, where
    per-value frequencies can be read off the sketch — and expands the join
    into the four dense/residual end combinations.  Dense ends enter each
    term as noise-free projections of their skimmed frequency vectors, so
    the heavy hitters of the end relations no longer contribute sketch
    variance; inner relations keep their plain sketches.  With no dense
    values this reduces exactly to the basic multi-join estimate.
    """
    if len(sketches) < 2:
        raise ValueError("a join needs at least two sketches")
    if len(sketches) == 2 and sketches[0].ndim == 1 and sketches[1].ndim == 1:
        return estimate_join_size_skimmed(
            sketches[0], sketches[1], threshold_factor=threshold_factor
        ).estimate

    first, last = sketches[0], sketches[-1]
    if first.ndim != 1 or last.ndim != 1:
        raise ValueError("chain skimming expects single-attribute end relations")

    inner = np.ones_like(first.atoms)
    for sk in sketches[1:-1]:
        inner = inner * sk.atoms

    if first.num_means < MIN_MEANS_FOR_SKIMMING:
        products = first.atoms * inner * last.atoms
        return median_of_means(products, first.num_means, first.num_medians)

    end_parts = []
    for end in (first, last):
        signs = end.families[0].sign_matrix().astype(float)
        dense, residual = skim_dense_frequencies(
            end, signs, threshold_factor=threshold_factor
        )
        end_parts.append((signs @ dense, residual))

    s1, s2 = first.num_means, first.num_medians
    total = 0.0
    for left in end_parts[0]:
        for right in end_parts[1]:
            total += median_of_means(left * inner * right, s1, s2)
    return total
