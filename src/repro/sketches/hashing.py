"""Four-wise independent hashing for AGMS sketches.

Atomic sketches need ±1 random variables ``xi(v)`` that are 4-wise
independent across domain values (Alon et al. [2]); this module provides
the classic polynomial construction: degree-3 polynomials with random
coefficients over the Mersenne prime ``p = 2^31 - 1``, evaluated by Horner's
rule entirely in ``uint64`` (every intermediate product is below ``2^62``),
with the sign taken from the low bit.

A :class:`SignFamily` bundles ``S`` independent such functions over one
attribute domain and evaluates them vectorized: ``signs(indices)`` returns
the ``(S, B)`` matrix of ±1 values all atomic sketches need for a batch of
``B`` arrivals.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

#: Mersenne prime 2^31 - 1; coefficients and values live in [0, p).
MERSENNE_P = np.uint64((1 << 31) - 1)

_POLY_DEGREE = 4  # 4 coefficients -> 4-wise independence


class SignFamily:
    """``S`` independent 4-wise ±1 hash functions over a domain of size ``n``.

    Two sketches are joinable only if built from the *same* family (same
    seed, size and domain), exactly as the paper's sketches share their
    random vectors across the two streams of a join.
    """

    def __init__(self, domain_size: int, num_functions: int, seed: int) -> None:
        if domain_size < 1:
            raise ValueError(f"domain size must be >= 1, got {domain_size}")
        if domain_size >= int(MERSENNE_P):
            raise ValueError("domain size must be below 2^31 - 1")
        if num_functions < 1:
            raise ValueError(f"need at least one hash function, got {num_functions}")
        self.domain_size = domain_size
        self.num_functions = num_functions
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._coeffs = rng.integers(
            0, int(MERSENNE_P), size=(num_functions, _POLY_DEGREE), dtype=np.uint64
        )
        # The leading coefficient must be nonzero for full degree.
        zero_lead = self._coeffs[:, 0] == 0
        self._coeffs[zero_lead, 0] = 1

    @property
    def coefficients(self) -> NDArray[Any]:
        """The ``(S, 4)`` uint64 polynomial table, as a read-only view.

        Exposed so the compiled AGMS kernel in :mod:`repro.fastpath` can
        evaluate the same polynomials without materializing sign matrices;
        the view is non-writable because mutating coefficients would
        silently desynchronize sketches built from this family.
        """
        view = self._coeffs.view()
        view.flags.writeable = False
        return view

    def compatible_with(self, other: "SignFamily") -> bool:
        """Whether two families generate identical sign sequences."""
        return (
            self.domain_size == other.domain_size
            and self.num_functions == other.num_functions
            and self.seed == other.seed
        )

    def hash_values(self, indices: NDArray[Any]) -> NDArray[Any]:
        """Evaluate all ``S`` polynomials at the given domain indices.

        Returns a ``(S, B)`` uint64 array of values in ``[0, p)``.
        """
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.domain_size):
            raise ValueError("index outside the hashed domain")
        x = idx.astype(np.uint64)[None, :]
        acc = np.broadcast_to(self._coeffs[:, 0][:, None], (self.num_functions, x.shape[1])).copy()
        for degree in range(1, _POLY_DEGREE):
            acc = (acc * x + self._coeffs[:, degree][:, None]) % MERSENNE_P
        return acc

    def signs(self, indices: NDArray[Any]) -> NDArray[Any]:
        """±1 sign matrix ``(S, B)`` for a batch of domain indices."""
        return (self.hash_values(indices) & np.uint64(1)).astype(np.int8) * 2 - 1

    def sign_matrix(self, chunk: int = 1 << 14) -> NDArray[Any]:
        """Dense ``(S, n)`` sign matrix over the whole domain, chunked.

        Used by batch construction from frequency vectors and by the
        skimmed sketch's per-value frequency estimation.
        """
        out = np.empty((self.num_functions, self.domain_size), dtype=np.int8)
        for start in range(0, self.domain_size, chunk):
            stop = min(start + chunk, self.domain_size)
            out[:, start:stop] = self.signs(np.arange(start, stop))
        return out
